//! The reproduction's comparability contract, as tests.
//!
//! The paper's Figures 2–4 compare protocols on *identical substrates*: the
//! same underlay, overlay, catalog, placement and workload, with only the
//! protocol swapped. That comparison is only meaningful if (a) a substrate is
//! a pure function of its configuration (same seed ⇒ bit-for-bit identical
//! runs) and (b) running one protocol leaves the substrate untouched for the
//! next. These tests pin both properties down to the byte level, plus the
//! RNG stream-isolation contract they rest on and the configuration
//! validation that guards the substrate builder's inputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use locaware::{
    ConfigError, ExperimentPlan, ProtocolKind, Runner, Scenario, Simulation, SimulationConfig,
    SimulationReport,
};
use locaware_sim::{RngFactory, StreamId};
use rand::{Rng, RngCore};

/// Every evaluated protocol — the paper's four, the two ablations and the two
/// structured (DHT) kinds — sourced from the centralised enumeration so a new
/// protocol joins every matrix below by construction.
const ALL_PROTOCOLS: [ProtocolKind; 8] = ProtocolKind::ALL;

fn substrate(peers: usize, seed: u64) -> Simulation {
    Scenario::small(peers).with_seed(seed).substrate()
}

/// Canonical byte encoding of a report: every field, with floats encoded as
/// their IEEE-754 bit patterns, so equality is exact bit-for-bit equality and
/// a mismatch cannot hide behind display rounding.
fn report_bytes(report: &SimulationReport) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(report.protocol.label().as_bytes());
    bytes.extend_from_slice(&report.queries_issued.to_le_bytes());
    for record in report.metrics.records() {
        bytes.extend_from_slice(&record.index.to_le_bytes());
        bytes.extend_from_slice(&record.requestor.to_le_bytes());
        bytes.push(record.is_success() as u8);
        bytes.extend_from_slice(&record.messages.to_le_bytes());
        match record.download_distance_ms {
            Some(d) => {
                bytes.push(1);
                bytes.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            None => bytes.push(0),
        }
        bytes.push(record.locality_match as u8);
        bytes.extend_from_slice(&(record.providers_offered as u64).to_le_bytes());
        match record.hops_to_hit {
            Some(h) => {
                bytes.push(1);
                bytes.extend_from_slice(&h.to_le_bytes());
            }
            None => bytes.push(0),
        }
        bytes.push(record.answered_from_cache as u8);
        match record.completion_time_ms {
            Some(t) => {
                bytes.push(1);
                bytes.extend_from_slice(&t.to_bits().to_le_bytes());
            }
            None => bytes.push(0),
        }
    }
    for counters in [&report.message_counters, &report.routing_decisions] {
        for (key, count) in counters.iter() {
            bytes.extend_from_slice(key.as_bytes());
            bytes.extend_from_slice(&count.to_le_bytes());
        }
    }
    bytes.extend_from_slice(&report.background_messages.to_le_bytes());
    bytes.extend_from_slice(&(report.total_file_replicas as u64).to_le_bytes());
    bytes.extend_from_slice(&(report.total_cached_index_entries as u64).to_le_bytes());
    bytes.extend_from_slice(&report.simulated_end_time_secs.to_bits().to_le_bytes());
    bytes.extend_from_slice(&report.dispatched_events.to_le_bytes());
    // DHT statistics participate only when present — absent runs append
    // *nothing*, so the unstructured protocols' encodings (and their pinned
    // fingerprints) are byte-for-byte what they were before the subsystem
    // existed. No ambiguity: the protocol label at the head of the encoding
    // already determines whether the block follows.
    if let Some(dht) = &report.dht {
        bytes.push(1);
        bytes.extend_from_slice(&dht.lookups.to_le_bytes());
        bytes.extend_from_slice(&dht.lookup_depth_total.to_le_bytes());
        bytes.extend_from_slice(&dht.store_messages.to_le_bytes());
        bytes.extend_from_slice(&(dht.records as u64).to_le_bytes());
        bytes.extend_from_slice(&(dht.provider_entries as u64).to_le_bytes());
        bytes.extend_from_slice(&(dht.record_bytes as u64).to_le_bytes());
        bytes.extend_from_slice(&dht.truncated_entries.to_le_bytes());
        bytes.extend_from_slice(&dht.expired_entries.to_le_bytes());
    }
    // Fault statistics likewise participate only when a fault axis is armed,
    // so fault-free encodings stay byte-for-byte what they were before the
    // fault subsystem existed.
    if let Some(faults) = &report.faults {
        bytes.push(2);
        bytes.extend_from_slice(&faults.messages_lost.to_le_bytes());
        bytes.extend_from_slice(&faults.dht_stores_lost.to_le_bytes());
        bytes.extend_from_slice(&faults.query_timeouts.to_le_bytes());
        bytes.extend_from_slice(&faults.query_retransmits.to_le_bytes());
        bytes.extend_from_slice(&faults.dht_step_timeouts.to_le_bytes());
        bytes.extend_from_slice(&faults.crash_departures.to_le_bytes());
    }
    bytes
}

// ------------------------------------------------------- seed determinism

#[test]
fn same_seed_produces_byte_identical_reports_for_every_protocol() {
    for protocol in ALL_PROTOCOLS {
        let a = substrate(60, 42).run(protocol, 40);
        let b = substrate(60, 42).run(protocol, 40);
        assert_eq!(
            report_bytes(&a),
            report_bytes(&b),
            "{protocol}: two builds from the same seed must agree bit-for-bit"
        );
    }
}

#[test]
fn same_seed_builds_identical_substrates() {
    let a = substrate(80, 7);
    let b = substrate(80, 7);
    assert_eq!(a.loc_ids(), b.loc_ids(), "locId assignment must be seed-determined");
    assert_eq!(
        a.group_ids(),
        b.group_ids(),
        "group assignment must be seed-determined"
    );
    assert_eq!(
        a.initial_shares(),
        b.initial_shares(),
        "file placement must be seed-determined"
    );
    assert_eq!(
        a.arrivals(30),
        b.arrivals(30),
        "the arrival process must be seed-determined"
    );
}

#[test]
fn different_seeds_produce_different_reports() {
    let a = substrate(60, 1).run(ProtocolKind::Locaware, 40);
    let b = substrate(60, 2).run(ProtocolKind::Locaware, 40);
    assert_ne!(
        report_bytes(&a),
        report_bytes(&b),
        "distinct seeds collapsing to one run would hide seed-plumbing bugs"
    );
}

// -------------------------------------------------- substrate comparability

#[test]
fn all_protocols_run_over_the_same_substrate() {
    let simulation = substrate(80, 5);
    let loc_ids_before = simulation.loc_ids().to_vec();
    let shares_before = simulation.initial_shares().to_vec();

    let reports: Vec<SimulationReport> = ALL_PROTOCOLS
        .iter()
        .map(|&p| simulation.run(p, 50))
        .collect();

    // Running a protocol must not mutate the shared substrate — otherwise
    // later protocols would be compared on a different system.
    assert_eq!(simulation.loc_ids(), &loc_ids_before[..]);
    assert_eq!(simulation.initial_shares(), &shares_before[..]);

    // The workload side of the substrate is shared too: every protocol sees
    // the same queries from the same requestors in the same order.
    let requestors: Vec<Vec<u32>> = reports
        .iter()
        .map(|r| r.metrics.records().iter().map(|rec| rec.requestor).collect())
        .collect();
    for (report, reqs) in reports.iter().zip(&requestors) {
        assert_eq!(
            report.queries_issued, 50,
            "{}: every protocol answers the full workload",
            report.protocol
        );
        assert_eq!(
            reqs, &requestors[0],
            "{}: all protocols must serve the identical requestor sequence",
            report.protocol
        );
    }
}

#[test]
fn rerunning_one_protocol_on_one_substrate_is_pure() {
    let simulation = substrate(60, 9);
    let first = simulation.run(ProtocolKind::DicasKeys, 30);
    let second = simulation.run(ProtocolKind::DicasKeys, 30);
    assert_eq!(
        report_bytes(&first),
        report_bytes(&second),
        "run() must be a pure function of (substrate, protocol, query count)"
    );
}

#[test]
fn tiny_catalog_exhaustion_keeps_replica_accounting_exact() {
    // SimulationConfig::small(10) has a 30-file pool; 400 queries over 10
    // peers drive each peer towards holding or having queried most of the
    // catalog. Peers with nothing left to search for skip their arrivals
    // rather than issuing unsatisfiable queries, and the replica accounting
    // must stay exact throughout.
    let simulation = Scenario::small(10).with_seed(13).substrate();
    let initial_replicas = simulation.config().peers * simulation.config().files_per_peer;
    for protocol in [ProtocolKind::Flooding, ProtocolKind::Locaware] {
        let report = simulation.run(protocol, 400);
        assert!(report.queries_issued <= 400);
        assert_eq!(report.metrics.len() as u64, report.queries_issued);
        let satisfied = report
            .metrics
            .records()
            .iter()
            .filter(|r| r.is_success())
            .count();
        assert_eq!(
            report.total_file_replicas - initial_replicas,
            satisfied,
            "{protocol}: every satisfied query downloads exactly one new replica"
        );
    }
}

// ------------------------------------------------------ RNG stream contract

#[test]
fn rng_streams_replay_identically() {
    let factory = RngFactory::new(0xfeed);
    for stream in [
        StreamId::PhysicalTopology,
        StreamId::OverlayGraph,
        StreamId::QueryWorkload,
        StreamId::Custom(17),
    ] {
        let a: Vec<u64> = (0..32).map(|_| factory.stream(stream).next_u64()).collect();
        let mut rng = factory.stream(stream);
        let b: Vec<u64> = (0..32).map(|_| rng.gen::<u64>()).collect();
        assert_eq!(a[0], b[0], "{stream:?}: stream restart must replay");
        let mut rng2 = factory.stream(stream);
        let c: Vec<u64> = (0..32).map(|_| rng2.gen::<u64>()).collect();
        assert_eq!(b, c, "{stream:?}: same stream id must give the same sequence");
    }
}

#[test]
fn rng_streams_are_pairwise_independent() {
    let factory = RngFactory::new(1234);
    let streams = [
        StreamId::PhysicalTopology,
        StreamId::Landmarks,
        StreamId::OverlayGraph,
        StreamId::GroupAssignment,
        StreamId::Catalog,
        StreamId::FilePlacement,
        StreamId::QueryWorkload,
        StreamId::Arrivals,
        StreamId::ProtocolTieBreak,
        StreamId::Churn,
        StreamId::Faults,
        StreamId::Custom(0),
        StreamId::Custom(1),
    ];
    let sequences: Vec<Vec<u64>> = streams
        .iter()
        .map(|&s| {
            let mut rng = factory.stream(s);
            (0..16).map(|_| rng.gen::<u64>()).collect()
        })
        .collect();
    for i in 0..sequences.len() {
        for j in i + 1..sequences.len() {
            assert_ne!(
                sequences[i], sequences[j],
                "streams {:?} and {:?} must not collide",
                streams[i], streams[j]
            );
        }
    }
}

#[test]
fn adding_a_consumer_does_not_perturb_other_streams() {
    // The whole point of per-component streams: drawing extra values from one
    // stream must not shift any other stream (unlike a single shared RNG).
    let factory = RngFactory::new(77);
    let baseline: Vec<u64> = {
        let mut rng = factory.stream(StreamId::Arrivals);
        (0..16).map(|_| rng.gen::<u64>()).collect()
    };
    let mut greedy = factory.stream(StreamId::QueryWorkload);
    for _ in 0..1000 {
        greedy.next_u64();
    }
    let after: Vec<u64> = {
        let mut rng = factory.stream(StreamId::Arrivals);
        (0..16).map(|_| rng.gen::<u64>()).collect()
    };
    assert_eq!(baseline, after);
}

// ----------------------------------------------------- config validation

#[test]
fn small_configs_validate_across_the_supported_range() {
    for peers in [10, 40, 60, 100, 200, 500, 1000] {
        let config = SimulationConfig::small(peers);
        assert!(
            config.validate().is_ok(),
            "SimulationConfig::small({peers}) must be internally consistent: {:?}",
            config.validate()
        );
        assert!(config.file_pool >= 30, "file pool floor must hold");
        assert!(config.keyword_pool >= 60, "keyword pool floor must hold");
        assert!(
            config.files_per_peer <= config.file_pool,
            "placement must be satisfiable"
        );
        assert!(
            config.max_query_keywords <= config.keywords_per_file,
            "queries must be drawable from filenames"
        );
    }
}

#[test]
fn invalid_configurations_are_rejected_with_typed_errors() {
    let base = SimulationConfig::small(60);

    let mut c = base.clone();
    c.peers = 0;
    assert_eq!(c.validate(), Err(ConfigError::ZeroPeers));

    let mut c = base.clone();
    c.ttl = 0;
    assert_eq!(c.validate(), Err(ConfigError::ZeroTtl));

    let mut c = base.clone();
    c.landmarks = 9;
    assert_eq!(c.validate(), Err(ConfigError::LandmarksOutOfRange { landmarks: 9 }));

    let mut c = base.clone();
    c.average_degree = base.peers as f64;
    assert!(matches!(c.validate(), Err(ConfigError::DegreeOutOfRange { .. })));

    let mut c = base.clone();
    c.files_per_peer = c.file_pool + 1;
    assert!(matches!(c.validate(), Err(ConfigError::PlacementUnsatisfiable { .. })));

    let mut c = base.clone();
    c.min_query_keywords = c.max_query_keywords + 1;
    assert!(matches!(c.validate(), Err(ConfigError::QueryKeywordBounds { .. })));

    let mut c = base;
    c.bloom_bits = 0;
    assert_eq!(c.validate(), Err(ConfigError::ZeroBloomParameters));

    // The same errors flow through the fallible builder, carry human-readable
    // messages, and box as std errors.
    let err = Scenario::builder("broken").peers(60).ttl(0).build().unwrap_err();
    assert_eq!(err, ConfigError::ZeroTtl);
    let err: Box<dyn std::error::Error> = Box::new(err);
    assert!(err.to_string().contains("ttl"));
}

// --------------------------------------------------- named scenario presets

/// The scaled-down presets (everything except the 1000-peer paper setup),
/// instantiated small enough to run end to end in a test.
fn small_presets() -> Vec<Scenario> {
    vec![
        Scenario::small(60),
        Scenario::flash_crowd(60),
        Scenario::churn_storm(60),
        Scenario::regional_hotspot(60),
        Scenario::faulty_network(60),
    ]
}

#[test]
fn every_named_preset_builds_and_validates() {
    assert!(Scenario::paper_defaults().config().validate().is_ok());
    for scenario in small_presets() {
        assert!(
            scenario.config().validate().is_ok(),
            "{}: preset must validate",
            scenario.name()
        );
        let substrate = scenario.substrate();
        assert_eq!(substrate.topology().len(), 60);
        assert_eq!(substrate.overlay().len(), 60);
        assert!(substrate.overlay().is_connected(), "{}: overlay must connect", scenario.name());
    }
}

#[test]
fn every_named_preset_is_seed_deterministic() {
    for scenario in small_presets() {
        let a = scenario.substrate().run(ProtocolKind::Locaware, 40);
        let b = scenario.substrate().run(ProtocolKind::Locaware, 40);
        assert_eq!(
            report_bytes(&a),
            report_bytes(&b),
            "{}: same preset, same seed must agree bit-for-bit",
            scenario.name()
        );
    }
}

/// The rebuilt flash-crowd preset must *demonstrably* use the burst
/// primitive: a count-bounded run's arrivals concentrate inside the burst
/// window instead of spreading at a scaled constant rate.
#[test]
fn flash_crowd_arrivals_concentrate_inside_the_burst_window() {
    use locaware::experiment::{FLASH_CROWD_BURST_DURATION_SECS, FLASH_CROWD_BURST_START_SECS};

    let scenario = Scenario::flash_crowd(100);
    assert!(
        !scenario.config().arrival_schedule.is_steady(),
        "flash-crowd must carry a non-steady schedule"
    );
    let substrate = scenario.substrate();
    let arrivals = substrate.arrivals(400);
    assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at), "time-sorted");
    let burst_end = FLASH_CROWD_BURST_START_SECS + FLASH_CROWD_BURST_DURATION_SECS;
    let inside = arrivals
        .iter()
        .filter(|a| {
            let t = a.at.as_secs_f64();
            t >= FLASH_CROWD_BURST_START_SECS && t < burst_end
        })
        .count();
    // 100 peers × 0.00083 q/s barely produce ~50 queries during the 600 s
    // lead-in; at 25× the burst absorbs everything else.
    assert!(
        inside * 10 >= arrivals.len() * 8,
        "only {inside} of {} arrivals fell inside the burst window",
        arrivals.len()
    );
}

/// The rebuilt regional-hotspot preset must *demonstrably* use weighted
/// clusters: the hot (locality-sorted) third of the population issues ~75%
/// of the queries and holds ~75% of the initial replicas.
#[test]
fn regional_hotspot_concentrates_storage_and_origins() {
    let scenario = Scenario::regional_hotspot(90);
    let substrate = scenario.substrate();

    // The hot cluster is the first third of the *locality-sorted* order.
    let mut by_locality: Vec<usize> = (0..90).collect();
    by_locality.sort_by_key(|&p| (substrate.loc_ids()[p], p));
    let hot: std::collections::HashSet<usize> = by_locality[..30].iter().copied().collect();

    let hot_replicas: usize = hot
        .iter()
        .map(|&p| substrate.initial_shares()[p].len())
        .sum();
    let total_replicas: usize = substrate.initial_shares().iter().map(Vec::len).sum();
    assert_eq!(total_replicas, 270, "the share budget is conserved");
    assert!(
        hot_replicas * 100 >= total_replicas * 70,
        "hot region must hold ~75% of initial replicas, got {hot_replicas}/{total_replicas}"
    );

    let arrivals = substrate.arrivals(2000);
    let hot_origins = arrivals.iter().filter(|a| hot.contains(&a.peer)).count();
    let share = hot_origins as f64 / arrivals.len() as f64;
    assert!(
        (0.68..0.82).contains(&share),
        "hot region must issue ~75% of queries, got {share:.3}"
    );

    // And none of this applies to the uniform preset.
    let uniform = Scenario::small(90).substrate();
    let uniform_hot: usize = hot.iter().map(|&p| uniform.initial_shares()[p].len()).sum();
    assert_eq!(uniform_hot, 90, "uniform placement shares 3 files per peer");
}

#[test]
fn preset_regimes_produce_distinct_workloads() {
    // The three new regimes must actually differ from the plain scaled-down
    // setup — otherwise they are presets in name only. Compare them to
    // `small` under the *same seed* so the only difference is the regime.
    let seed = 17;
    let base = Scenario::small(60).with_seed(seed);
    let base_report = base.substrate().run(ProtocolKind::Locaware, 40);
    for scenario in [
        Scenario::flash_crowd(60).with_seed(seed),
        Scenario::churn_storm(60).with_seed(seed),
        Scenario::regional_hotspot(60).with_seed(seed),
        Scenario::faulty_network(60).with_seed(seed),
    ] {
        let report = scenario.substrate().run(ProtocolKind::Locaware, 40);
        assert_ne!(
            report_bytes(&base_report),
            report_bytes(&report),
            "{}: regime must change the measured system",
            scenario.name()
        );
    }
}

// --------------------------------------------------- legacy fingerprint pins

/// FNV-1a over the canonical report bytes: a compact pin for "this exact
/// run", stable across refactors that do not change observable behaviour.
fn report_fingerprint(report: &SimulationReport) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in report_bytes(report).iter() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Golden fingerprints for the constant-rate (`Steady`) scenarios, pinning the
/// exact per-query report bytes across refactors that must not change
/// observable behaviour. (The churn-storm rows also pin that the proactive
/// provider-invalidation flag defaults to off = the historical behaviour.)
///
/// Re-baselined once in PR 6 (from the PR 4 values captured at commit
/// ffbf08c): the fingerprint definition widened to cover the new
/// `completion_time_ms` field, and the query-lifecycle tracking made
/// completion times exact — both intentional observable changes. Every field
/// that existed before PR 6 was verified byte-identical against the old tree
/// before re-pinning.
#[test]
fn legacy_steady_scenarios_reproduce_pr4_fingerprints() {
    let cases: [(Scenario, ProtocolKind, usize, u64); 6] = [
        (Scenario::small(60), ProtocolKind::Locaware, 40, 0x5ec9f1b53ec68b39),
        (Scenario::small(60), ProtocolKind::Flooding, 40, 0x44da88c3c6b3b41d),
        (Scenario::small(60), ProtocolKind::Dicas, 40, 0x18818846c97c281e),
        (Scenario::small(120), ProtocolKind::Locaware, 80, 0x7a4cbf46ddeedf62),
        (Scenario::churn_storm(60), ProtocolKind::Locaware, 40, 0x7bdf5a9e8dfcc14d),
        (Scenario::churn_storm(60), ProtocolKind::Flooding, 40, 0x04da57ae76c7ea16),
    ];
    for (scenario, protocol, queries, expected) in cases {
        let report = scenario.substrate().run(protocol, queries);
        assert_eq!(
            report_fingerprint(&report),
            expected,
            "{}/{protocol}/{queries}q: legacy fingerprint must not move",
            scenario.name()
        );
    }
}

/// Golden fingerprints for the structured protocols introduced with the DHT
/// subsystem, captured at their introduction. These cover the DHT statistics
/// block of the encoding (lookup depths, store traffic, end-of-run index
/// size), so any change to identity derivation, routing-table seeding, the
/// iterative lookup walk or the republish cadence moves them.
#[test]
fn structured_protocol_fingerprints_are_pinned() {
    let cases: [(Scenario, ProtocolKind, usize, u64); 4] = [
        (Scenario::small(60), ProtocolKind::DhtIndex, 40, 0x1564cd1f44b01de6),
        (Scenario::small(60), ProtocolKind::Hybrid, 40, 0x54586dd9a1d28f81),
        (Scenario::churn_storm(60), ProtocolKind::DhtIndex, 40, 0xe4a724f24553623b),
        (Scenario::churn_storm(60), ProtocolKind::Hybrid, 40, 0x54886a541d2f576f),
    ];
    for (scenario, protocol, queries, expected) in cases {
        let report = scenario.substrate().run(protocol, queries);
        assert!(report.dht.is_some(), "{protocol}: structured runs carry DHT stats");
        assert_eq!(
            report_fingerprint(&report),
            expected,
            "{}/{protocol}/{queries}q: structured fingerprint must not move",
            scenario.name()
        );
    }
}

// ------------------------------------------------ sharded-engine determinism

/// The tentpole invariant of the sharded engine: for a fixed seed, **every**
/// shard count produces byte-identical reports — the canonical event order,
/// per-arrival RNG streams and barrier merges make the parallel execution
/// semantically equal to the single-queue one. The matrix covers all six
/// protocols over a static scenario, a churn storm (churn exercises the
/// serial barrier transitions and the all-pairs latency lookahead) and the
/// two rebuilt non-homogeneous regimes: flash-crowd (burst schedule — dense
/// event windows) and regional-hotspot (weighted-cluster workload — skewed
/// per-shard load). Arrivals stay pre-generated and time-sorted, so the
/// engine's invariance must be untouched by the new workload primitives.
/// The faulty-network row extends the invariant to the fault plan: loss
/// coins, outage membership and timeout deadlines are pure functions of
/// shard-invariant message identity, never of shard-local execution order.
#[test]
fn shard_counts_produce_byte_identical_reports() {
    type Preset = fn(usize) -> Scenario;
    let scenarios: [(&str, Preset); 5] = [
        ("small", Scenario::small as Preset),
        ("churn-storm", Scenario::churn_storm as Preset),
        ("flash-crowd", Scenario::flash_crowd as Preset),
        ("regional-hotspot", Scenario::regional_hotspot as Preset),
        // Every fault axis armed: losses, an outage window, retransmit
        // deadlines and DHT step timeouts must all be shard-invariant.
        ("faulty-network", Scenario::faulty_network as Preset),
    ];
    for (name, make) in scenarios {
        for protocol in ALL_PROTOCOLS {
            let baseline = {
                let scenario = make(60).with_seed(21).tweak_shards(1);
                scenario.substrate().run(protocol, 40)
            };
            // Under churn some arrivals land on offline peers and are
            // skipped, so the issued count may fall below the request.
            assert!(
                baseline.queries_issued > 0 && baseline.queries_issued <= 40,
                "{name}/{protocol}: issued {}",
                baseline.queries_issued
            );
            for shards in [2usize, 4, 8] {
                let scenario = make(60).with_seed(21).tweak_shards(shards);
                let report = scenario.substrate().run(protocol, 40);
                assert_eq!(
                    report_bytes(&baseline),
                    report_bytes(&report),
                    "{name}/{protocol}: {shards} shards must reproduce the single-shard bytes"
                );
            }
        }
    }
}

/// Sharding helper: rebuild the scenario with an explicit shard count.
trait TweakShards {
    fn tweak_shards(self, shards: usize) -> Scenario;
}

impl TweakShards for Scenario {
    fn tweak_shards(self, shards: usize) -> Scenario {
        let name = self.name().to_string();
        let mut config = self.config().clone();
        config.shards = shards;
        Scenario::from_config(name, config).expect("shard count does not affect validity")
    }
}

/// The effective shard count is a pure performance knob even when it comes
/// from the environment override: explicit settings beat the `LOCAWARE_SHARDS`
/// process default, and the resolved value is always within `1..=peers`.
#[test]
fn explicit_shard_settings_override_the_process_default() {
    let mut config = SimulationConfig::small(30);
    config.shards = 3;
    assert_eq!(config.effective_shards(), 3);
    config.shards = 100;
    assert_eq!(config.effective_shards(), 30);
}

// ------------------------------------------------- experiment runner contract

#[test]
fn a_multi_protocol_grid_point_builds_its_substrate_exactly_once() {
    let builds = Arc::new(AtomicUsize::new(0));
    let plan = ExperimentPlan::new()
        .scenario(Scenario::small(60).with_seed(3))
        .protocols(ALL_PROTOCOLS)
        .query_counts([20, 40]);
    let outcome = Runner::new()
        .with_threads(4)
        .with_build_counter(Arc::clone(&builds))
        .run(&plan)
        .expect("plan lists every dimension");
    assert_eq!(
        outcome.len(),
        ALL_PROTOCOLS.len() * 2,
        "every (protocol, query count) must run"
    );
    assert_eq!(
        builds.load(Ordering::Relaxed),
        1,
        "all protocols at two query counts must share one substrate build"
    );
    assert_eq!(outcome.substrates_built, 1);
}

#[test]
fn runner_reports_match_direct_runs_bit_for_bit() {
    let scenario = Scenario::small(60).with_seed(42);
    let plan = ExperimentPlan::new()
        .scenario(scenario.clone())
        .protocols(ALL_PROTOCOLS)
        .query_count(40);
    let outcome = Runner::new().run(&plan).expect("plan lists every dimension");
    for protocol in ALL_PROTOCOLS {
        let direct = scenario.substrate().run(protocol, 40);
        let shared = outcome
            .report(scenario.name(), protocol, 40, 0)
            .expect("every protocol ran");
        assert_eq!(
            report_bytes(&direct),
            report_bytes(shared),
            "{protocol}: sharing the substrate must not change the run"
        );
    }
}
