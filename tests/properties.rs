//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.
//!
//! These complement the unit tests in each crate by exploring randomised
//! inputs: Bloom filters never produce false negatives and deltas round-trip,
//! locIds encode/decode bijectively, the Zipf sampler is a true distribution,
//! the response index never exceeds its capacities under arbitrary operation
//! sequences, overlay generation always yields connected graphs, and the
//! simulated-time arithmetic is well behaved.

use proptest::prelude::*;

use locaware::index::naive::NaiveResponseIndex;
use locaware::{ProtocolKind, ResponseIndex, Scenario, SelectionPolicy, SimulationConfig};
use locaware_bloom::{BloomDelta, BloomFilter, BloomParams};
use locaware_net::{LandmarkSet, LinkLatencyCache, LocId, NodeId, PhysicalTopology};
use locaware_net::brite::{BriteConfig, BriteGenerator, PlacementModel};
use locaware_overlay::{
    DhtId, DhtRecordStore, GeneratorConfig, GraphModel, PeerId, ProviderEntry, RoutingTable,
};
use locaware_sim::{Duration, SimTime};
use locaware_workload::{
    Arrival, ArrivalConfig, ArrivalProcess, ArrivalSchedule, FaultConfig, FileId, KeywordId,
    OutageWindow, RatePhase, TimeoutPolicy, ZipfDistribution,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-PR-5 arrival generator, reproduced verbatim: one exponential draw
/// with mean `1/rate` (including the `f64::MIN_POSITIVE` clamp), one
/// `gen_range` origin draw per arrival, times accumulated via
/// `Duration::from_secs_f64`. The `Steady` schedule must match it bit for bit.
fn legacy_arrivals(peers: usize, rate_per_peer: f64, count: usize, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rate = peers as f64 * rate_per_peer;
    let mut now = SimTime::ZERO;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        now += Duration::from_secs_f64(-(1.0 / rate) * u.ln());
        out.push(Arrival {
            at: now,
            peer: rng.gen_range(0..peers),
        });
    }
    out
}

proptest! {
    // ----------------------------------------------------------------- Bloom

    /// Anything inserted into a Bloom filter must be found again (no false
    /// negatives), for arbitrary keyword sets and filter shapes.
    #[test]
    fn bloom_filters_never_false_negative(
        keywords in proptest::collection::vec("[a-z]{1,12}", 1..80),
        bits in 64usize..4096,
        hashes in 1usize..8,
    ) {
        let mut filter = BloomFilter::new(BloomParams::new(bits, hashes));
        for kw in &keywords {
            filter.insert(kw);
        }
        for kw in &keywords {
            prop_assert!(filter.contains(kw), "inserted keyword {kw} not found");
        }
        prop_assert!(filter.contains_all(keywords.iter().map(|s| s.as_str())));
    }

    /// A delta computed between two filter snapshots exactly reconstructs the
    /// newer snapshot, and applying it twice is the identity.
    #[test]
    fn bloom_delta_round_trips(
        base in proptest::collection::vec("[a-z]{1,10}", 0..40),
        added in proptest::collection::vec("[a-z]{1,10}", 0..20),
    ) {
        let mut old = BloomFilter::paper_default();
        for kw in &base {
            old.insert(kw);
        }
        let mut new = old.clone();
        for kw in &added {
            new.insert(kw);
        }
        let delta = BloomDelta::between(&old, &new);
        prop_assert!(delta.len() <= added.len() * 5, "at most k bits flip per insertion");

        let mut reconstructed = old.clone();
        delta.apply(&mut reconstructed);
        prop_assert_eq!(&reconstructed, &new);
        delta.apply(&mut reconstructed);
        prop_assert_eq!(&reconstructed, &old);
    }

    // ----------------------------------------------------------------- locId

    /// Lehmer encoding of landmark orderings is a bijection onto [0, k!).
    #[test]
    fn locid_encoding_is_bijective(perm in (2usize..=6).prop_flat_map(|k| Just((0..k).collect::<Vec<usize>>()).prop_shuffle())) {
        let k = perm.len();
        let id = LocId::from_ordering(&perm);
        prop_assert!(id.value() < LocId::cardinality(k));
        prop_assert_eq!(id.to_ordering(k), perm);
    }

    // ------------------------------------------------------------------ Zipf

    /// The Zipf sampler only returns valid ranks, its pmf sums to one and is
    /// non-increasing in rank.
    #[test]
    fn zipf_is_a_well_formed_distribution(
        n in 1usize..2000,
        exponent in 0.0f64..2.5,
        seed in any::<u64>(),
    ) {
        let zipf = ZipfDistribution::new(n, exponent);
        let total: f64 = (0..n).map(|r| zipf.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "pmf sums to {total}");
        for r in 1..n.min(50) {
            prop_assert!(zipf.pmf(r) <= zipf.pmf(r - 1) + 1e-12, "pmf must be non-increasing");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    // -------------------------------------------------------- response index

    /// Under arbitrary insertion sequences the response index never exceeds
    /// its filename capacity nor its per-file provider capacity, and every
    /// reported eviction refers to a file that is no longer cached.
    #[test]
    fn response_index_respects_capacities(
        capacity in 1usize..12,
        max_providers in 1usize..6,
        ops in proptest::collection::vec((0u32..30, 0u32..40, 0u32..24), 1..200),
    ) {
        let mut index = ResponseIndex::new(capacity, max_providers);
        for (file, provider, loc) in ops {
            let keywords = [KeywordId(file * 3), KeywordId(file * 3 + 1)];
            let evictions = index.insert(
                FileId(file),
                &keywords,
                [(PeerId(provider), LocId(loc))],
            );
            prop_assert!(index.len() <= capacity, "capacity exceeded");
            for entry in index.entries() {
                prop_assert!(entry.provider_count() <= max_providers, "provider cap exceeded");
            }
            for eviction in evictions {
                prop_assert!(!index.contains(eviction.file), "evicted file still present");
            }
            prop_assert!(index.contains(FileId(file)), "just-inserted file must be cached");
        }
    }

    /// Model-based equivalence: the optimized response index (recency set +
    /// inverted keyword postings, PR 3; provider → files postings, PR 4)
    /// behaves *identically* to the naive reference implementation under
    /// arbitrary interleavings of single- and multi-provider inserts,
    /// provider removals and clears — same evictions, same keyword-lookup
    /// results, same per-provider file sets, same eviction candidate, same
    /// contents.
    #[test]
    fn optimized_response_index_matches_the_naive_model(
        capacity in 1usize..14,
        max_providers in 1usize..5,
        // op, file, provider, loc: ops 0..=7 insert one provider (biased —
        // the common operation), 8 removes a provider, 9 clears, 10..=11
        // insert three providers at once (exercising the provider-overflow
        // drop and multi-file provider postings).
        ops in proptest::collection::vec((0u32..12, 0u32..24, 0u32..12, 0u32..24), 1..250),
    ) {
        let mut optimized = ResponseIndex::new(capacity, max_providers);
        let mut model = NaiveResponseIndex::new(capacity, max_providers);
        for (op, file, provider, loc) in ops {
            match op {
                8 => {
                    let mut a = optimized.remove_provider(PeerId(provider));
                    let mut b = model.remove_provider(PeerId(provider));
                    // The naive model reports multi-entry removals in map
                    // order, which is unspecified; compare as sets.
                    a.sort_by_key(|e| e.file);
                    b.sort_by_key(|e| e.file);
                    prop_assert_eq!(a, b, "remove_provider evictions diverged");
                }
                9 => {
                    optimized.clear();
                    model.clear();
                }
                10 | 11 => {
                    let keywords = [KeywordId(file), KeywordId(file + 1), KeywordId(file / 2)];
                    let providers: Vec<(PeerId, LocId)> = (0..3)
                        .map(|i| (PeerId((provider + i) % 12), LocId(loc)))
                        .collect();
                    let a = optimized.insert(FileId(file), &keywords, providers.clone());
                    let b = model.insert(FileId(file), &keywords, providers);
                    prop_assert_eq!(a, b, "multi-provider insert evictions diverged");
                }
                _ => {
                    // Overlapping keyword sets across files exercise postings
                    // lists with more than one file.
                    let keywords = [KeywordId(file), KeywordId(file + 1), KeywordId(file / 2)];
                    let a = optimized.insert(FileId(file), &keywords, [(PeerId(provider), LocId(loc))]);
                    let b = model.insert(FileId(file), &keywords, [(PeerId(provider), LocId(loc))]);
                    prop_assert_eq!(a, b, "insert evictions diverged");
                }
            }
            prop_assert_eq!(optimized.len(), model.len());
            prop_assert_eq!(optimized.eviction_candidate(), model.eviction_candidate());
            // Every observable lookup agrees: per-file entries (keywords,
            // providers, order), keyword queries (results + order) and the
            // provider → files view served by the provider postings map.
            for probe in 0u32..26 {
                prop_assert_eq!(optimized.entry(FileId(probe)), model.entry(FileId(probe)));
            }
            for kw in 0u32..26 {
                let single = [KeywordId(kw)];
                prop_assert_eq!(
                    optimized.lookup_by_keywords(&single),
                    model.lookup_by_keywords(&single)
                );
                let pair = [KeywordId(kw), KeywordId(kw + 1)];
                prop_assert_eq!(
                    optimized.lookup_by_keywords(&pair),
                    model.lookup_by_keywords(&pair)
                );
            }
            for peer in 0u32..12 {
                prop_assert_eq!(
                    optimized.files_of_provider(PeerId(peer)).to_vec(),
                    model.files_of_provider(PeerId(peer)),
                    "provider postings diverged for peer {}", peer
                );
            }
        }
    }

    // ----------------------------------------------------- arrival schedules

    /// Every schedule shape produces exactly the requested number of
    /// arrivals, in non-decreasing time order, attributed to in-range peers,
    /// and deterministically per seed.
    #[test]
    fn arrival_schedules_generate_sorted_deterministic_arrivals(
        kind in 0u32..4,
        m1 in 0.2f64..8.0,
        m2 in 0.2f64..8.0,
        d1 in 20.0f64..600.0,
        d2 in 20.0f64..600.0,
        start in 0.0f64..300.0,
        peers in 5usize..200,
        count in 1usize..250,
        seed in any::<u64>(),
    ) {
        let schedule = match kind {
            0 => ArrivalSchedule::Steady,
            1 => ArrivalSchedule::Ramp { from: m1, to: m2, duration_secs: d1 },
            2 => ArrivalSchedule::Burst { multiplier: m1, start_secs: start, duration_secs: d1 },
            _ => ArrivalSchedule::Phases(vec![
                RatePhase { multiplier: m1, duration_secs: d1 },
                RatePhase { multiplier: m2, duration_secs: d2 },
            ]),
        };
        prop_assert!(schedule.validate().is_ok(), "generated schedules are well formed");
        let process = ArrivalProcess::new(ArrivalConfig {
            peers,
            rate_per_peer: 0.01,
            schedule,
            origin_weights: None,
        })
        .expect("valid configuration");
        let a = process.generate_count(count, &mut StdRng::seed_from_u64(seed));
        let b = process.generate_count(count, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b, "same seed must replay identically");
        prop_assert_eq!(a.len(), count);
        for w in a.windows(2) {
            prop_assert!(w[0].at <= w[1].at, "arrival times must be non-decreasing");
        }
        for arrival in &a {
            prop_assert!(arrival.peer < peers);
        }
    }

    /// `Steady` (the omitted-schedule default) is *bit-for-bit* the legacy
    /// constant-rate generator: same RNG draws, same floating-point
    /// operations, same microsecond timestamps — the property that keeps
    /// every historical fingerprint valid.
    #[test]
    fn steady_schedule_matches_the_legacy_generator_bit_for_bit(
        peers in 1usize..500,
        rate in 0.0001f64..5.0,
        count in 0usize..250,
        seed in any::<u64>(),
    ) {
        let process = ArrivalProcess::new(ArrivalConfig {
            peers,
            rate_per_peer: rate,
            schedule: ArrivalSchedule::Steady,
            origin_weights: None,
        })
        .expect("valid configuration");
        let modern = process.generate_count(count, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(modern, legacy_arrivals(peers, rate, count, seed));
    }

    /// Horizon-bounded generation lands the statistically right number of
    /// arrivals in every phase of a two-phase schedule (the time-scaled
    /// inversion really modulates intensity, not just timestamps).
    #[test]
    fn phase_arrival_counts_track_the_scheduled_intensity(
        m1 in 0.2f64..8.0,
        m2 in 0.2f64..8.0,
        seed in any::<u64>(),
    ) {
        let duration = 2000.0;
        let process = ArrivalProcess::new(ArrivalConfig {
            peers: 100,
            rate_per_peer: 0.01, // base 1 q/s
            schedule: ArrivalSchedule::Phases(vec![
                RatePhase { multiplier: m1, duration_secs: duration },
                RatePhase { multiplier: m2, duration_secs: duration },
            ]),
            origin_weights: None,
        })
        .expect("valid configuration");
        let horizon = SimTime::from_secs(2 * duration as u64);
        let arrivals = process.generate_until(horizon, &mut StdRng::seed_from_u64(seed));
        let first = arrivals.iter().filter(|a| a.at.as_secs_f64() < duration).count();
        let second = arrivals.len() - first;
        for (phase, got, multiplier) in [(1, first, m1), (2, second, m2)] {
            let expected = multiplier * duration;
            let tolerance = 5.0 * expected.sqrt() + 10.0;
            prop_assert!(
                (got as f64 - expected).abs() < tolerance,
                "phase {}: got {} arrivals, expected {:.0}±{:.0}",
                phase, got, expected, tolerance
            );
        }
    }

    // ----------------------------------------------------------- overlay gen

    /// Random overlay generation always yields a connected graph with roughly
    /// the requested average degree, for any seed and population size.
    #[test]
    fn generated_overlays_are_connected(
        peers in 2usize..300,
        seed in any::<u64>(),
    ) {
        let config = GeneratorConfig {
            peers,
            average_degree: 3.0f64.min(peers as f64 - 1.0),
            model: GraphModel::Random,
        };
        let graph = config.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(graph.len(), peers);
        prop_assert!(graph.is_connected(), "overlay must be connected");
    }

    // ------------------------------------------------------------- selection

    /// Provider selection always returns one of the offered providers, and the
    /// locality-aware policy returns a same-locId provider whenever one exists.
    #[test]
    fn provider_selection_picks_from_the_offer(
        offered_ids in proptest::collection::vec(1u32..50, 1..8),
        locs in proptest::collection::vec(0u32..24, 8),
        requestor_loc in 0u32..24,
        seed in any::<u64>(),
    ) {
        let topology = BriteGenerator::new(BriteConfig {
            nodes: 50,
            placement: PlacementModel::Uniform,
            ..BriteConfig::default()
        })
        .generate(&mut StdRng::seed_from_u64(1));

        let offered: Vec<ProviderEntry> = offered_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| ProviderEntry {
                provider: PeerId(id),
                loc_id: LocId(locs[i % locs.len()]),
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for policy in [SelectionPolicy::Random, SelectionPolicy::LocalityThenRtt] {
            let selected = locaware::select_provider(
                policy,
                &topology,
                &locaware::LinkLatencyCache::empty(topology.len()),
                NodeId(0),
                LocId(requestor_loc),
                &offered,
                &mut rng,
            )
            .expect("non-empty offer must select something");
            prop_assert!(offered.iter().any(|p| p.provider == selected.provider));
            if policy == SelectionPolicy::LocalityThenRtt
                && offered.iter().any(|p| p.loc_id == LocId(requestor_loc))
            {
                prop_assert!(selected.locality_match, "must prefer the same-locality provider");
                prop_assert_eq!(selected.loc_id, LocId(requestor_loc));
            }
        }
    }

    // ------------------------------------------------------------- sim time

    /// Simulated-time arithmetic is consistent: ordering matches microsecond
    /// values and addition/subtraction round-trip.
    #[test]
    fn sim_time_arithmetic_is_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        prop_assert_eq!(ta < tb, a < b);
        let d = Duration::from_micros(b);
        prop_assert_eq!((ta + d) - ta, d);
        prop_assert_eq!(ta.duration_since(ta + d), Duration::ZERO);
    }

    // ------------------------------------------------------- query lifecycle

    /// The exact query lifecycle is shard-invariant. Random `Burst` schedules
    /// compress arrivals into dense windows — the regime that stresses the
    /// sharded engine's lifecycle machinery hardest: barrier folds of
    /// outstanding-message flux, deferred duplicate-map prunes and the window
    /// caps that hold back issues racing their own completion. A 1-shard and
    /// a 4-shard run of the same substrate must agree on every per-query
    /// record — in particular the completion times (all `Some`: nothing is
    /// event-budget-truncated at these sizes) and the duplicate-suppression
    /// decisions (each query's target redraws depend on the pruned `issued`
    /// map, so a mistimed prune changes targets, messages and outcomes).
    #[test]
    fn query_lifecycle_is_shard_invariant_under_bursts(
        peers in 40usize..=60,
        multiplier in 1.5f64..40.0,
        start_secs in 0.0f64..2000.0,
        duration_secs in 50.0f64..2000.0,
        queries in 8usize..=30,
        seed in any::<u64>(),
    ) {
        let mut config = SimulationConfig::small(peers);
        config.seed = seed;
        config.arrival_schedule = ArrivalSchedule::Burst { multiplier, start_secs, duration_secs };
        let run = |shards: usize| {
            let mut config = config.clone();
            config.shards = shards;
            Scenario::from_config("burst-lifecycle", config)
                .expect("a burst over SimulationConfig::small is well formed")
                .substrate()
                .run(ProtocolKind::Locaware, queries)
        };
        let single = run(1);
        let sharded = run(4);
        prop_assert_eq!(single.metrics.records(), sharded.metrics.records());
        prop_assert_eq!(single.fingerprint(), sharded.fingerprint());
        for record in single.metrics.records() {
            prop_assert!(
                record.completion_time_ms.is_some(),
                "query {} has no completion time in an untruncated run",
                record.index
            );
        }
    }

    /// The fault axis obeys the same contract as every other knob: any
    /// validated fault plan — loss coins, outage windows, crash-stop churn,
    /// retransmit deadlines and DHT step timeouts in arbitrary combination —
    /// produces byte-identical reports for 1 and 4 shards, every query still
    /// receives an exact completion event (lost messages *consume*, armed
    /// deadlines are lifecycle-charged), and a plan whose axes are all
    /// disabled reports no fault stats at all (so fault-free runs keep their
    /// pinned golden fingerprints, which `tests/determinism.rs` asserts
    /// against literals).
    #[test]
    fn fault_plans_are_deterministic_and_shard_invariant(
        peers in 40usize..=56,
        loss in prop_oneof![Just(0.0f64), 0.005f64..0.25],
        outage in proptest::option::weighted(0.6, (0.0f64..1500.0, 50.0f64..800.0, 0.05f64..1.0)),
        crash_stop in any::<bool>(),
        timeout_initial in prop_oneof![Just(0.0f64), 1.0f64..12.0],
        backoff in 1.0f64..3.0,
        max_retries in 0u32..3,
        step_timeout in prop_oneof![Just(0.0f64), 0.5f64..6.0],
        structured in any::<bool>(),
        queries in 8usize..=24,
        seed in any::<u64>(),
    ) {
        let mut config = SimulationConfig::small(peers);
        config.seed = seed;
        config.faults = FaultConfig {
            message_loss: loss,
            outages: outage
                .map(|(start_secs, duration_secs, fraction)| {
                    vec![OutageWindow { start_secs, duration_secs, fraction }]
                })
                .unwrap_or_default(),
            crash_stop,
            query_timeout: TimeoutPolicy {
                initial_secs: timeout_initial,
                backoff,
                max_retries,
            },
            dht_step_timeout_secs: step_timeout,
        };
        let armed = !config.faults.is_disabled();
        let protocol = if structured { ProtocolKind::DhtIndex } else { ProtocolKind::Locaware };
        let run = |shards: usize| {
            let mut config = config.clone();
            config.shards = shards;
            Scenario::from_config("fault-plan", config)
                .expect("drawn fault plans satisfy their own validation ranges")
                .substrate()
                .run(protocol, queries)
        };
        let single = run(1);
        let sharded = run(4);
        prop_assert_eq!(single.metrics.records(), sharded.metrics.records());
        prop_assert_eq!(single.faults, sharded.faults);
        prop_assert_eq!(single.fingerprint(), sharded.fingerprint());
        prop_assert_eq!(single.faults.is_some(), armed, "fault stats exactly when armed");
        for record in single.metrics.records() {
            prop_assert!(
                record.completion_time_ms.is_some(),
                "query {} leaked its lifecycle under faults",
                record.index
            );
        }
    }

    // ----------------------------------------------------------------- DHT

    /// Under arbitrary insert/remove interleavings a k-bucket routing table
    /// never exceeds `k` contacts per bucket, never admits the local node or
    /// a duplicate peer, and its length always equals the sum of its bucket
    /// lengths.
    #[test]
    fn routing_table_respects_bucket_capacity(
        k in 1usize..6,
        local in any::<u64>(),
        salt in any::<u64>(),
        // op 0..=5 inserts (biased — the common operation), 6..=7 removes.
        ops in proptest::collection::vec((0u32..8, 0u64..400), 1..300),
    ) {
        use locaware_overlay::dht::DHT_ID_BITS;

        let local = DhtId::derive(salt, local);
        let mut table = RoutingTable::new(local, k);
        for (op, value) in ops {
            let id = DhtId::derive(salt, value);
            let peer = PeerId(value as u32);
            if op < 6 {
                let had = table.contains(peer);
                let accepted = table.insert(id, peer);
                prop_assert!(!(had && accepted), "a held contact must be rejected");
                if id == local {
                    prop_assert!(!accepted, "the local node is never a contact");
                }
            } else {
                table.remove(peer);
                prop_assert!(!table.contains(peer), "removed contact still present");
            }
            let mut total = 0;
            for bucket in 0..DHT_ID_BITS {
                prop_assert!(table.bucket_len(bucket) <= k, "bucket {bucket} over capacity");
                total += table.bucket_len(bucket);
            }
            prop_assert_eq!(table.len(), total, "length must equal the bucket sum");
        }
    }

    /// `closest` agrees with an exhaustive scan of the table's contents —
    /// rank every held contact by `(XOR distance, peer id)` and take the
    /// prefix — for arbitrary populations, capacities and targets.
    #[test]
    fn routing_table_closest_matches_naive_scan(
        k in 1usize..6,
        salt in any::<u64>(),
        contacts in proptest::collection::vec(0u64..500, 0..200),
        target in any::<u64>(),
        count in 0usize..12,
    ) {
        let local = DhtId::derive(salt, u64::MAX);
        let mut table = RoutingTable::new(local, k);
        let mut held: Vec<(DhtId, PeerId)> = Vec::new();
        for value in contacts {
            let id = DhtId::derive(salt, value);
            let peer = PeerId(value as u32);
            if table.insert(id, peer) {
                held.push((id, peer));
            }
        }
        let target = DhtId::derive(salt.wrapping_add(1), target);
        let mut expected: Vec<(locaware_overlay::DhtDistance, PeerId)> = held
            .iter()
            .map(|&(id, peer)| (target.distance(id), peer))
            .collect();
        expected.sort_unstable();
        let expected: Vec<PeerId> = expected.into_iter().take(count).map(|(_, p)| p).collect();
        prop_assert_eq!(table.closest(target, count), expected);
    }

    /// A record's contents are a pure function of the *set* of inserts
    /// applied — any permutation of the same upserts yields byte-identical
    /// lookups, sizes and truncation counts, the property the sharded
    /// engine's bit-identical contract rests on. The byte cap always holds.
    #[test]
    fn record_store_truncation_is_insertion_order_independent(
        capacity_entries in 1usize..6,
        // (keyword, file) packed as keyword * 12 + file — the in-tree
        // proptest shim implements `Strategy` for tuples of at most 4.
        inserts in proptest::collection::vec((0u32..48, 0u32..10, 0u32..20, 1u64..1000), 1..60),
        seed in any::<u64>(),
    ) {
        use locaware_overlay::dht::{RECORD_ENTRY_BYTES, RECORD_KEY_BYTES};

        let cap = RECORD_KEY_BYTES + capacity_entries * RECORD_ENTRY_BYTES;
        let apply = |order: &[(u32, u32, u32, u64)]| {
            let mut store = DhtRecordStore::new(cap);
            for &(kw_file, provider, loc, expiry_secs) in order {
                let provider = ProviderEntry {
                    provider: PeerId(provider),
                    loc_id: LocId(loc),
                };
                store.insert(
                    kw_file / 12,
                    kw_file % 12,
                    provider,
                    SimTime::ZERO + Duration::from_secs(expiry_secs),
                );
            }
            let mut snapshot = Vec::new();
            for keyword in 0u32..4 {
                snapshot.push(0xffff_ffffu32); // record separator
                let mut out = Vec::new();
                store.lookup_into(keyword, SimTime::ZERO, &mut out);
                for (file, entry) in out {
                    snapshot.extend([file, entry.provider.0, entry.loc_id.value()]);
                }
            }
            (snapshot, store.records(), store.entries(), store.bytes())
        };

        let baseline = apply(&inserts);
        prop_assert!(baseline.3 <= 4 * cap, "every record must respect the byte cap");
        let mut shuffled = inserts.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        prop_assert_eq!(
            apply(&shuffled),
            baseline,
            "a permutation of the same upserts must be indistinguishable"
        );
    }

    // ------------------------------------------------------------ landmarks

    /// Landmark RTT orderings always produce valid locIds, and identical
    /// positions produce identical locIds.
    #[test]
    fn landmark_binning_is_deterministic(seed in any::<u64>(), nodes in 2usize..100) {
        let topology: PhysicalTopology = BriteGenerator::new(BriteConfig {
            nodes,
            placement: PlacementModel::Clustered { clusters: 6, sigma: 0.02 },
            ..BriteConfig::default()
        })
        .generate(&mut StdRng::seed_from_u64(seed));
        let landmarks = LandmarkSet::spread(4);
        let a = landmarks.assign_all(&topology);
        let b = landmarks.assign_all(&topology);
        prop_assert_eq!(&a, &b);
        for loc in a {
            prop_assert!(loc.value() < 24);
        }
    }

    // ------------------------------------------------- parallel build stages

    /// The staged parallel substrate-build fan-out is bit-identical across
    /// build-thread counts: the landmark assignment and the link-latency
    /// cache — the two parallelised stages — produce the same bytes with
    /// 1, 2 and 8 workers.
    #[test]
    fn parallel_build_stages_are_thread_count_invariant(
        seed in any::<u64>(),
        nodes in 2usize..400,
    ) {
        let topology: PhysicalTopology = BriteGenerator::new(BriteConfig {
            nodes,
            ..BriteConfig::default()
        })
        .generate(&mut StdRng::seed_from_u64(seed));
        let landmarks = LandmarkSet::spread(4);
        let graph = GeneratorConfig {
            peers: nodes,
            average_degree: 3.0_f64.min(nodes as f64 - 1.0).max(0.5),
            model: GraphModel::Random,
        }
        .generate(&mut StdRng::seed_from_u64(seed ^ 0x9E37));

        let serial_locs = landmarks.assign_all_with_threads(&topology, 1);
        let serial_cache = LinkLatencyCache::build_with_threads(&topology, graph.edges(), 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                &landmarks.assign_all_with_threads(&topology, threads),
                &serial_locs,
                "landmark assignment must not depend on the worker count"
            );
            let cache = LinkLatencyCache::build_with_threads(&topology, graph.edges(), threads);
            let serial_links: Vec<_> = serial_cache.links().collect();
            let parallel_links: Vec<_> = cache.links().collect();
            prop_assert_eq!(
                parallel_links,
                serial_links,
                "latency cache must not depend on the worker count"
            );
        }
    }
}
