//! Paper-scale smoke tier: the 1000-peer §5.1 setup, end to end.
//!
//! Everything else in the suite runs at ≤200 peers so the harness stays fast;
//! nothing there would catch a regression that only appears at the published
//! scale (event-queue growth, Bloom saturation, provider-selection cost over
//! the full all-pairs latency matrix). These tests run the real
//! `paper-defaults` scenario and are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test paper_scale -- --ignored
//! ```

use locaware::{ExperimentPlan, ProtocolKind, Runner, Scenario};

#[test]
#[ignore = "paper scale (1000 peers); run with: cargo test --release --test paper_scale -- --ignored"]
fn paper_defaults_run_locaware_end_to_end() {
    let scenario = Scenario::paper_defaults();
    assert_eq!(scenario.config().peers, 1000);

    let queries = 1000usize;
    let report = scenario.substrate().run(ProtocolKind::Locaware, queries);

    assert_eq!(report.queries_issued as usize, queries);
    assert_eq!(report.metrics.len(), queries);
    assert!(report.dispatched_events > 0);
    assert!(
        report.success_rate() > 0.0 && report.success_rate() <= 1.0,
        "paper-scale Locaware must satisfy some queries (got {:.4})",
        report.success_rate()
    );
    for record in report.metrics.records() {
        if let Some(distance) = record.download_distance_ms {
            assert!(
                distance >= 0.0 && distance <= scenario.config().max_latency_ms,
                "download distance {distance}ms out of the configured latency bounds"
            );
        }
    }
}

#[test]
#[ignore = "paper scale (1000 peers); run with: cargo test --release --test paper_scale -- --ignored"]
fn sharded_engine_reproduces_single_shard_results_at_paper_scale() {
    // The determinism matrix pins shard-count invariance at 60 peers; this
    // smoke re-pins it at the published scale, where the locality partition,
    // the window planner and the barrier merge all see realistic pressure
    // (24 locIds, thousands of cross-shard links, ~10⁵ events).
    let queries = 300usize;
    let reports: Vec<_> = [1usize, 4]
        .iter()
        .map(|&shards| {
            let mut config = Scenario::paper_defaults().config().clone();
            config.shards = shards;
            let scenario = locaware::Scenario::from_config(format!("paper-s{shards}"), config)
                .expect("shard count does not affect validity");
            scenario.substrate().run(ProtocolKind::Locaware, queries)
        })
        .collect();

    let (single, sharded) = (&reports[0], &reports[1]);
    assert_eq!(single.metrics.records(), sharded.metrics.records());
    assert_eq!(single.queries_issued, sharded.queries_issued);
    assert_eq!(single.dispatched_events, sharded.dispatched_events);
    assert_eq!(single.background_messages, sharded.background_messages);
    assert_eq!(single.total_file_replicas, sharded.total_file_replicas);
    assert_eq!(
        single.total_cached_index_entries,
        sharded.total_cached_index_entries
    );
    assert_eq!(
        single.simulated_end_time_secs.to_bits(),
        sharded.simulated_end_time_secs.to_bits()
    );
}

#[test]
#[ignore = "frontier scale (10000 peers); run with: cargo test --release --test paper_scale -- --ignored"]
fn large_10k_substrate_builds_and_is_shard_invariant() {
    // The scale-frontier smoke: the `large-10k` preset at its nominal
    // population must build (exercising the staged parallel build, the CSR
    // overlay and the O(log n) directory bootstrap at 10× the published
    // scale) and the sharded engine must stay bit-identical to the
    // single-shard run there.
    let queries = 200usize;
    let reports: Vec<_> = [1usize, 4]
        .iter()
        .map(|&shards| {
            let mut config = Scenario::large_10k(10_000).config().clone();
            config.shards = shards;
            let scenario = locaware::Scenario::from_config(format!("large-10k-s{shards}"), config)
                .expect("shard count does not affect validity");
            scenario.substrate().run(ProtocolKind::Locaware, queries)
        })
        .collect();

    let (single, sharded) = (&reports[0], &reports[1]);
    assert_eq!(single.fingerprint(), sharded.fingerprint());
    assert_eq!(single.metrics.records(), sharded.metrics.records());
    assert_eq!(single.dispatched_events, sharded.dispatched_events);
    assert!(single.dispatched_events > 0);
}

#[test]
#[ignore = "paper scale (1000 peers); run with: cargo test --release --test paper_scale -- --ignored"]
fn paper_defaults_grid_point_shares_one_substrate_across_protocols() {
    let queries = 500usize;
    let plan = ExperimentPlan::new()
        .scenario(Scenario::paper_defaults())
        .protocols(ProtocolKind::PAPER_SET)
        .query_count(queries);
    let outcome = Runner::new().run(&plan).expect("plan lists every dimension");

    assert_eq!(outcome.substrates_built, 1, "one 1000-peer build for all four curves");
    assert_eq!(outcome.len(), ProtocolKind::PAPER_SET.len());

    let flooding = outcome
        .report("paper-defaults", ProtocolKind::Flooding, queries, 0)
        .expect("flooding ran");
    let locaware = outcome
        .report("paper-defaults", ProtocolKind::Locaware, queries, 0)
        .expect("locaware ran");
    assert!(
        flooding.avg_messages_per_query() > locaware.avg_messages_per_query(),
        "the paper's Figure 3 ordering must hold at full scale ({:.1} vs {:.1})",
        flooding.avg_messages_per_query(),
        locaware.avg_messages_per_query()
    );
}
