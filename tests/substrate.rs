//! Integration tests over the prepared substrate: the pieces built once per
//! simulation (underlay, localities, overlay, catalog, placement, groups) must
//! be mutually consistent and must honour the paper's §5.1 parameters.

use locaware::{GroupScheme, ProtocolKind, Scenario, Simulation, SimulationConfig};
use locaware_net::LocId;

fn paper_small(seed: u64) -> Simulation {
    Scenario::small(200).with_seed(seed).substrate()
}

#[test]
fn paper_default_configuration_is_the_published_setup() {
    let config = SimulationConfig::paper_defaults();
    assert_eq!(config.peers, 1000);
    assert_eq!(config.average_degree, 3.0);
    assert_eq!(config.ttl, 7);
    assert_eq!(config.landmarks, 4);
    assert_eq!(config.file_pool, 3000);
    assert_eq!(config.keyword_pool, 9000);
    assert_eq!(config.files_per_peer, 3);
    assert_eq!(config.bloom_bits, 1200);
    assert_eq!(config.response_index_capacity, 50);
    assert!(config.validate().is_ok());
}

#[test]
fn localities_use_the_landmark_cardinality() {
    let simulation = paper_small(1);
    let cardinality = simulation.landmarks().loc_id_cardinality();
    assert_eq!(cardinality, 24, "4 landmarks give 4! = 24 locIds");
    for &loc in simulation.loc_ids() {
        assert!(loc.value() < cardinality, "locId {loc} out of range");
    }
    // Clustered placement must produce real locality structure: several
    // distinct locIds, and peers sharing a locId are physically close.
    let distinct: std::collections::HashSet<LocId> =
        simulation.loc_ids().iter().copied().collect();
    assert!(distinct.len() > 1, "expected more than one locality");

    let topo = simulation.topology();
    let locs = simulation.loc_ids();
    let mut same_loc = Vec::new();
    let mut diff_loc = Vec::new();
    for a in topo.nodes() {
        for b in topo.nodes() {
            if a >= b {
                continue;
            }
            let rtt = topo.rtt(a, b).as_millis_f64();
            if locs[a.index()] == locs[b.index()] {
                same_loc.push(rtt);
            } else {
                diff_loc.push(rtt);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&same_loc) < mean(&diff_loc),
        "same-locId pairs must be closer on average ({:.1}ms vs {:.1}ms)",
        mean(&same_loc),
        mean(&diff_loc)
    );
}

#[test]
fn overlay_matches_the_configured_degree_and_is_connected() {
    let simulation = paper_small(2);
    let overlay = simulation.overlay();
    assert!(overlay.is_connected());
    let avg = overlay.average_degree();
    assert!(
        (avg - simulation.config().average_degree).abs() < 0.5,
        "average degree {avg} should be close to the configured {}",
        simulation.config().average_degree
    );
    // TTL-7 flooding from a random peer must reach a large share of the
    // overlay — this is the reach that gives flooding its high success rate.
    let reach = overlay.peers_within(locaware::PeerId(0), simulation.config().ttl);
    assert!(
        reach.len() > overlay.len() / 5,
        "TTL-{} reach {} of {} peers is implausibly small",
        simulation.config().ttl,
        reach.len(),
        overlay.len()
    );
}

#[test]
fn catalog_and_placement_are_consistent() {
    let simulation = paper_small(3);
    let catalog = simulation.catalog();
    let config = simulation.config();
    assert_eq!(catalog.len(), config.file_pool);
    assert_eq!(catalog.keyword_pool().len(), config.keyword_pool);

    for (peer, files) in simulation.initial_shares().iter().enumerate() {
        assert_eq!(
            files.len(),
            config.files_per_peer,
            "peer {peer} must initially share {} files",
            config.files_per_peer
        );
        for file in files {
            assert!(file.index() < catalog.len(), "shared file out of catalog range");
            assert_eq!(catalog.filename(*file).len(), config.keywords_per_file);
        }
    }
}

#[test]
fn group_assignment_respects_the_modulus_and_is_spread() {
    let simulation = paper_small(4);
    let modulus = simulation.config().group_count;
    let mut counts = vec![0usize; modulus as usize];
    for gid in simulation.group_ids() {
        assert!(gid.value() < modulus);
        counts[gid.value() as usize] += 1;
    }
    // No group should be empty on a 200-peer population with M = 4.
    assert!(counts.iter().all(|&c| c > 0), "group assignment left a group empty: {counts:?}");

    // The scheme's file hashing agrees between an independently constructed
    // scheme and the one the simulation used (pure function of M).
    let scheme = GroupScheme::new(modulus);
    for f in simulation.catalog().files().take(20) {
        assert_eq!(scheme.group_of_file(f), GroupScheme::new(modulus).group_of_file(f));
    }
}

#[test]
fn arrival_schedule_is_monotone_and_respects_the_rate() {
    let simulation = paper_small(5);
    let arrivals = simulation.arrivals(500);
    assert_eq!(arrivals.len(), 500);
    for pair in arrivals.windows(2) {
        assert!(pair[0].at <= pair[1].at);
    }
    for arrival in &arrivals {
        assert!(arrival.peer < simulation.config().peers);
    }
    // Mean inter-arrival time ≈ 1 / (peers × per-peer rate).
    let span = arrivals.last().unwrap().at.as_secs_f64();
    let expected_gap =
        1.0 / (simulation.config().peers as f64 * simulation.config().query_rate_per_peer);
    let mean_gap = span / arrivals.len() as f64;
    assert!(
        (mean_gap - expected_gap).abs() < expected_gap * 0.25,
        "mean inter-arrival {mean_gap:.2}s should be close to {expected_gap:.2}s"
    );
}

#[test]
fn substrate_is_shared_identically_across_protocol_runs() {
    let simulation = paper_small(6);
    // The arrival schedule handed to every protocol must be identical.
    let a = simulation.arrivals(100);
    let b = simulation.arrivals(100);
    assert_eq!(a, b);

    // And two protocols run over it must see the same number of queries from
    // the same requestors (the per-record requestor sequence is identical).
    let flooding = simulation.run(ProtocolKind::Flooding, 60);
    let locaware = simulation.run(ProtocolKind::Locaware, 60);
    let requestors = |r: &locaware::SimulationReport| {
        r.metrics.records().iter().map(|q| q.requestor).collect::<Vec<_>>()
    };
    assert_eq!(requestors(&flooding), requestors(&locaware));
}
