//! Integration tests of the churn extension: peers leaving and rejoining while
//! queries are in flight.
//!
//! The paper's evaluation is static; churn is the reproduction's extension
//! exercising the staleness concerns §4.1.2 raises. These tests check that the
//! engine stays consistent under churn (no panics, metrics still well formed)
//! and that Locaware's multi-provider indexes degrade more gracefully than a
//! single-provider cache.

use locaware::{ProtocolKind, Scenario, Simulation};
use locaware_overlay::ChurnConfig;

fn churny_sim(peers: usize, seed: u64, churn: ChurnConfig) -> Simulation {
    Scenario::builder("churny")
        .peers(peers)
        .seed(seed)
        .churn(churn)
        .build()
        .expect("churn never invalidates a small config")
        .substrate()
}

#[test]
fn runs_complete_under_heavy_churn() {
    let churn = ChurnConfig {
        mean_session_secs: 300.0,
        mean_offline_secs: 300.0,
        churning_fraction: 0.5,
    };
    let simulation = churny_sim(100, 11, churn);
    for protocol in ProtocolKind::PAPER_SET {
        let report = simulation.run(protocol, 80);
        assert_eq!(report.metrics.len(), report.queries_issued as usize);
        assert!(report.queries_issued <= 80, "offline requestors skip their queries");
        assert!(report.success_rate() <= 1.0);
        for record in report.metrics.records() {
            if record.is_success() {
                assert!(record.download_distance_ms.is_some());
            }
        }
    }
}

#[test]
fn churn_reduces_success_compared_to_a_static_overlay() {
    let seed = 12;
    let static_sim = churny_sim(150, seed, ChurnConfig::disabled());
    let churny = churny_sim(
        150,
        seed,
        ChurnConfig {
            mean_session_secs: 400.0,
            mean_offline_secs: 800.0,
            churning_fraction: 0.6,
        },
    );
    let queries = 150;
    let static_report = static_sim.run(ProtocolKind::Locaware, queries);
    let churny_report = churny.run(ProtocolKind::Locaware, queries);
    assert!(
        churny_report.success_rate() <= static_report.success_rate(),
        "churn must not improve success ({:.3} churny vs {:.3} static)",
        churny_report.success_rate(),
        static_report.success_rate()
    );
}

#[test]
fn churn_schedule_is_generated_and_deterministic() {
    let churn = ChurnConfig {
        mean_session_secs: 200.0,
        mean_offline_secs: 200.0,
        churning_fraction: 0.8,
    };
    let simulation = churny_sim(80, 13, churn);
    let arrivals = simulation.arrivals(200);
    let a = simulation.churn_schedule(&arrivals);
    let b = simulation.churn_schedule(&arrivals);
    assert_eq!(a, b, "churn schedule must be reproducible");
    assert!(!a.is_empty(), "with 80% churners there must be transitions");
    let horizon = arrivals.last().unwrap().at;
    for event in &a {
        assert!(event.at <= horizon);
        assert!(event.peer.index() < 80);
    }
}
