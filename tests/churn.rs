//! Integration tests of the churn extension: peers leaving and rejoining while
//! queries are in flight.
//!
//! The paper's evaluation is static; churn is the reproduction's extension
//! exercising the staleness concerns §4.1.2 raises. These tests check that the
//! engine stays consistent under churn (no panics, metrics still well formed),
//! that Locaware's multi-provider indexes degrade more gracefully than a
//! single-provider cache, that the churn horizon covers the arrival
//! schedule's full span, and that proactive provider invalidation (the
//! CUP-style alternative to the paper's lazy filtering) is a deterministic,
//! default-off switch.

use locaware::{ProtocolKind, Scenario, Simulation};
use locaware_overlay::ChurnConfig;
use locaware_workload::{ArrivalSchedule, FaultConfig, RatePhase};

fn churny_sim(peers: usize, seed: u64, churn: ChurnConfig) -> Simulation {
    Scenario::builder("churny")
        .peers(peers)
        .seed(seed)
        .churn(churn)
        .build()
        .expect("churn never invalidates a small config")
        .substrate()
}

#[test]
fn runs_complete_under_heavy_churn() {
    let churn = ChurnConfig {
        mean_session_secs: 300.0,
        mean_offline_secs: 300.0,
        churning_fraction: 0.5,
    };
    let simulation = churny_sim(100, 11, churn);
    for protocol in ProtocolKind::PAPER_SET {
        let report = simulation.run(protocol, 80);
        assert_eq!(report.metrics.len(), report.queries_issued as usize);
        assert!(report.queries_issued <= 80, "offline requestors skip their queries");
        assert!(report.success_rate() <= 1.0);
        for record in report.metrics.records() {
            if record.is_success() {
                assert!(record.download_distance_ms.is_some());
            }
        }
    }
}

#[test]
fn churn_reduces_success_compared_to_a_static_overlay() {
    let seed = 12;
    let static_sim = churny_sim(150, seed, ChurnConfig::disabled());
    let churny = churny_sim(
        150,
        seed,
        ChurnConfig {
            mean_session_secs: 400.0,
            mean_offline_secs: 800.0,
            churning_fraction: 0.6,
        },
    );
    let queries = 150;
    let static_report = static_sim.run(ProtocolKind::Locaware, queries);
    let churny_report = churny.run(ProtocolKind::Locaware, queries);
    assert!(
        churny_report.success_rate() <= static_report.success_rate(),
        "churn must not improve success ({:.3} churny vs {:.3} static)",
        churny_report.success_rate(),
        static_report.success_rate()
    );
}

#[test]
fn churn_schedule_is_generated_and_deterministic() {
    let churn = ChurnConfig {
        mean_session_secs: 200.0,
        mean_offline_secs: 200.0,
        churning_fraction: 0.8,
    };
    let simulation = churny_sim(80, 13, churn);
    let arrivals = simulation.arrivals(200);
    let a = simulation.churn_schedule(&arrivals);
    let b = simulation.churn_schedule(&arrivals);
    assert_eq!(a, b, "churn schedule must be reproducible");
    assert!(!a.is_empty(), "with 80% churners there must be transitions");
    let horizon = arrivals.last().unwrap().at;
    for event in &a {
        assert!(event.at <= horizon);
        assert!(event.peer.index() < 80);
    }
}

/// The churn horizon must cover the arrival schedule's *span*, not just the
/// last arrival: a front-loaded schedule with a long quiet tail keeps
/// churning through the tail. (For steady schedules the horizon is the last
/// arrival, exactly as before — pinned by the legacy fingerprints.)
#[test]
fn churn_horizon_covers_trailing_quiet_schedule_phases() {
    let churn = ChurnConfig {
        mean_session_secs: 200.0,
        mean_offline_secs: 200.0,
        churning_fraction: 0.8,
    };
    // Phase 1 packs ~200× the base rate into 300 s; phase 2 is near-silent
    // for an hour. A count-bounded run's arrivals all land in phase 1.
    let simulation = Scenario::builder("quiet-tail")
        .peers(60)
        .seed(21)
        .churn(churn)
        .arrival_schedule(ArrivalSchedule::Phases(vec![
            RatePhase { multiplier: 200.0, duration_secs: 300.0 },
            RatePhase { multiplier: 1e-9, duration_secs: 3600.0 },
        ]))
        .build()
        .expect("schedule validates")
        .substrate();
    let arrivals = simulation.arrivals(100);
    let last_arrival = arrivals.last().unwrap().at;
    assert!(
        last_arrival.as_secs_f64() < 310.0,
        "the whole workload must land in the hot phase, last at {}s",
        last_arrival.as_secs_f64()
    );
    let events = simulation.churn_schedule(&arrivals);
    let last_event = events.last().unwrap().at;
    assert!(
        last_event > last_arrival,
        "churn must keep churning through the quiet tail ({}s vs {}s)",
        last_event.as_secs_f64(),
        last_arrival.as_secs_f64()
    );
    let span_secs = 300.0 + 3600.0;
    assert!(
        last_event.as_secs_f64() <= span_secs,
        "churn must still respect the schedule span"
    );
    // With a horizon >10× the mean session, churn transitions vastly
    // outnumber what the 300 s arrival window alone would generate.
    let within_arrivals = events.iter().filter(|e| e.at <= last_arrival).count();
    assert!(
        events.len() > within_arrivals * 4,
        "most transitions happen after the last arrival ({} of {})",
        within_arrivals,
        events.len()
    );
}

/// Regression: a DHT lookup step addressed to a peer that has already
/// departed must not strand the query. Under crash-stop churn the departed
/// peer stays in every routing table (no goodbyes), so lookups keep walking
/// into it; the per-step deadline must fire, re-issue against the next
/// shortlist candidate and — crucially — keep the completion-event ledger
/// exact: every query ends with `completion_time_ms = Some(_)`, satisfied
/// or not. Before the timeout machinery existed such steps leaked an
/// outstanding-message charge and the query never completed.
#[test]
fn dht_lookups_to_departed_peers_complete_via_step_timeouts() {
    let mut faults = FaultConfig::disabled();
    faults.crash_stop = true;
    faults.dht_step_timeout_secs = 2.0;
    let simulation = Scenario::builder("crashy-dht")
        .peers(80)
        .seed(23)
        .churn(ChurnConfig {
            mean_session_secs: 200.0,
            mean_offline_secs: 400.0,
            churning_fraction: 0.75,
        })
        .faults(faults)
        .build()
        .expect("crash-stop never invalidates the config")
        .substrate();
    for protocol in [ProtocolKind::DhtIndex, ProtocolKind::Hybrid] {
        let report = simulation.run(protocol, 120);
        let stats = report.faults.expect("armed fault plan reports statistics");
        assert!(
            stats.crash_departures > 0,
            "{protocol}: churn-storm departures must take the crash path"
        );
        assert!(
            stats.dht_step_timeouts > 0,
            "{protocol}: lookups into crashed peers must trip step deadlines"
        );
        for record in report.metrics.records() {
            assert!(
                record.completion_time_ms.is_some(),
                "{protocol}: query {} never completed (requestor {})",
                record.index,
                record.requestor
            );
        }
    }
}

/// The proactive provider-invalidation flag (resolving the PR 4 follow-up):
/// off by default and byte-identical to the historical lazy behaviour; on, it
/// deterministically changes the cached-entry/Bloom state under churn-storm —
/// for any shard count.
#[test]
fn proactive_invalidation_is_a_deterministic_default_off_switch() {
    let storm = Scenario::churn_storm(60);
    assert!(
        !storm.config().proactive_provider_invalidation,
        "the flag must default to off"
    );

    let with_flag = |enabled: bool, shards: usize| {
        let mut config = storm.config().clone();
        config.proactive_provider_invalidation = enabled;
        config.shards = shards;
        Scenario::from_config("churn-storm-proactive", config)
            .expect("the flag does not affect validity")
            .substrate()
            .run(ProtocolKind::Locaware, 40)
    };

    // `SimulationReport::fingerprint` is the determinism digest over every
    // observable per-query and aggregate field.
    let lazy = with_flag(false, 1).fingerprint();
    let eager = with_flag(true, 1).fingerprint();
    assert_eq!(lazy, with_flag(false, 1).fingerprint(), "off is deterministic");
    assert_eq!(eager, with_flag(true, 1).fingerprint(), "on is deterministic");
    assert_ne!(
        lazy, eager,
        "eager invalidation must change observable cache/Bloom state"
    );
    // Eager invalidation runs serially at the churn barrier in canonical
    // order, so the sharded-engine invariance must hold with the flag on.
    for shards in [2usize, 4, 8] {
        assert_eq!(
            with_flag(true, shards).fingerprint(),
            eager,
            "{shards} shards must reproduce the single-shard eager run"
        );
    }
}
