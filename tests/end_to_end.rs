//! Cross-crate integration tests: build a full substrate and run every
//! protocol end to end, checking the qualitative shapes the paper reports.
//!
//! Scales are reduced (≈100 peers) so the suite runs quickly in debug builds;
//! the paper-scale numbers live in EXPERIMENTS.md and are produced by the
//! `locaware-bench` binaries.

use locaware_suite::prelude::*;
use locaware::ProtocolKind;

fn substrate(peers: usize, seed: u64) -> Simulation {
    Scenario::small(peers).with_seed(seed).substrate()
}

#[test]
fn every_protocol_completes_and_accounts_for_every_query() {
    let simulation = substrate(80, 1);
    for protocol in ProtocolKind::ALL {
        let report = simulation.run(protocol, 60);
        assert_eq!(report.queries_issued, 60, "{protocol}: every arrival issues a query");
        assert_eq!(report.metrics.len(), 60, "{protocol}: one record per query");
        assert!(report.dispatched_events > 0, "{protocol}: the engine must do work");
        assert!(
            report.success_rate() >= 0.0 && report.success_rate() <= 1.0,
            "{protocol}: success rate must be a proportion"
        );
        // Satisfied queries must report a download distance within the
        // configured latency bounds.
        for record in report.metrics.records() {
            if let Some(distance) = record.download_distance_ms {
                assert!(
                    distance >= 0.0 && distance <= simulation.config().max_latency_ms,
                    "{protocol}: download distance {distance}ms out of bounds"
                );
            } else {
                assert!(
                    !record.is_success(),
                    "{protocol}: satisfied queries must have a download distance"
                );
            }
        }
    }
}

#[test]
fn per_query_message_counts_reconcile_with_global_counters() {
    let simulation = substrate(80, 2);
    for protocol in ProtocolKind::PAPER_SET {
        let report = simulation.run(protocol, 50);
        let per_query_total: u64 = report.metrics.records().iter().map(|r| r.messages).sum();
        let query_msgs = report.message_counters.get(&"query".to_string());
        let response_msgs = report.message_counters.get(&"query-response".to_string());
        assert_eq!(
            per_query_total,
            query_msgs + response_msgs,
            "{protocol}: per-query counts must reconcile with the global counters"
        );
        let bloom_msgs = report.message_counters.get(&"bloom-delta".to_string())
            + report.message_counters.get(&"bloom-full".to_string());
        assert_eq!(
            report.background_messages, bloom_msgs,
            "{protocol}: background messages are exactly the Bloom traffic"
        );
    }
}

#[test]
fn figure_3_shape_flooding_floods_and_caching_protocols_do_not() {
    let simulation = substrate(120, 3);
    let flooding = simulation.run(ProtocolKind::Flooding, 80);
    let dicas = simulation.run(ProtocolKind::Dicas, 80);
    let locaware = simulation.run(ProtocolKind::Locaware, 80);

    assert!(
        flooding.avg_messages_per_query() > 3.0 * locaware.avg_messages_per_query(),
        "flooding ({:.1}) must massively out-message locaware ({:.1})",
        flooding.avg_messages_per_query(),
        locaware.avg_messages_per_query()
    );
    assert!(
        flooding.avg_messages_per_query() > 3.0 * dicas.avg_messages_per_query(),
        "flooding ({:.1}) must massively out-message dicas ({:.1})",
        flooding.avg_messages_per_query(),
        dicas.avg_messages_per_query()
    );
}

#[test]
fn figure_4_shape_flooding_highest_success_locaware_beats_dicas_variants() {
    let simulation = substrate(150, 4);
    let queries = 200;
    let flooding = simulation.run(ProtocolKind::Flooding, queries);
    let dicas = simulation.run(ProtocolKind::Dicas, queries);
    let dicas_keys = simulation.run(ProtocolKind::DicasKeys, queries);
    let locaware = simulation.run(ProtocolKind::Locaware, queries);

    assert!(
        flooding.success_rate() > locaware.success_rate(),
        "flooding ({:.3}) must have the highest success rate (locaware {:.3})",
        flooding.success_rate(),
        locaware.success_rate()
    );
    assert!(
        locaware.success_rate() > dicas.success_rate(),
        "locaware ({:.3}) must beat dicas ({:.3})",
        locaware.success_rate(),
        dicas.success_rate()
    );
    assert!(
        locaware.success_rate() >= dicas_keys.success_rate(),
        "locaware ({:.3}) must at least match dicas-keys ({:.3})",
        locaware.success_rate(),
        dicas_keys.success_rate()
    );
}

#[test]
fn figure_2_shape_locaware_downloads_from_closer_providers() {
    let simulation = substrate(150, 5);
    let queries = 250;
    let flooding = simulation.run(ProtocolKind::Flooding, queries);
    let locaware = simulation.run(ProtocolKind::Locaware, queries);

    assert!(
        locaware.avg_download_distance_ms() < flooding.avg_download_distance_ms(),
        "locaware ({:.1}ms) must download from closer providers than flooding ({:.1}ms)",
        locaware.avg_download_distance_ms(),
        flooding.avg_download_distance_ms()
    );
    assert!(
        locaware.locality_match_rate() > flooding.locality_match_rate(),
        "locaware ({:.2}) must hit same-locality providers more often than flooding ({:.2})",
        locaware.locality_match_rate(),
        flooding.locality_match_rate()
    );
}

#[test]
fn runs_are_deterministic_and_independent_of_execution_order() {
    let simulation = substrate(70, 6);
    let a1 = simulation.run(ProtocolKind::Locaware, 40);
    let b = simulation.run(ProtocolKind::Dicas, 40);
    let a2 = simulation.run(ProtocolKind::Locaware, 40);
    assert_eq!(a1.metrics.records(), a2.metrics.records());
    assert_eq!(a1.success_rate(), a2.success_rate());
    // The interleaved Dicas run must not perturb Locaware's results.
    assert!(b.queries_issued == 40);
}

#[test]
fn different_seeds_produce_different_but_valid_runs() {
    let a = substrate(70, 100).run(ProtocolKind::Locaware, 40);
    let b = substrate(70, 101).run(ProtocolKind::Locaware, 40);
    assert_ne!(
        a.metrics.records(),
        b.metrics.records(),
        "different seeds should give different runs"
    );
    for report in [&a, &b] {
        assert_eq!(report.metrics.len(), 40);
    }
}

#[test]
fn natural_replication_grows_the_replica_pool() {
    let simulation = substrate(100, 7);
    let initial_replicas = simulation.config().peers * simulation.config().files_per_peer;
    let report = simulation.run(ProtocolKind::Locaware, 150);
    assert!(
        report.total_file_replicas > initial_replicas,
        "satisfied queries must add replicas ({} vs initial {})",
        report.total_file_replicas,
        initial_replicas
    );
    let satisfied = report
        .metrics
        .records()
        .iter()
        .filter(|r| r.is_success())
        .count();
    assert_eq!(
        report.total_file_replicas - initial_replicas,
        satisfied,
        "every satisfied query downloads exactly one new replica"
    );
}

#[test]
fn caching_protocols_actually_populate_response_indexes() {
    let simulation = substrate(120, 8);
    let flooding = simulation.run(ProtocolKind::Flooding, 120);
    let locaware = simulation.run(ProtocolKind::Locaware, 120);
    let dicas_keys = simulation.run(ProtocolKind::DicasKeys, 120);

    assert_eq!(flooding.total_cached_index_entries, 0, "flooding never caches");
    assert!(locaware.total_cached_index_entries > 0, "locaware must cache indexes");
    assert!(dicas_keys.total_cached_index_entries > 0, "dicas-keys must cache indexes");
    assert_eq!(flooding.cache_hit_share(), 0.0);
}

#[test]
fn ablations_bracket_the_full_protocol() {
    let simulation = substrate(150, 9);
    let queries = 200;
    let full = simulation.run(ProtocolKind::Locaware, queries);
    let no_locality = simulation.run(ProtocolKind::LocawareNoLocality, queries);

    // Removing locality-aware selection must not *reduce* download distance.
    assert!(
        full.avg_download_distance_ms() <= no_locality.avg_download_distance_ms() + 1e-9,
        "locality-aware selection should shorten downloads ({:.1} vs {:.1})",
        full.avg_download_distance_ms(),
        no_locality.avg_download_distance_ms()
    );
    // And the locality match rate must drop without it.
    assert!(
        full.locality_match_rate() >= no_locality.locality_match_rate(),
        "locality match rate should drop without locality-aware selection"
    );
}
