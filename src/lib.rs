//! # locaware-suite — top-level examples and integration tests
//!
//! This crate is the workspace's umbrella package: it hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`) and
//! re-exports the individual crates under one roof so examples can write
//! `use locaware_suite::prelude::*;`.
//!
//! The actual library code lives in the member crates:
//!
//! * [`locaware`] — the paper's contribution (protocols, response index,
//!   the experiment API and the simulation runner),
//! * [`locaware_sim`] — the discrete-event engine,
//! * [`locaware_net`] — the physical underlay and locIds,
//! * [`locaware_overlay`] — the unstructured overlay,
//! * [`locaware_bloom`] — Bloom filters and deltas,
//! * [`locaware_workload`] — catalog, Zipf queries, placement and arrivals,
//! * [`locaware_metrics`] — records, figures and tables.

#![warn(missing_docs)]

pub use locaware;
pub use locaware_bloom;
pub use locaware_metrics;
pub use locaware_net;
pub use locaware_overlay;
pub use locaware_sim;
pub use locaware_workload;

/// The most commonly used types, re-exported for examples and tests.
pub mod prelude {
    pub use locaware::{
        ConfigError, ExperimentOutcome, ExperimentPlan, ExperimentPoint, PlanError, ProtocolKind,
        Runner, Scenario, ScenarioBuilder, Simulation, SimulationConfig, SimulationReport,
    };
    pub use locaware_metrics::{Figure, SeriesPoint, Table};
    pub use locaware_overlay::ChurnConfig;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_runnable_simulation() {
        let report = Scenario::small(40)
            .with_seed(1)
            .substrate()
            .run(ProtocolKind::Flooding, 10);
        assert_eq!(report.queries_issued, 10);
    }

    #[test]
    fn prelude_exposes_the_experiment_api() {
        let plan = ExperimentPlan::new()
            .scenario(Scenario::small(40).with_seed(1))
            .protocol(ProtocolKind::Flooding)
            .query_count(10);
        let outcome = Runner::new().with_threads(2).run(&plan).expect("valid plan");
        assert_eq!(outcome.substrates_built, 1);
        assert_eq!(outcome.len(), 1);
    }
}
