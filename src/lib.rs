//! # locaware-suite — top-level examples and integration tests
//!
//! This crate is the workspace's umbrella package: it hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`) and
//! re-exports the individual crates under one roof so examples can write
//! `use locaware_suite::prelude::*;`.
//!
//! The actual library code lives in the member crates:
//!
//! * [`locaware`](::locaware) — the paper's contribution (protocols, response
//!   index, simulation runner),
//! * [`locaware_sim`](::locaware_sim) — the discrete-event engine,
//! * [`locaware_net`](::locaware_net) — the physical underlay and locIds,
//! * [`locaware_overlay`](::locaware_overlay) — the unstructured overlay,
//! * [`locaware_bloom`](::locaware_bloom) — Bloom filters and deltas,
//! * [`locaware_workload`](::locaware_workload) — catalog, Zipf queries,
//!   placement and arrivals,
//! * [`locaware_metrics`](::locaware_metrics) — records, figures and tables.

#![warn(missing_docs)]

pub use locaware;
pub use locaware_bloom;
pub use locaware_metrics;
pub use locaware_net;
pub use locaware_overlay;
pub use locaware_sim;
pub use locaware_workload;

/// The most commonly used types, re-exported for examples and tests.
pub mod prelude {
    pub use locaware::{ProtocolKind, Simulation, SimulationConfig, SimulationReport};
    pub use locaware_metrics::{Figure, SeriesPoint, Table};
    pub use locaware_overlay::ChurnConfig;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_runnable_simulation() {
        let mut config = SimulationConfig::small(40);
        config.seed = 1;
        let report = Simulation::build(config).run(ProtocolKind::Flooding, 10);
        assert_eq!(report.queries_issued, 10);
    }
}
