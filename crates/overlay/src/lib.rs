//! # locaware-overlay — the unstructured (Gnutella-like) overlay substrate
//!
//! §3.1 of the Locaware paper describes the substrate its protocol runs on:
//! *"each peer joins the network by establishing logical links to randomly
//! chosen peers, referred to as its neighbors. Normally, the neighborhood of a
//! peer is set without knowledge of the underlying topology."* Query routing is
//! *"done by blindly flooding q over the P2P network and is bounded by a fixed
//! TTL. Query responses follow the reverse path of their corresponding q, back
//! to the requesting peer."*
//!
//! This crate implements that substrate:
//!
//! * [`graph`] — the overlay graph: random neighbour wiring at a target average
//!   degree (the paper's setup uses 1000 peers with average degree 3),
//!   connectivity repair, degree queries (needed for the "highly connected
//!   neighbour" fallback of §4.2), and dynamic join/leave for churn,
//! * [`generator`] — graph generators: Erdős–Rényi-style random wiring and a
//!   preferential-attachment variant with a heavier-tailed degree distribution,
//! * [`message`] — the overlay message vocabulary (queries, query responses,
//!   Bloom-filter updates, DHT lookups/stores, keep-alives) with wire-size
//!   estimation used by the traffic metrics,
//! * [`dht`] — Kademlia-style structured-overlay primitives (160-bit XOR key
//!   space, k-bucket routing tables, size-capped keyword→provider records)
//!   used by the structured `dht-index`/`hybrid` protocol family,
//! * [`routing`] — mechanism shared by every protocol: TTL bookkeeping,
//!   duplicate-query suppression and reverse-path tables for routing responses
//!   back to the requestor,
//! * [`churn`] — an optional session-based churn model (exponential on/off
//!   times) exercised by the robustness example and tests.
//!
//! Which neighbours a query is forwarded to is *policy* and lives in the
//! `locaware` core crate (flooding, Dicas, Dicas-Keys, Locaware); this crate
//! only provides the mechanism those policies share.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod dht;
pub mod generator;
pub mod graph;
pub mod message;
pub mod routing;
pub mod stats;

pub use churn::{ChurnConfig, ChurnEvent, ChurnEventKind, ChurnModel};
pub use dht::{DhtDistance, DhtId, DhtNode, DhtRecordStore, RoutingTable, DHT_ID_BITS, DHT_ID_BYTES};
pub use generator::{GeneratorConfig, GraphModel};
pub use graph::OverlayGraph;
pub use message::{Message, MessageId, MessageKind, ProviderEntry, QueryId};
pub use routing::{ForwardDecision, QueryRouter, ReversePathTable, SeenQueries};
pub use stats::GraphStats;

/// Peers are identified by the same id at the overlay and underlay layers, so
/// no translation table is needed when crossing layers.
pub use locaware_net::NodeId as PeerId;
