//! Routing mechanism shared by every protocol.
//!
//! §3.1: queries are flooded with a bounded TTL and *"query responses follow
//! the reverse path of their corresponding q, back to the requesting peer"*.
//! Real Gnutella implements this with per-peer duplicate suppression (a query
//! seen twice is dropped) and a reverse-path table (query id → the neighbour it
//! was first received from). [`QueryRouter`] bundles both for one peer.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::message::QueryId;
use crate::PeerId;

/// Why a set of forwarding targets was chosen — recorded so that the metrics
/// can attribute routing decisions to the Bloom-filter match, the Gid fallback
/// or the last-resort high-degree neighbour (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ForwardDecision {
    /// Plain flooding to all neighbours (minus the one it came from).
    Flood,
    /// Neighbours whose Bloom filter matched every query keyword.
    BloomMatch,
    /// Neighbours whose group id matches the query.
    GidMatch,
    /// The single highest-degree neighbour, used when nothing else matched.
    HighDegree,
    /// The query was not forwarded (TTL exhausted, no neighbours, or satisfied).
    NotForwarded,
}

/// Tracks which queries a peer has already processed.
///
/// Gnutella drops duplicate copies of a query that arrive over different paths;
/// without this, TTL-bounded flooding on a cyclic overlay would multiply
/// traffic and distort Figure 3.
#[derive(Debug, Clone, Default)]
pub struct SeenQueries {
    seen: HashSet<QueryId>,
}

impl SeenQueries {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `query` as seen. Returns `true` if it was new (i.e. should be
    /// processed), `false` if it is a duplicate (should be dropped).
    pub fn first_sighting(&mut self, query: QueryId) -> bool {
        self.seen.insert(query)
    }

    /// True if the query has been seen before.
    pub fn contains(&self, query: QueryId) -> bool {
        self.seen.contains(&query)
    }

    /// Number of distinct queries seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True if nothing has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Forgets everything (used between experiment repetitions).
    pub fn clear(&mut self) {
        self.seen.clear();
    }
}

/// The reverse-path table: for each query, the neighbour it was first received
/// from, i.e. the next hop for responses travelling back to the requestor.
#[derive(Debug, Clone, Default)]
pub struct ReversePathTable {
    upstream: HashMap<QueryId, PeerId>,
}

impl ReversePathTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `query` was first received from `from`. The first recording
    /// wins; later copies of the query (via other paths) do not overwrite it,
    /// matching Gnutella semantics. Returns `true` if this was the first record.
    pub fn record(&mut self, query: QueryId, from: PeerId) -> bool {
        match self.upstream.entry(query) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(from);
                true
            }
        }
    }

    /// The upstream neighbour for `query`, if known.
    pub fn upstream(&self, query: QueryId) -> Option<PeerId> {
        self.upstream.get(&query).copied()
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.upstream.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.upstream.is_empty()
    }

    /// Drops the entry for `query` (responses delivered, state can go).
    pub fn forget(&mut self, query: QueryId) {
        self.upstream.remove(&query);
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.upstream.clear();
    }
}

/// Per-peer routing state: duplicate suppression plus reverse paths.
#[derive(Debug, Clone, Default)]
pub struct QueryRouter {
    seen: SeenQueries,
    reverse: ReversePathTable,
}

impl QueryRouter {
    /// Creates empty routing state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles the arrival of query `query` from `from` (or from the local user
    /// when `from` is `None`).
    ///
    /// Returns `true` if the query is new and should be processed; duplicates
    /// return `false` and leave the original reverse path untouched.
    pub fn on_query(&mut self, query: QueryId, from: Option<PeerId>) -> bool {
        let new = self.seen.first_sighting(query);
        if new {
            if let Some(from) = from {
                self.reverse.record(query, from);
            }
        }
        new
    }

    /// The neighbour to send a response for `query` towards, if this peer is not
    /// the originator.
    pub fn response_next_hop(&self, query: QueryId) -> Option<PeerId> {
        self.reverse.upstream(query)
    }

    /// True if this peer has seen `query`.
    pub fn has_seen(&self, query: QueryId) -> bool {
        self.seen.contains(query)
    }

    /// Access to the duplicate-suppression set (for tests and metrics).
    pub fn seen(&self) -> &SeenQueries {
        &self.seen
    }

    /// Access to the reverse-path table (for tests and metrics).
    pub fn reverse_paths(&self) -> &ReversePathTable {
        &self.reverse
    }

    /// Resets all state.
    pub fn clear(&mut self) {
        self.seen.clear();
        self.reverse.clear();
    }
}

/// Decrements a TTL, returning `None` when the query must stop being forwarded.
///
/// A query arriving with TTL 1 may still be *answered* locally but produces no
/// further forwards; this helper centralises that boundary condition.
pub fn decrement_ttl(ttl: u32) -> Option<u32> {
    if ttl <= 1 {
        None
    } else {
        Some(ttl - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_queries_are_dropped() {
        let mut router = QueryRouter::new();
        assert!(router.on_query(QueryId(1), Some(PeerId(5))));
        assert!(!router.on_query(QueryId(1), Some(PeerId(6))), "second copy is a duplicate");
        // The reverse path keeps the *first* upstream.
        assert_eq!(router.response_next_hop(QueryId(1)), Some(PeerId(5)));
    }

    #[test]
    fn locally_issued_queries_have_no_upstream() {
        let mut router = QueryRouter::new();
        assert!(router.on_query(QueryId(9), None));
        assert_eq!(router.response_next_hop(QueryId(9)), None);
    }

    #[test]
    fn reverse_path_first_record_wins() {
        let mut table = ReversePathTable::new();
        assert!(table.record(QueryId(3), PeerId(1)));
        assert!(!table.record(QueryId(3), PeerId(2)));
        assert_eq!(table.upstream(QueryId(3)), Some(PeerId(1)));
        table.forget(QueryId(3));
        assert_eq!(table.upstream(QueryId(3)), None);
        assert!(table.is_empty());
    }

    #[test]
    fn seen_queries_bookkeeping() {
        let mut seen = SeenQueries::new();
        assert!(seen.is_empty());
        assert!(seen.first_sighting(QueryId(1)));
        assert!(seen.first_sighting(QueryId(2)));
        assert!(!seen.first_sighting(QueryId(1)));
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(QueryId(2)));
        seen.clear();
        assert!(!seen.contains(QueryId(2)));
    }

    #[test]
    fn ttl_decrement_boundaries() {
        assert_eq!(decrement_ttl(7), Some(6));
        assert_eq!(decrement_ttl(2), Some(1));
        assert_eq!(decrement_ttl(1), None);
        assert_eq!(decrement_ttl(0), None);
    }

    #[test]
    fn clear_resets_router() {
        let mut router = QueryRouter::new();
        router.on_query(QueryId(1), Some(PeerId(2)));
        router.clear();
        assert!(!router.has_seen(QueryId(1)));
        assert!(router.reverse_paths().is_empty());
        assert!(router.on_query(QueryId(1), Some(PeerId(3))));
    }
}
