//! Peer churn: session-based join/leave dynamics.
//!
//! §3.1 notes that peers "are highly dynamic and autonomous, failing or leaving
//! the network at any moment", and §4.1.2 cites Gnutella measurements arguing
//! that cached indexes must be short-lived because providers disappear. The
//! paper's evaluation itself runs on a static 1000-peer overlay, so churn is
//! **off by default** in the reproduction; the churn model here powers the
//! robustness example (`churn_resilience`) and the stale-index tests.
//!
//! The model is the standard exponential on/off session model: each peer stays
//! online for an exponentially distributed session, goes offline for an
//! exponentially distributed gap, then rejoins (re-wiring to random peers).

use locaware_sim::{Duration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::PeerId;

/// Whether a churn event takes the peer offline or brings it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// The peer leaves the overlay (its edges disappear, its cache is lost).
    Leave,
    /// The peer rejoins the overlay and re-wires to `degree` random peers.
    Join,
}

/// A single scheduled churn transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which peer transitions.
    pub peer: PeerId,
    /// Leave or join.
    pub kind: ChurnEventKind,
}

/// Parameters of the exponential on/off churn model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean online session length.
    pub mean_session_secs: f64,
    /// Mean offline gap length.
    pub mean_offline_secs: f64,
    /// Fraction of peers that participate in churn (the rest are stable).
    pub churning_fraction: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        // Median Gnutella session times reported around tens of minutes; the
        // defaults keep sessions long relative to query latency but short
        // relative to a full experiment.
        ChurnConfig {
            mean_session_secs: 3600.0,
            mean_offline_secs: 600.0,
            churning_fraction: 0.2,
        }
    }
}

impl ChurnConfig {
    /// A configuration with churn disabled entirely.
    pub fn disabled() -> Self {
        ChurnConfig {
            mean_session_secs: f64::INFINITY,
            mean_offline_secs: f64::INFINITY,
            churning_fraction: 0.0,
        }
    }

    /// True if this configuration produces no churn events.
    pub fn is_disabled(&self) -> bool {
        self.churning_fraction <= 0.0
            || !self.mean_session_secs.is_finite()
            || self.mean_session_secs <= 0.0
    }
}

/// Generates the full churn schedule for a population of peers over a horizon.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    config: ChurnConfig,
}

impl ChurnModel {
    /// Creates a model with the given configuration.
    pub fn new(config: ChurnConfig) -> Self {
        ChurnModel { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Generates every leave/join transition for `peers` peers up to `horizon`.
    /// Events come back sorted by time.
    pub fn schedule<R: Rng + ?Sized>(
        &self,
        peers: usize,
        horizon: SimTime,
        rng: &mut R,
    ) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        if self.config.is_disabled() {
            return events;
        }
        for p in 0..peers {
            if rng.gen::<f64>() >= self.config.churning_fraction {
                continue;
            }
            let peer = PeerId(p as u32);
            let mut now = SimTime::ZERO;
            let mut online = true;
            loop {
                let mean = if online {
                    self.config.mean_session_secs
                } else {
                    self.config.mean_offline_secs
                };
                let dwell = Duration::from_secs_f64(exponential(rng, mean));
                now += dwell;
                if now > horizon {
                    break;
                }
                events.push(ChurnEvent {
                    at: now,
                    peer,
                    kind: if online {
                        ChurnEventKind::Leave
                    } else {
                        ChurnEventKind::Join
                    },
                });
                online = !online;
            }
        }
        events.sort_by_key(|e| (e.at, e.peer));
        events
    }
}

/// Exponential sample with the given mean via inverse-CDF.
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_config_produces_no_events() {
        let model = ChurnModel::new(ChurnConfig::disabled());
        let events = model.schedule(100, SimTime::from_secs(10_000), &mut StdRng::seed_from_u64(1));
        assert!(events.is_empty());
        assert!(ChurnConfig::disabled().is_disabled());
        assert!(!ChurnConfig::default().is_disabled());
    }

    #[test]
    fn events_are_sorted_and_alternate_per_peer() {
        let model = ChurnModel::new(ChurnConfig {
            mean_session_secs: 100.0,
            mean_offline_secs: 50.0,
            churning_fraction: 1.0,
        });
        let horizon = SimTime::from_secs(2000);
        let events = model.schedule(20, horizon, &mut StdRng::seed_from_u64(2));
        assert!(!events.is_empty());
        // Sorted by time.
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Per peer, transitions alternate starting with Leave.
        for p in 0..20u32 {
            let seq: Vec<_> = events.iter().filter(|e| e.peer == PeerId(p)).collect();
            for (i, e) in seq.iter().enumerate() {
                let expected = if i % 2 == 0 {
                    ChurnEventKind::Leave
                } else {
                    ChurnEventKind::Join
                };
                assert_eq!(e.kind, expected, "peer {p} event {i}");
                assert!(e.at <= horizon);
            }
        }
    }

    #[test]
    fn churning_fraction_limits_participation() {
        let model = ChurnModel::new(ChurnConfig {
            mean_session_secs: 100.0,
            mean_offline_secs: 100.0,
            churning_fraction: 0.3,
        });
        let events = model.schedule(500, SimTime::from_secs(1000), &mut StdRng::seed_from_u64(3));
        let participants: std::collections::HashSet<_> = events.iter().map(|e| e.peer).collect();
        let fraction = participants.len() as f64 / 500.0;
        assert!(
            (0.15..=0.45).contains(&fraction),
            "about 30% of peers should churn, got {fraction}"
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let model = ChurnModel::new(ChurnConfig::default());
        let a = model.schedule(50, SimTime::from_secs(50_000), &mut StdRng::seed_from_u64(9));
        let b = model.schedule(50, SimTime::from_secs(50_000), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let mean_target = 42.0;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, mean_target)).sum::<f64>() / n as f64;
        assert!((mean - mean_target).abs() < 1.0, "sample mean {mean}");
    }
}
