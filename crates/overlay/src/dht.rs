//! Kademlia-style DHT primitives: a 160-bit XOR key space, k-bucket routing
//! tables, and size-capped keyword→provider record stores.
//!
//! This module is pure data structure — no I/O, no clocks, no randomness of
//! its own. Identifiers are *derived* deterministically from caller-provided
//! salts (the simulation draws the salts from its seeded RNG streams), every
//! tie is broken by a total order, and record truncation is a pure function of
//! a record's contents, never of insertion order. That is what lets the
//! sharded engine run DHT maintenance under its bit-identical-for-every-
//! shard-count contract.
//!
//! The record design follows the BitTorrent-DHT keyword-indexing lineage:
//! one record per keyword (`idx:{keyword}`), holding `(file, provider)`
//! entries, updated read-modify-write, with a per-record byte cap that forces
//! deterministic truncation of the stalest entries once popular keywords
//! overflow it.

use std::collections::BTreeMap;

use locaware_net::LocId;
use locaware_sim::SimTime;

use crate::message::{FileId, KeywordId, ProviderEntry};
use crate::PeerId;

/// Width of a DHT identifier in bytes (160 bits, as in Kademlia/BitTorrent).
pub const DHT_ID_BYTES: usize = 20;
/// Width of a DHT identifier in bits.
pub const DHT_ID_BITS: usize = 8 * DHT_ID_BYTES;

/// Wire bytes of one stored record entry: file id (4) + provider id (4) +
/// locId (1) + expiry (8). Used for the per-record size cap.
pub const RECORD_ENTRY_BYTES: usize = 17;
/// Wire bytes of a record's fixed overhead (the 160-bit key).
pub const RECORD_KEY_BYTES: usize = DHT_ID_BYTES;

/// A 160-bit identifier in the DHT key space (a node id or a record key).
///
/// Byte 0 is the most significant: the derived `Ord` is the numeric order,
/// and XOR distances compare the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DhtId(pub [u8; DHT_ID_BYTES]);

impl DhtId {
    /// Derives an id from `(salt, value)` by iterating a SplitMix64-style
    /// mixer: three mixed 64-bit words, truncated to 160 bits. Same inputs ⇒
    /// same id, and distinct values virtually never collide.
    pub fn derive(salt: u64, value: u64) -> Self {
        let mut bytes = [0u8; DHT_ID_BYTES];
        let mut state = salt ^ value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for chunk in bytes.chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_be_bytes()[..chunk.len()]);
        }
        DhtId(bytes)
    }

    /// The XOR distance between two ids.
    pub fn distance(self, other: DhtId) -> DhtDistance {
        let mut out = [0u8; DHT_ID_BYTES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        DhtDistance(out)
    }
}

/// An XOR distance between two [`DhtId`]s. Compares numerically (byte 0 most
/// significant), which is the order Kademlia's "closest" is defined in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DhtDistance(pub [u8; DHT_ID_BYTES]);

impl DhtDistance {
    /// True for the distance of an id to itself.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// The k-bucket index of this distance: the bit position of its highest
    /// set bit (`0` = distances in `[1, 2)`, `159` = the far half of the key
    /// space). `None` for the zero distance.
    pub fn bucket_index(&self) -> Option<usize> {
        for (byte_index, &byte) in self.0.iter().enumerate() {
            if byte != 0 {
                let bit = 7 - byte.leading_zeros() as usize;
                return Some((DHT_ID_BYTES - 1 - byte_index) * 8 + bit);
            }
        }
        None
    }
}

/// A Kademlia k-bucket routing table.
///
/// Each of the 160 buckets holds at most `k` contacts whose distance to the
/// local id has its highest set bit at the bucket's index. A full bucket
/// rejects new contacts (Kademlia's "prefer the oldest live contact" rule —
/// with the arrival order fixed by the caller, the table contents are a
/// deterministic function of the insertion sequence).
///
/// Buckets are stored sparsely, sorted by bucket index. A converged table
/// occupies only the ~`log₂ n` buckets its population actually reaches
/// (bucket `i` requires a contact whose distance has its highest bit at `i`),
/// so the dense 160-`Vec` spine would be ~95% empty headers — at 10⁵ peers
/// that is several hundred megabytes of dead capacity across the fleet.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    local: DhtId,
    k: usize,
    /// `(bucket index, contacts)`, sorted by index; emptied buckets are
    /// removed so iteration touches only populated buckets.
    buckets: Vec<(u8, Vec<(DhtId, PeerId)>)>,
    len: usize,
}

impl RoutingTable {
    /// Creates an empty table for the node with id `local`.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(local: DhtId, k: usize) -> Self {
        assert!(k >= 1, "bucket capacity must be at least 1");
        RoutingTable {
            local,
            k,
            buckets: Vec::new(),
            len: 0,
        }
    }

    /// The local node's id.
    pub fn local(&self) -> DhtId {
        self.local
    }

    /// The bucket capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of contacts currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table holds no contacts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of contacts in bucket `index`.
    ///
    /// # Panics
    /// Panics if `index` is not a valid bucket index.
    pub fn bucket_len(&self, index: usize) -> usize {
        assert!(index < DHT_ID_BITS, "bucket index out of range");
        match self.buckets.binary_search_by_key(&(index as u8), |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1.len(),
            Err(_) => 0,
        }
    }

    /// Inserts a contact. Returns `false` (and changes nothing) if the
    /// contact is the local node, already present, or its bucket is full.
    pub fn insert(&mut self, id: DhtId, peer: PeerId) -> bool {
        let Some(index) = self.local.distance(id).bucket_index() else {
            return false; // the local node itself
        };
        let pos = match self.buckets.binary_search_by_key(&(index as u8), |&(i, _)| i) {
            Ok(pos) => pos,
            Err(pos) => {
                self.buckets.insert(pos, (index as u8, Vec::new()));
                pos
            }
        };
        let bucket = &mut self.buckets[pos].1;
        if bucket.iter().any(|&(_, p)| p == peer) {
            return false;
        }
        if bucket.len() >= self.k {
            return false;
        }
        bucket.push((id, peer));
        self.len += 1;
        true
    }

    /// Removes a contact (a departed peer). Returns `true` if it was present.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        for pos in 0..self.buckets.len() {
            let bucket = &mut self.buckets[pos].1;
            if let Some(entry) = bucket.iter().position(|&(_, p)| p == peer) {
                bucket.remove(entry);
                if bucket.is_empty() {
                    self.buckets.remove(pos);
                }
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// True if `peer` is a contact.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.buckets
            .iter()
            .any(|(_, bucket)| bucket.iter().any(|&(_, p)| p == peer))
    }

    /// Drops every contact (used when a peer's volatile state resets on
    /// rejoin; the maintenance process repopulates the table).
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.len = 0;
    }

    /// Appends the `count` contacts closest to `target` (by XOR distance,
    /// ties broken by peer id) to `out`, nearest first. The buffer is
    /// appended to, not cleared.
    pub fn closest_into(&self, target: DhtId, count: usize, out: &mut Vec<PeerId>) {
        let mut ranked: Vec<(DhtDistance, PeerId)> = self
            .buckets
            .iter()
            .flat_map(|(_, bucket)| bucket.iter())
            .map(|&(id, peer)| (target.distance(id), peer))
            .collect();
        ranked.sort_unstable();
        out.extend(ranked.into_iter().take(count).map(|(_, peer)| peer));
    }

    /// Allocating convenience wrapper around [`RoutingTable::closest_into`].
    pub fn closest(&self, target: DhtId, count: usize) -> Vec<PeerId> {
        let mut out = Vec::new();
        self.closest_into(target, count, &mut out);
        out
    }
}

/// One stored `(file, provider)` entry's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoredProvider {
    loc_id: LocId,
    expires_at: SimTime,
}

/// One keyword's record: `(file, provider) → (locId, expiry)`.
#[derive(Debug, Clone, Default)]
struct Record {
    entries: BTreeMap<(FileId, u32), StoredProvider>,
}

impl Record {
    fn bytes(&self) -> usize {
        RECORD_KEY_BYTES + self.entries.len() * RECORD_ENTRY_BYTES
    }
}

/// A peer's slice of the keyword→providers index: one size-capped record per
/// keyword, with TTL-based expiry.
///
/// All mutation is order-independent where it must be: an upsert keeps the
/// *freshest* `(expiry, locId)` for an entry regardless of arrival order, and
/// truncation always evicts the entry with the smallest
/// `(expiry, file, provider)` — so a record's contents are a pure function of
/// the set of inserts applied, which the property tests pin.
#[derive(Debug, Clone)]
pub struct DhtRecordStore {
    max_record_bytes: usize,
    records: BTreeMap<KeywordId, Record>,
    truncated_entries: u64,
    expired_entries: u64,
}

impl DhtRecordStore {
    /// Creates an empty store with the given per-record byte cap.
    ///
    /// # Panics
    /// Panics if the cap cannot hold even one entry.
    pub fn new(max_record_bytes: usize) -> Self {
        assert!(
            max_record_bytes >= RECORD_KEY_BYTES + RECORD_ENTRY_BYTES,
            "record cap must hold at least one entry"
        );
        DhtRecordStore {
            max_record_bytes,
            records: BTreeMap::new(),
            truncated_entries: 0,
            expired_entries: 0,
        }
    }

    /// The per-record byte cap.
    pub fn max_record_bytes(&self) -> usize {
        self.max_record_bytes
    }

    /// Maximum entries a record can hold under the cap.
    pub fn entry_capacity(&self) -> usize {
        (self.max_record_bytes - RECORD_KEY_BYTES) / RECORD_ENTRY_BYTES
    }

    /// Upserts an entry into `keyword`'s record (read-modify-write). An
    /// existing `(file, provider)` entry keeps the freshest
    /// `(expiry, locId)`; if the record then exceeds the cap, the stalest
    /// entries are evicted (smallest `(expiry, file, provider)` first) and
    /// counted as truncated.
    pub fn insert(
        &mut self,
        keyword: KeywordId,
        file: FileId,
        provider: ProviderEntry,
        expires_at: SimTime,
    ) {
        let record = self.records.entry(keyword).or_default();
        let incoming = StoredProvider {
            loc_id: provider.loc_id,
            expires_at,
        };
        let slot = record.entries.entry((file, provider.provider.0)).or_insert(incoming);
        if (slot.expires_at, slot.loc_id.value()) < (expires_at, provider.loc_id.value()) {
            *slot = incoming;
        }
        while record.bytes() > self.max_record_bytes {
            let stalest = record
                .entries
                .iter()
                .map(|(&key, &stored)| (stored.expires_at, key))
                .min()
                .map(|(_, key)| key)
                .expect("over-cap record cannot be empty");
            record.entries.remove(&stalest);
            self.truncated_entries += 1;
        }
    }

    /// Appends every unexpired entry of `keyword`'s record to `out`, in
    /// `(file, provider)` order. The buffer is appended to, not cleared.
    pub fn lookup_into(
        &self,
        keyword: KeywordId,
        now: SimTime,
        out: &mut Vec<(FileId, ProviderEntry)>,
    ) {
        if let Some(record) = self.records.get(&keyword) {
            out.extend(
                record
                    .entries
                    .iter()
                    .filter(|(_, stored)| stored.expires_at > now)
                    .map(|(&(file, provider), stored)| {
                        (
                            file,
                            ProviderEntry {
                                provider: PeerId(provider),
                                loc_id: stored.loc_id,
                            },
                        )
                    }),
            );
        }
    }

    /// Physically removes every entry expired at `now` (counting them) and
    /// drops emptied records.
    pub fn expire(&mut self, now: SimTime) {
        let mut removed = 0u64;
        self.records.retain(|_, record| {
            let before = record.entries.len();
            record.entries.retain(|_, stored| stored.expires_at > now);
            removed += (before - record.entries.len()) as u64;
            !record.entries.is_empty()
        });
        self.expired_entries += removed;
    }

    /// Drops every entry pointing at `provider` (oracle-style invalidation at
    /// churn departures, mirroring `proactive_provider_invalidation`).
    /// Returns the number of entries removed.
    pub fn remove_provider(&mut self, provider: PeerId) -> usize {
        let mut removed = 0usize;
        self.records.retain(|_, record| {
            let before = record.entries.len();
            record.entries.retain(|&(_, p), _| p != provider.0);
            removed += before - record.entries.len();
            !record.entries.is_empty()
        });
        removed
    }

    /// Drops all records (volatile reset on rejoin). Lifetime counters are
    /// kept: they price the work already done.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Number of non-empty records held.
    pub fn records(&self) -> usize {
        self.records.len()
    }

    /// Total entries across all records.
    pub fn entries(&self) -> usize {
        self.records.values().map(|r| r.entries.len()).sum()
    }

    /// Total bytes across all records (key overhead + entries).
    pub fn bytes(&self) -> usize {
        self.records.values().map(Record::bytes).sum()
    }

    /// Lifetime count of entries evicted by the record cap.
    pub fn truncated_entries(&self) -> u64 {
        self.truncated_entries
    }

    /// Lifetime count of entries removed by TTL expiry sweeps.
    pub fn expired_entries(&self) -> u64 {
        self.expired_entries
    }
}

/// A peer's complete DHT-side state: its node id, routing table and record
/// store.
#[derive(Debug, Clone)]
pub struct DhtNode {
    /// This node's 160-bit id.
    pub id: DhtId,
    /// The k-bucket routing table.
    pub table: RoutingTable,
    /// The keyword→providers records this node stores.
    pub store: DhtRecordStore,
}

impl DhtNode {
    /// Creates a node with an empty table and store.
    pub fn new(id: DhtId, k: usize, max_record_bytes: usize) -> Self {
        DhtNode {
            id,
            table: RoutingTable::new(id, k),
            store: DhtRecordStore::new(max_record_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locaware_sim::Duration;

    fn id(value: u64) -> DhtId {
        DhtId::derive(0xD417, value)
    }

    fn entry(provider: u32, loc: u32) -> ProviderEntry {
        ProviderEntry {
            provider: PeerId(provider),
            loc_id: LocId(loc),
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    #[test]
    fn derivation_is_deterministic_and_salted() {
        assert_eq!(DhtId::derive(1, 2), DhtId::derive(1, 2));
        assert_ne!(DhtId::derive(1, 2), DhtId::derive(1, 3));
        assert_ne!(DhtId::derive(1, 2), DhtId::derive(2, 2));
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let (a, b) = (id(1), id(2));
        assert_eq!(a.distance(b), b.distance(a));
        assert!(a.distance(a).is_zero());
        assert_eq!(a.distance(a).bucket_index(), None);
    }

    #[test]
    fn bucket_index_is_the_highest_set_bit() {
        let mut d = [0u8; DHT_ID_BYTES];
        d[DHT_ID_BYTES - 1] = 1;
        assert_eq!(DhtDistance(d).bucket_index(), Some(0));
        d[DHT_ID_BYTES - 1] = 0b1000_0000;
        assert_eq!(DhtDistance(d).bucket_index(), Some(7));
        d[0] = 0b1000_0000;
        assert_eq!(DhtDistance(d).bucket_index(), Some(159));
    }

    #[test]
    fn routing_table_rejects_self_duplicates_and_overflow() {
        let local = id(0);
        let mut table = RoutingTable::new(local, 2);
        assert!(!table.insert(local, PeerId(0)), "self is never a contact");
        assert!(table.insert(id(1), PeerId(1)));
        assert!(!table.insert(id(1), PeerId(1)), "duplicate peer");
        assert_eq!(table.len(), 1);
        // Fill one specific bucket of a fresh table to capacity.
        let mut table = RoutingTable::new(local, 2);
        let mut raw = local.0;
        raw[0] ^= 0x80; // far half of the key space → bucket 159
        let far_bucket = local.distance(DhtId(raw)).bucket_index().unwrap();
        assert_eq!(far_bucket, DHT_ID_BITS - 1);
        let mut inserted = 0;
        for v in 0..100u8 {
            let mut far = raw;
            far[DHT_ID_BYTES - 1] = v;
            if table.insert(DhtId(far), PeerId(1000 + u32::from(v))) {
                inserted += 1;
            }
        }
        assert_eq!(inserted, 2, "bucket capacity k=2 must bound the bucket");
        assert_eq!(table.bucket_len(far_bucket), 2);
    }

    #[test]
    fn sparse_buckets_report_zero_when_untouched_and_drop_when_emptied() {
        let mut table = RoutingTable::new(id(0), 4);
        for index in 0..DHT_ID_BITS {
            assert_eq!(table.bucket_len(index), 0);
        }
        table.insert(id(1), PeerId(1));
        let occupied = id(0).distance(id(1)).bucket_index().unwrap();
        assert_eq!(table.bucket_len(occupied), 1);
        assert!(table.remove(PeerId(1)));
        // The emptied bucket leaves the sparse spine but still reports 0.
        assert_eq!(table.bucket_len(occupied), 0);
        assert!(table.is_empty());
    }

    #[test]
    fn routing_table_remove_and_clear() {
        let mut table = RoutingTable::new(id(0), 4);
        for v in 1..6u64 {
            table.insert(id(v), PeerId(v as u32));
        }
        let len = table.len();
        assert!(table.contains(PeerId(3)));
        assert!(table.remove(PeerId(3)));
        assert!(!table.remove(PeerId(3)));
        assert_eq!(table.len(), len - 1);
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    fn closest_agrees_with_exhaustive_sort() {
        let local = id(99);
        let mut table = RoutingTable::new(local, 8);
        let contacts: Vec<(DhtId, PeerId)> =
            (0..40u64).map(|v| (id(v), PeerId(v as u32))).collect();
        for &(cid, peer) in &contacts {
            table.insert(cid, peer);
        }
        let target = id(7777);
        let mut expected: Vec<(DhtDistance, PeerId)> = contacts
            .iter()
            .filter(|&&(_, p)| table.contains(p))
            .map(|&(cid, p)| (target.distance(cid), p))
            .collect();
        expected.sort_unstable();
        let expected: Vec<PeerId> = expected.into_iter().take(5).map(|(_, p)| p).collect();
        assert_eq!(table.closest(target, 5), expected);
    }

    #[test]
    fn store_upsert_keeps_the_freshest_entry() {
        let mut store = DhtRecordStore::new(2048);
        store.insert(7, 3, entry(5, 1), t(100));
        store.insert(7, 3, entry(5, 2), t(200));
        store.insert(7, 3, entry(5, 9), t(150)); // staler: ignored
        let mut out = Vec::new();
        store.lookup_into(7, t(0), &mut out);
        assert_eq!(out, vec![(3, entry(5, 2))]);
        assert_eq!(store.entries(), 1);
    }

    #[test]
    fn lookup_filters_expired_entries() {
        let mut store = DhtRecordStore::new(2048);
        store.insert(7, 1, entry(1, 0), t(100));
        store.insert(7, 2, entry(2, 0), t(300));
        let mut out = Vec::new();
        store.lookup_into(7, t(200), &mut out);
        assert_eq!(out, vec![(2, entry(2, 0))]);
        // The stale entry is still physically present until a sweep.
        assert_eq!(store.entries(), 2);
        store.expire(t(200));
        assert_eq!(store.entries(), 1);
        assert_eq!(store.expired_entries(), 1);
    }

    #[test]
    fn record_cap_truncates_the_stalest_entries() {
        // Cap sized for exactly 3 entries.
        let cap = RECORD_KEY_BYTES + 3 * RECORD_ENTRY_BYTES;
        let mut store = DhtRecordStore::new(cap);
        assert_eq!(store.entry_capacity(), 3);
        store.insert(1, 10, entry(1, 0), t(500));
        store.insert(1, 11, entry(2, 0), t(100)); // stalest — must go
        store.insert(1, 12, entry(3, 0), t(400));
        store.insert(1, 13, entry(4, 0), t(300));
        let mut out = Vec::new();
        store.lookup_into(1, t(0), &mut out);
        let files: Vec<FileId> = out.iter().map(|&(f, _)| f).collect();
        assert_eq!(files, vec![10, 12, 13]);
        assert_eq!(store.truncated_entries(), 1);
        assert_eq!(store.bytes(), cap);
    }

    #[test]
    fn remove_provider_drops_entries_and_empty_records() {
        let mut store = DhtRecordStore::new(2048);
        store.insert(1, 10, entry(5, 0), t(100));
        store.insert(2, 11, entry(5, 0), t(100));
        store.insert(2, 12, entry(6, 0), t(100));
        assert_eq!(store.remove_provider(PeerId(5)), 2);
        assert_eq!(store.records(), 1);
        assert_eq!(store.entries(), 1);
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let cap = RECORD_KEY_BYTES + RECORD_ENTRY_BYTES;
        let mut store = DhtRecordStore::new(cap);
        store.insert(1, 10, entry(1, 0), t(100));
        store.insert(1, 11, entry(2, 0), t(200));
        assert_eq!(store.truncated_entries(), 1);
        store.clear();
        assert_eq!(store.records(), 0);
        assert_eq!(store.truncated_entries(), 1);
    }
}
