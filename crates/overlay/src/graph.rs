//! The overlay graph: who is a logical neighbour of whom.
//!
//! The graph is undirected. Peers keep their neighbour lists sorted so that
//! iteration order — and therefore every downstream decision that iterates over
//! neighbours — is deterministic.
//!
//! Storage is CSR (one offsets vector into one shared edge arena) with a
//! copy-on-write overlay for rows mutated since the last [`OverlayGraph::compact`]:
//! a quiescent graph costs 4 bytes per peer plus 4 bytes per directed edge,
//! instead of a heap-allocated `Vec` per peer, and cloning it — which every
//! protocol run does once — is two `memcpy`s. Mutations (churn rewiring)
//! lift just the touched rows into the overlay; reads always see the merged
//! view, so the representation change is invisible to callers.

use std::collections::{HashMap, VecDeque};

use crate::PeerId;

/// The CSR edge arena stores bare [`PeerId`]s: growing this type grows the
/// graph's dominant allocation linearly, so pin it.
const _: () = assert!(std::mem::size_of::<PeerId>() == 4, "CSR edge record grew");

/// An undirected overlay graph over peers `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayGraph {
    /// CSR row offsets: peer `p`'s base row is `arena[offsets[p]..offsets[p+1]]`.
    offsets: Vec<u32>,
    /// All base neighbour lists, concatenated; each row sorted, duplicate-free.
    arena: Vec<PeerId>,
    /// Copy-on-write rows mutated since the last [`OverlayGraph::compact`];
    /// a present row overrides the base row entirely. Empty on the hot path
    /// (no churn yet), which reads check with one branch.
    dirty: HashMap<u32, Vec<PeerId>>,
    /// Peers that have left the overlay (ids are never reused).
    departed: Vec<bool>,
    edges: usize,
}

impl OverlayGraph {
    /// Creates an edgeless graph over `peers` peers.
    pub fn new(peers: usize) -> Self {
        OverlayGraph {
            offsets: vec![0; peers + 1],
            arena: Vec::new(),
            dirty: HashMap::new(),
            departed: vec![false; peers],
            edges: 0,
        }
    }

    /// Number of peer slots (including departed peers).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the graph has no peers at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The merged (base or copy-on-write) row of peer index `i`.
    fn row(&self, i: usize) -> &[PeerId] {
        if !self.dirty.is_empty() {
            if let Some(row) = self.dirty.get(&(i as u32)) {
                return row;
            }
        }
        &self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The mutable row of peer index `i`, lifted into the copy-on-write
    /// overlay on first touch.
    fn row_mut(&mut self, i: usize) -> &mut Vec<PeerId> {
        let base = &self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize];
        self.dirty.entry(i as u32).or_insert_with(|| base.to_vec())
    }

    /// Folds every copy-on-write row back into a fresh CSR base. Called once
    /// after bulk construction (the generator) so steady-state reads hit the
    /// compact arena; later mutations re-enter copy-on-write. A no-op when
    /// nothing is dirty.
    pub fn compact(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let peers = self.len();
        let mut offsets = Vec::with_capacity(peers + 1);
        let mut arena = Vec::with_capacity(2 * self.edges);
        offsets.push(0u32);
        for i in 0..peers {
            arena.extend_from_slice(self.row(i));
            offsets.push(u32::try_from(arena.len()).expect("edge arena exceeds u32 offsets"));
        }
        self.offsets = offsets;
        self.arena = arena;
        self.dirty.clear();
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Average degree over *active* peers.
    pub fn average_degree(&self) -> f64 {
        let active = self.active_count();
        if active == 0 {
            0.0
        } else {
            2.0 * self.edges as f64 / active as f64
        }
    }

    /// Number of peers currently in the overlay.
    pub fn active_count(&self) -> usize {
        self.departed.iter().filter(|&&d| !d).count()
    }

    /// Iterator over all active peers.
    pub fn active_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.departed
            .iter()
            .enumerate()
            .filter(|(_, &d)| !d)
            .map(|(i, _)| PeerId(i as u32))
    }

    /// True if `p` is currently part of the overlay.
    pub fn is_active(&self, p: PeerId) -> bool {
        !self.departed[p.index()]
    }

    /// The sorted neighbour list of `p`.
    pub fn neighbors(&self, p: PeerId) -> &[PeerId] {
        self.row(p.index())
    }

    /// Degree of `p`.
    pub fn degree(&self, p: PeerId) -> usize {
        self.row(p.index()).len()
    }

    /// The neighbour of `p` with the highest degree (ties broken by id), if any.
    ///
    /// This implements the last-resort forwarding rule of §4.2: "or to a highly
    /// connected neighbor [...] to avoid blocking the query forwarding".
    pub fn highest_degree_neighbor(&self, p: PeerId) -> Option<PeerId> {
        self.row(p.index())
            .iter()
            .copied()
            .max_by_key(|&n| (self.degree(n), std::cmp::Reverse(n.0)))
    }

    /// Iterator over every undirected edge, each reported once as `(a, b)`
    /// with `a < b`, in id order.
    pub fn edges(&self) -> impl Iterator<Item = (PeerId, PeerId)> + '_ {
        (0..self.len()).flat_map(move |i| {
            let a = PeerId(i as u32);
            self.row(i)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// True if `a` and `b` are directly connected.
    pub fn are_neighbors(&self, a: PeerId, b: PeerId) -> bool {
        self.row(a.index()).binary_search(&b).is_ok()
    }

    /// Adds an undirected edge. Self-loops and duplicates are ignored.
    /// Returns true if an edge was actually added.
    pub fn add_edge(&mut self, a: PeerId, b: PeerId) -> bool {
        if a == b || self.are_neighbors(a, b) {
            return false;
        }
        assert!(
            a.index() < self.len() && b.index() < self.len(),
            "peer id out of range"
        );
        let row = self.row_mut(a.index());
        let ia = row.binary_search(&b).unwrap_err();
        row.insert(ia, b);
        let row = self.row_mut(b.index());
        let ib = row.binary_search(&a).unwrap_err();
        row.insert(ib, a);
        self.edges += 1;
        true
    }

    /// Removes an undirected edge. Returns true if the edge existed.
    pub fn remove_edge(&mut self, a: PeerId, b: PeerId) -> bool {
        if !self.are_neighbors(a, b) {
            return false;
        }
        let row = self.row_mut(a.index());
        if let Ok(ia) = row.binary_search(&b) {
            row.remove(ia);
        }
        let row = self.row_mut(b.index());
        if let Ok(ib) = row.binary_search(&a) {
            row.remove(ib);
        }
        self.edges -= 1;
        true
    }

    /// Disconnects `p` from all its neighbours and marks it departed.
    /// Returns the neighbours it had (used by churn to re-wire on rejoin).
    pub fn depart(&mut self, p: PeerId) -> Vec<PeerId> {
        let neighbors = self.row(p.index()).to_vec();
        for n in &neighbors {
            self.remove_edge(p, *n);
        }
        self.departed[p.index()] = true;
        neighbors
    }

    /// Marks a departed peer as active again (without edges; the caller wires it).
    pub fn rejoin(&mut self, p: PeerId) {
        self.departed[p.index()] = false;
    }

    /// Peers reachable from `start` (breadth-first), including `start` itself.
    pub fn reachable_from(&self, start: PeerId) -> Vec<PeerId> {
        let mut visited = vec![false; self.len()];
        let mut queue = VecDeque::new();
        let mut out = Vec::new();
        if !self.is_active(start) {
            return out;
        }
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(p) = queue.pop_front() {
            out.push(p);
            for &n in self.neighbors(p) {
                if !visited[n.index()] && self.is_active(n) {
                    visited[n.index()] = true;
                    queue.push_back(n);
                }
            }
        }
        out
    }

    /// True if every active peer can reach every other active peer.
    pub fn is_connected(&self) -> bool {
        let active = self.active_count();
        if active <= 1 {
            return true;
        }
        let start = match self.active_peers().next() {
            Some(p) => p,
            None => return true,
        };
        self.reachable_from(start).len() == active
    }

    /// Peers within `ttl` overlay hops of `origin` (excluding `origin`).
    ///
    /// This is the maximum scope a TTL-bounded flood can reach; used by tests
    /// and by the ground-truth success-rate analysis.
    pub fn peers_within(&self, origin: PeerId, ttl: u32) -> Vec<PeerId> {
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = VecDeque::new();
        dist[origin.index()] = 0;
        queue.push_back(origin);
        let mut out = Vec::new();
        while let Some(p) = queue.pop_front() {
            if dist[p.index()] >= ttl {
                continue;
            }
            for &n in self.neighbors(p) {
                if self.is_active(n) && dist[n.index()] == u32::MAX {
                    dist[n.index()] = dist[p.index()] + 1;
                    out.push(n);
                    queue.push_back(n);
                }
            }
        }
        out
    }

    /// Degree distribution histogram: `hist[d]` = number of active peers with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max_degree = self
            .active_peers()
            .map(|p| self.degree(p))
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max_degree + 1];
        for p in self.active_peers() {
            hist[self.degree(p)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> OverlayGraph {
        let mut g = OverlayGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(PeerId(i as u32), PeerId(i as u32 + 1));
        }
        g
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = OverlayGraph::new(4);
        assert!(g.add_edge(PeerId(0), PeerId(1)));
        assert!(!g.add_edge(PeerId(0), PeerId(1)), "duplicate edges are ignored");
        assert!(!g.add_edge(PeerId(2), PeerId(2)), "self loops are ignored");
        assert!(g.are_neighbors(PeerId(0), PeerId(1)));
        assert!(g.are_neighbors(PeerId(1), PeerId(0)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(PeerId(0), PeerId(1)));
        assert!(!g.remove_edge(PeerId(0), PeerId(1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn neighbor_lists_stay_sorted() {
        let mut g = OverlayGraph::new(5);
        g.add_edge(PeerId(2), PeerId(4));
        g.add_edge(PeerId(2), PeerId(0));
        g.add_edge(PeerId(2), PeerId(3));
        assert_eq!(g.neighbors(PeerId(2)), &[PeerId(0), PeerId(3), PeerId(4)]);
        assert_eq!(g.degree(PeerId(2)), 3);
    }

    #[test]
    fn highest_degree_neighbor_breaks_ties_by_id() {
        let mut g = OverlayGraph::new(6);
        // 0 - 1, 0 - 2; 1 has extra edges making it the hub.
        g.add_edge(PeerId(0), PeerId(1));
        g.add_edge(PeerId(0), PeerId(2));
        g.add_edge(PeerId(1), PeerId(3));
        g.add_edge(PeerId(1), PeerId(4));
        assert_eq!(g.highest_degree_neighbor(PeerId(0)), Some(PeerId(1)));
        // Peer 5 has no neighbours at all.
        assert_eq!(g.highest_degree_neighbor(PeerId(5)), None);
        // Tie: both neighbours of 3 have degree 3 after adding edges? make a tie explicitly.
        let mut tie = OverlayGraph::new(4);
        tie.add_edge(PeerId(0), PeerId(1));
        tie.add_edge(PeerId(0), PeerId(2));
        tie.add_edge(PeerId(1), PeerId(3));
        tie.add_edge(PeerId(2), PeerId(3));
        // Neighbours of 0 are 1 and 2, both degree 2 → lowest id wins.
        assert_eq!(tie.highest_degree_neighbor(PeerId(0)), Some(PeerId(1)));
    }

    #[test]
    fn connectivity_detection() {
        let mut g = path_graph(5);
        assert!(g.is_connected());
        g.remove_edge(PeerId(2), PeerId(3));
        assert!(!g.is_connected());
    }

    #[test]
    fn reachability_and_ttl_scope() {
        let g = path_graph(10);
        assert_eq!(g.reachable_from(PeerId(0)).len(), 10);
        // From one end of a path, TTL 3 reaches exactly 3 peers.
        let within = g.peers_within(PeerId(0), 3);
        assert_eq!(within.len(), 3);
        assert!(within.contains(&PeerId(1)));
        assert!(within.contains(&PeerId(3)));
        assert!(!within.contains(&PeerId(4)));
        // TTL 0 reaches nobody.
        assert!(g.peers_within(PeerId(0), 0).is_empty());
    }

    #[test]
    fn departure_and_rejoin() {
        let mut g = path_graph(4);
        let old_neighbors = g.depart(PeerId(1));
        assert_eq!(old_neighbors, vec![PeerId(0), PeerId(2)]);
        assert!(!g.is_active(PeerId(1)));
        assert_eq!(g.active_count(), 3);
        assert_eq!(g.degree(PeerId(0)), 0);
        assert!(!g.is_connected(), "path breaks without the departed peer");

        g.rejoin(PeerId(1));
        g.add_edge(PeerId(1), PeerId(0));
        g.add_edge(PeerId(1), PeerId(2));
        assert!(g.is_connected());
    }

    #[test]
    fn average_degree_and_histogram() {
        let g = path_graph(4); // degrees 1,2,2,1
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        let hist = g.degree_histogram();
        assert_eq!(hist, vec![0, 2, 2]);
    }

    #[test]
    fn compact_preserves_every_view_and_later_mutations_still_work() {
        let mut g = path_graph(6);
        g.remove_edge(PeerId(2), PeerId(3));
        g.add_edge(PeerId(2), PeerId(5));
        let edges_before: Vec<_> = g.edges().collect();
        let rows_before: Vec<Vec<PeerId>> =
            (0..6).map(|i| g.neighbors(PeerId(i as u32)).to_vec()).collect();
        g.compact();
        let edges_after: Vec<_> = g.edges().collect();
        let rows_after: Vec<Vec<PeerId>> =
            (0..6).map(|i| g.neighbors(PeerId(i as u32)).to_vec()).collect();
        assert_eq!(edges_before, edges_after);
        assert_eq!(rows_before, rows_after);
        assert_eq!(g.edge_count(), 5);
        // Compacting twice is a no-op, and mutation after compaction works.
        g.compact();
        assert!(g.add_edge(PeerId(0), PeerId(3)));
        assert!(g.are_neighbors(PeerId(0), PeerId(3)));
        assert_eq!(g.depart(PeerId(1)), vec![PeerId(0), PeerId(2)]);
        assert_eq!(g.degree(PeerId(1)), 0);
    }

    #[test]
    fn empty_and_single_peer_graphs_are_connected() {
        assert!(OverlayGraph::new(0).is_connected());
        assert!(OverlayGraph::new(1).is_connected());
        let g = OverlayGraph::new(2);
        assert!(!g.is_connected(), "two isolated peers are not connected");
    }
}
