//! The overlay graph: who is a logical neighbour of whom.
//!
//! The graph is undirected. Peers keep their neighbour lists sorted so that
//! iteration order — and therefore every downstream decision that iterates over
//! neighbours — is deterministic.

use std::collections::VecDeque;

use crate::PeerId;

/// An undirected overlay graph over peers `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayGraph {
    /// Adjacency lists, indexed by peer id; each list is sorted and duplicate-free.
    adjacency: Vec<Vec<PeerId>>,
    /// Peers that have left the overlay (ids are never reused).
    departed: Vec<bool>,
    edges: usize,
}

impl OverlayGraph {
    /// Creates an edgeless graph over `peers` peers.
    pub fn new(peers: usize) -> Self {
        OverlayGraph {
            adjacency: vec![Vec::new(); peers],
            departed: vec![false; peers],
            edges: 0,
        }
    }

    /// Number of peer slots (including departed peers).
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True if the graph has no peers at all.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Average degree over *active* peers.
    pub fn average_degree(&self) -> f64 {
        let active = self.active_count();
        if active == 0 {
            0.0
        } else {
            2.0 * self.edges as f64 / active as f64
        }
    }

    /// Number of peers currently in the overlay.
    pub fn active_count(&self) -> usize {
        self.departed.iter().filter(|&&d| !d).count()
    }

    /// Iterator over all active peers.
    pub fn active_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.departed
            .iter()
            .enumerate()
            .filter(|(_, &d)| !d)
            .map(|(i, _)| PeerId(i as u32))
    }

    /// True if `p` is currently part of the overlay.
    pub fn is_active(&self, p: PeerId) -> bool {
        !self.departed[p.index()]
    }

    /// The sorted neighbour list of `p`.
    pub fn neighbors(&self, p: PeerId) -> &[PeerId] {
        &self.adjacency[p.index()]
    }

    /// Degree of `p`.
    pub fn degree(&self, p: PeerId) -> usize {
        self.adjacency[p.index()].len()
    }

    /// The neighbour of `p` with the highest degree (ties broken by id), if any.
    ///
    /// This implements the last-resort forwarding rule of §4.2: "or to a highly
    /// connected neighbor [...] to avoid blocking the query forwarding".
    pub fn highest_degree_neighbor(&self, p: PeerId) -> Option<PeerId> {
        self.adjacency[p.index()]
            .iter()
            .copied()
            .max_by_key(|&n| (self.degree(n), std::cmp::Reverse(n.0)))
    }

    /// Iterator over every undirected edge, each reported once as `(a, b)`
    /// with `a < b`, in id order.
    pub fn edges(&self) -> impl Iterator<Item = (PeerId, PeerId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, neighbors)| {
            let a = PeerId(i as u32);
            neighbors
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// True if `a` and `b` are directly connected.
    pub fn are_neighbors(&self, a: PeerId, b: PeerId) -> bool {
        self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// Adds an undirected edge. Self-loops and duplicates are ignored.
    /// Returns true if an edge was actually added.
    pub fn add_edge(&mut self, a: PeerId, b: PeerId) -> bool {
        if a == b || self.are_neighbors(a, b) {
            return false;
        }
        assert!(
            a.index() < self.adjacency.len() && b.index() < self.adjacency.len(),
            "peer id out of range"
        );
        let ia = self.adjacency[a.index()].binary_search(&b).unwrap_err();
        self.adjacency[a.index()].insert(ia, b);
        let ib = self.adjacency[b.index()].binary_search(&a).unwrap_err();
        self.adjacency[b.index()].insert(ib, a);
        self.edges += 1;
        true
    }

    /// Removes an undirected edge. Returns true if the edge existed.
    pub fn remove_edge(&mut self, a: PeerId, b: PeerId) -> bool {
        let Ok(ia) = self.adjacency[a.index()].binary_search(&b) else {
            return false;
        };
        self.adjacency[a.index()].remove(ia);
        if let Ok(ib) = self.adjacency[b.index()].binary_search(&a) {
            self.adjacency[b.index()].remove(ib);
        }
        self.edges -= 1;
        true
    }

    /// Disconnects `p` from all its neighbours and marks it departed.
    /// Returns the neighbours it had (used by churn to re-wire on rejoin).
    pub fn depart(&mut self, p: PeerId) -> Vec<PeerId> {
        let neighbors = self.adjacency[p.index()].clone();
        for n in &neighbors {
            self.remove_edge(p, *n);
        }
        self.departed[p.index()] = true;
        neighbors
    }

    /// Marks a departed peer as active again (without edges; the caller wires it).
    pub fn rejoin(&mut self, p: PeerId) {
        self.departed[p.index()] = false;
    }

    /// Peers reachable from `start` (breadth-first), including `start` itself.
    pub fn reachable_from(&self, start: PeerId) -> Vec<PeerId> {
        let mut visited = vec![false; self.adjacency.len()];
        let mut queue = VecDeque::new();
        let mut out = Vec::new();
        if !self.is_active(start) {
            return out;
        }
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(p) = queue.pop_front() {
            out.push(p);
            for &n in self.neighbors(p) {
                if !visited[n.index()] && self.is_active(n) {
                    visited[n.index()] = true;
                    queue.push_back(n);
                }
            }
        }
        out
    }

    /// True if every active peer can reach every other active peer.
    pub fn is_connected(&self) -> bool {
        let active = self.active_count();
        if active <= 1 {
            return true;
        }
        let start = match self.active_peers().next() {
            Some(p) => p,
            None => return true,
        };
        self.reachable_from(start).len() == active
    }

    /// Peers within `ttl` overlay hops of `origin` (excluding `origin`).
    ///
    /// This is the maximum scope a TTL-bounded flood can reach; used by tests
    /// and by the ground-truth success-rate analysis.
    pub fn peers_within(&self, origin: PeerId, ttl: u32) -> Vec<PeerId> {
        let mut dist = vec![u32::MAX; self.adjacency.len()];
        let mut queue = VecDeque::new();
        dist[origin.index()] = 0;
        queue.push_back(origin);
        let mut out = Vec::new();
        while let Some(p) = queue.pop_front() {
            if dist[p.index()] >= ttl {
                continue;
            }
            for &n in self.neighbors(p) {
                if self.is_active(n) && dist[n.index()] == u32::MAX {
                    dist[n.index()] = dist[p.index()] + 1;
                    out.push(n);
                    queue.push_back(n);
                }
            }
        }
        out
    }

    /// Degree distribution histogram: `hist[d]` = number of active peers with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max_degree = self
            .active_peers()
            .map(|p| self.degree(p))
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max_degree + 1];
        for p in self.active_peers() {
            hist[self.degree(p)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> OverlayGraph {
        let mut g = OverlayGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(PeerId(i as u32), PeerId(i as u32 + 1));
        }
        g
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = OverlayGraph::new(4);
        assert!(g.add_edge(PeerId(0), PeerId(1)));
        assert!(!g.add_edge(PeerId(0), PeerId(1)), "duplicate edges are ignored");
        assert!(!g.add_edge(PeerId(2), PeerId(2)), "self loops are ignored");
        assert!(g.are_neighbors(PeerId(0), PeerId(1)));
        assert!(g.are_neighbors(PeerId(1), PeerId(0)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(PeerId(0), PeerId(1)));
        assert!(!g.remove_edge(PeerId(0), PeerId(1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn neighbor_lists_stay_sorted() {
        let mut g = OverlayGraph::new(5);
        g.add_edge(PeerId(2), PeerId(4));
        g.add_edge(PeerId(2), PeerId(0));
        g.add_edge(PeerId(2), PeerId(3));
        assert_eq!(g.neighbors(PeerId(2)), &[PeerId(0), PeerId(3), PeerId(4)]);
        assert_eq!(g.degree(PeerId(2)), 3);
    }

    #[test]
    fn highest_degree_neighbor_breaks_ties_by_id() {
        let mut g = OverlayGraph::new(6);
        // 0 - 1, 0 - 2; 1 has extra edges making it the hub.
        g.add_edge(PeerId(0), PeerId(1));
        g.add_edge(PeerId(0), PeerId(2));
        g.add_edge(PeerId(1), PeerId(3));
        g.add_edge(PeerId(1), PeerId(4));
        assert_eq!(g.highest_degree_neighbor(PeerId(0)), Some(PeerId(1)));
        // Peer 5 has no neighbours at all.
        assert_eq!(g.highest_degree_neighbor(PeerId(5)), None);
        // Tie: both neighbours of 3 have degree 3 after adding edges? make a tie explicitly.
        let mut tie = OverlayGraph::new(4);
        tie.add_edge(PeerId(0), PeerId(1));
        tie.add_edge(PeerId(0), PeerId(2));
        tie.add_edge(PeerId(1), PeerId(3));
        tie.add_edge(PeerId(2), PeerId(3));
        // Neighbours of 0 are 1 and 2, both degree 2 → lowest id wins.
        assert_eq!(tie.highest_degree_neighbor(PeerId(0)), Some(PeerId(1)));
    }

    #[test]
    fn connectivity_detection() {
        let mut g = path_graph(5);
        assert!(g.is_connected());
        g.remove_edge(PeerId(2), PeerId(3));
        assert!(!g.is_connected());
    }

    #[test]
    fn reachability_and_ttl_scope() {
        let g = path_graph(10);
        assert_eq!(g.reachable_from(PeerId(0)).len(), 10);
        // From one end of a path, TTL 3 reaches exactly 3 peers.
        let within = g.peers_within(PeerId(0), 3);
        assert_eq!(within.len(), 3);
        assert!(within.contains(&PeerId(1)));
        assert!(within.contains(&PeerId(3)));
        assert!(!within.contains(&PeerId(4)));
        // TTL 0 reaches nobody.
        assert!(g.peers_within(PeerId(0), 0).is_empty());
    }

    #[test]
    fn departure_and_rejoin() {
        let mut g = path_graph(4);
        let old_neighbors = g.depart(PeerId(1));
        assert_eq!(old_neighbors, vec![PeerId(0), PeerId(2)]);
        assert!(!g.is_active(PeerId(1)));
        assert_eq!(g.active_count(), 3);
        assert_eq!(g.degree(PeerId(0)), 0);
        assert!(!g.is_connected(), "path breaks without the departed peer");

        g.rejoin(PeerId(1));
        g.add_edge(PeerId(1), PeerId(0));
        g.add_edge(PeerId(1), PeerId(2));
        assert!(g.is_connected());
    }

    #[test]
    fn average_degree_and_histogram() {
        let g = path_graph(4); // degrees 1,2,2,1
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        let hist = g.degree_histogram();
        assert_eq!(hist, vec![0, 2, 2]);
    }

    #[test]
    fn empty_and_single_peer_graphs_are_connected() {
        assert!(OverlayGraph::new(0).is_connected());
        assert!(OverlayGraph::new(1).is_connected());
        let g = OverlayGraph::new(2);
        assert!(!g.is_connected(), "two isolated peers are not connected");
    }
}
