//! Overlay graph generators.
//!
//! The paper's setup: "we generate an unstructured P2P topology of 1000 peers
//! with an average connectivity degree of 3" (§5.1). [`GraphModel::Random`]
//! reproduces that: it wires a random spanning structure first (so the overlay
//! is connected and no query is unreachable by construction) and then adds
//! random extra edges until the target average degree is met.
//!
//! [`GraphModel::PreferentialAttachment`] produces a heavier-tailed degree
//! distribution, closer to measured Gnutella snapshots; it is used by the
//! sensitivity tests and the ablation benchmarks to check that Locaware's
//! gains do not depend on the exact degree distribution.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::OverlayGraph;
use crate::PeerId;

/// Which random-graph family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphModel {
    /// Connected random graph with a target average degree (paper default).
    Random,
    /// Preferential attachment: each new peer connects to `m` existing peers
    /// chosen proportionally to their current degree (Barabási–Albert style).
    PreferentialAttachment,
}

/// Configuration of the overlay generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of peers.
    pub peers: usize,
    /// Target average degree (the paper uses 3).
    pub average_degree: f64,
    /// Graph family.
    pub model: GraphModel,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            peers: 1000,
            average_degree: 3.0,
            model: GraphModel::Random,
        }
    }
}

impl GeneratorConfig {
    /// Generates an overlay graph using the supplied RNG.
    ///
    /// # Panics
    /// Panics if `peers == 0` or the average degree is not positive, or if the
    /// requested degree is unachievable (≥ peers).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> OverlayGraph {
        assert!(self.peers > 0, "overlay must contain at least one peer");
        assert!(
            self.average_degree > 0.0,
            "average degree must be positive"
        );
        assert!(
            (self.average_degree as usize) < self.peers,
            "average degree must be smaller than the number of peers"
        );
        let mut graph = match self.model {
            GraphModel::Random => generate_random(self.peers, self.average_degree, rng),
            GraphModel::PreferentialAttachment => {
                generate_preferential(self.peers, self.average_degree, rng)
            }
        };
        // Generation mutates every row through the copy-on-write overlay;
        // fold the result into the compact CSR base once, here, so every
        // run over the substrate reads (and clones) the dense form.
        graph.compact();
        graph
    }
}

/// Connected random graph: random spanning tree + random extra edges until the
/// target number of edges (`peers * average_degree / 2`) is reached.
fn generate_random<R: Rng + ?Sized>(peers: usize, average_degree: f64, rng: &mut R) -> OverlayGraph {
    let mut graph = OverlayGraph::new(peers);
    if peers == 1 {
        return graph;
    }

    // Random spanning tree via a random permutation: peer i attaches to a
    // uniformly random earlier peer in the permutation order. This yields a
    // uniformly random labelled tree shape family good enough for connectivity.
    let mut order: Vec<u32> = (0..peers as u32).collect();
    order.shuffle(rng);
    for i in 1..peers {
        let parent = order[rng.gen_range(0..i)];
        graph.add_edge(PeerId(order[i]), PeerId(parent));
    }

    let target_edges = ((peers as f64 * average_degree) / 2.0).round() as usize;
    let mut guard = 0usize;
    let guard_limit = target_edges * 50 + 1000;
    while graph.edge_count() < target_edges && guard < guard_limit {
        guard += 1;
        let a = PeerId(rng.gen_range(0..peers as u32));
        let b = PeerId(rng.gen_range(0..peers as u32));
        graph.add_edge(a, b);
    }
    graph
}

/// Preferential attachment with `m ≈ average_degree / 2` links per new node.
fn generate_preferential<R: Rng + ?Sized>(
    peers: usize,
    average_degree: f64,
    rng: &mut R,
) -> OverlayGraph {
    let mut graph = OverlayGraph::new(peers);
    if peers == 1 {
        return graph;
    }
    let m = ((average_degree / 2.0).round() as usize).max(1);

    // Repeated-nodes list: node id appears once per incident edge end, which
    // makes degree-proportional sampling O(1).
    let mut endpoints: Vec<u32> = Vec::with_capacity(peers * m * 2);

    // Seed with a small clique of m+1 nodes.
    let seed = (m + 1).min(peers);
    for a in 0..seed {
        for b in (a + 1)..seed {
            if graph.add_edge(PeerId(a as u32), PeerId(b as u32)) {
                endpoints.push(a as u32);
                endpoints.push(b as u32);
            }
        }
    }

    for new in seed..peers {
        let mut attached = 0usize;
        let mut attempts = 0usize;
        while attached < m && attempts < m * 20 {
            attempts += 1;
            let target = if endpoints.is_empty() {
                rng.gen_range(0..new as u32)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if graph.add_edge(PeerId(new as u32), PeerId(target)) {
                endpoints.push(new as u32);
                endpoints.push(target);
                attached += 1;
            }
        }
        // Guarantee connectivity even if sampling kept hitting duplicates.
        if attached == 0 {
            let target = rng.gen_range(0..new as u32);
            graph.add_edge(PeerId(new as u32), PeerId(target));
            endpoints.push(new as u32);
            endpoints.push(target);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_graph_matches_paper_setup() {
        let cfg = GeneratorConfig::default();
        let g = cfg.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(g.len(), 1000);
        assert!(g.is_connected(), "generated overlay must be connected");
        let avg = g.average_degree();
        assert!(
            (2.7..=3.3).contains(&avg),
            "average degree should be close to 3, got {avg}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let a = cfg.generate(&mut StdRng::seed_from_u64(7));
        let b = cfg.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GeneratorConfig {
            peers: 100,
            ..GeneratorConfig::default()
        };
        let a = cfg.generate(&mut StdRng::seed_from_u64(1));
        let b = cfg.generate(&mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn preferential_attachment_is_connected_and_skewed() {
        let cfg = GeneratorConfig {
            peers: 500,
            average_degree: 4.0,
            model: GraphModel::PreferentialAttachment,
        };
        let g = cfg.generate(&mut StdRng::seed_from_u64(3));
        assert!(g.is_connected());
        let hist = g.degree_histogram();
        let max_degree = hist.len() - 1;
        // A heavy tail: some node should have degree well above the average.
        assert!(
            max_degree as f64 > 3.0 * g.average_degree(),
            "expected a hub, max degree {max_degree}, avg {}",
            g.average_degree()
        );
    }

    #[test]
    fn single_peer_graph_is_fine() {
        let cfg = GeneratorConfig {
            peers: 1,
            average_degree: 0.5,
            model: GraphModel::Random,
        };
        let g = cfg.generate(&mut StdRng::seed_from_u64(4));
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn small_graphs_are_connected_across_seeds() {
        for seed in 0..20 {
            let cfg = GeneratorConfig {
                peers: 30,
                average_degree: 3.0,
                model: GraphModel::Random,
            };
            let g = cfg.generate(&mut StdRng::seed_from_u64(seed));
            assert!(g.is_connected(), "seed {seed} produced a disconnected overlay");
        }
    }

    #[test]
    #[should_panic(expected = "smaller than the number of peers")]
    fn impossible_degree_is_rejected() {
        let cfg = GeneratorConfig {
            peers: 3,
            average_degree: 5.0,
            model: GraphModel::Random,
        };
        let _ = cfg.generate(&mut StdRng::seed_from_u64(0));
    }
}
