//! Overlay graph statistics.
//!
//! The evaluation's behaviour depends heavily on structural properties of the
//! overlay: how many peers a TTL-7 flood can reach, how skewed the degree
//! distribution is (the "highly connected neighbour" fallback of §4.2 relies
//! on hubs existing), and how long typical paths are. [`GraphStats`] computes
//! those properties; the `inspect` binary and the integration tests use them
//! to sanity-check generated overlays against the paper's setup.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::graph::OverlayGraph;
use crate::PeerId;

/// Summary statistics of an overlay graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of active peers.
    pub peers: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Average degree over active peers.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Minimum degree (0 means isolated peers exist).
    pub min_degree: usize,
    /// True if every active peer can reach every other.
    pub connected: bool,
    /// Eccentricity of the sampled sources (an estimate of the diameter).
    pub estimated_diameter: u32,
    /// Mean shortest-path length over the sampled sources.
    pub average_path_length: f64,
    /// Mean fraction of active peers reachable within the given TTL from the
    /// sampled sources.
    pub ttl_reach_fraction: f64,
    /// The TTL the reach fraction was computed for.
    pub ttl: u32,
}

impl GraphStats {
    /// Computes statistics for `graph`, estimating path metrics from up to
    /// `sample` breadth-first searches and measuring reach at `ttl` hops.
    ///
    /// Sources are taken deterministically (evenly spaced peer ids) so the
    /// statistics are reproducible without threading an RNG through.
    pub fn compute(graph: &OverlayGraph, ttl: u32, sample: usize) -> Self {
        let active: Vec<PeerId> = graph.active_peers().collect();
        let peers = active.len();
        let degrees: Vec<usize> = active.iter().map(|&p| graph.degree(p)).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let min_degree = degrees.iter().copied().min().unwrap_or(0);

        let sources: Vec<PeerId> = if peers == 0 {
            Vec::new()
        } else {
            let step = (peers / sample.max(1)).max(1);
            active.iter().step_by(step).take(sample.max(1)).copied().collect()
        };

        let mut max_eccentricity = 0u32;
        let mut path_length_sum = 0.0f64;
        let mut path_count = 0usize;
        let mut reach_sum = 0.0f64;
        for &source in &sources {
            let distances = bfs_distances(graph, source);
            let mut reached_within_ttl = 0usize;
            for (&peer, &distance) in active.iter().zip(distances_for(&active, &distances)) {
                if peer == source {
                    continue;
                }
                if let Some(d) = distance {
                    max_eccentricity = max_eccentricity.max(d);
                    path_length_sum += f64::from(d);
                    path_count += 1;
                    if d <= ttl {
                        reached_within_ttl += 1;
                    }
                }
            }
            if peers > 1 {
                reach_sum += reached_within_ttl as f64 / (peers - 1) as f64;
            }
        }

        GraphStats {
            peers,
            edges: graph.edge_count(),
            average_degree: graph.average_degree(),
            max_degree,
            min_degree,
            connected: graph.is_connected(),
            estimated_diameter: max_eccentricity,
            average_path_length: if path_count == 0 {
                0.0
            } else {
                path_length_sum / path_count as f64
            },
            ttl_reach_fraction: if sources.is_empty() {
                0.0
            } else {
                reach_sum / sources.len() as f64
            },
            ttl,
        }
    }

    /// Renders the statistics as `key: value` lines for reports.
    pub fn render(&self) -> String {
        format!(
            "peers: {}\nedges: {}\naverage degree: {:.2}\ndegree range: {}..={}\nconnected: {}\n\
             estimated diameter: {}\naverage path length: {:.2}\nTTL-{} reach: {:.1}% of peers\n",
            self.peers,
            self.edges,
            self.average_degree,
            self.min_degree,
            self.max_degree,
            self.connected,
            self.estimated_diameter,
            self.average_path_length,
            self.ttl,
            self.ttl_reach_fraction * 100.0
        )
    }
}

/// Hop distances from `source` to every peer id (by index), `None` if
/// unreachable or inactive.
fn bfs_distances(graph: &OverlayGraph, source: PeerId) -> Vec<Option<u32>> {
    let mut distances: Vec<Option<u32>> = vec![None; graph.len()];
    if !graph.is_active(source) {
        return distances;
    }
    distances[source.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(p) = queue.pop_front() {
        let d = distances[p.index()].expect("queued peers have a distance");
        for &n in graph.neighbors(p) {
            if graph.is_active(n) && distances[n.index()].is_none() {
                distances[n.index()] = Some(d + 1);
                queue.push_back(n);
            }
        }
    }
    distances
}

/// Projects the distance vector onto the active-peer list order.
fn distances_for<'a>(
    active: &'a [PeerId],
    distances: &'a [Option<u32>],
) -> impl Iterator<Item = &'a Option<u32>> + 'a {
    active.iter().map(move |p| &distances[p.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, GraphModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> OverlayGraph {
        let mut g = OverlayGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(PeerId(i as u32), PeerId(i as u32 + 1));
        }
        g
    }

    #[test]
    fn path_graph_statistics_are_exact() {
        let g = path_graph(10);
        let stats = GraphStats::compute(&g, 3, 10);
        assert_eq!(stats.peers, 10);
        assert_eq!(stats.edges, 9);
        assert_eq!(stats.max_degree, 2);
        assert_eq!(stats.min_degree, 1);
        assert!(stats.connected);
        assert_eq!(stats.estimated_diameter, 9, "a 10-peer path has diameter 9");
        // From an end of the path, TTL 3 reaches 3 of the 9 other peers.
        assert!(stats.ttl_reach_fraction > 0.0 && stats.ttl_reach_fraction < 1.0);
    }

    #[test]
    fn full_sampling_equals_partial_sampling_on_symmetric_graphs() {
        // A cycle is vertex-transitive, so any sample gives the same answer.
        let mut g = OverlayGraph::new(12);
        for i in 0..12u32 {
            g.add_edge(PeerId(i), PeerId((i + 1) % 12));
        }
        let full = GraphStats::compute(&g, 2, 12);
        let sampled = GraphStats::compute(&g, 2, 3);
        assert_eq!(full.estimated_diameter, sampled.estimated_diameter);
        assert!((full.average_path_length - sampled.average_path_length).abs() < 1e-9);
        assert!((full.ttl_reach_fraction - sampled.ttl_reach_fraction).abs() < 1e-9);
    }

    #[test]
    fn generated_overlay_matches_paper_scale_expectations() {
        let g = GeneratorConfig {
            peers: 1000,
            average_degree: 3.0,
            model: GraphModel::Random,
        }
        .generate(&mut StdRng::seed_from_u64(1));
        let stats = GraphStats::compute(&g, 7, 8);
        assert!(stats.connected);
        assert!((2.5..3.5).contains(&stats.average_degree));
        assert!(
            stats.ttl_reach_fraction > 0.15,
            "a TTL-7 flood should cover a sizeable share of a 1000-peer overlay, got {:.2}",
            stats.ttl_reach_fraction
        );
        assert!(stats.estimated_diameter >= 7, "degree-3 random graphs are not that small");
        assert!(stats.average_path_length > 3.0);
    }

    #[test]
    fn departed_peers_are_excluded() {
        let mut g = path_graph(5);
        g.depart(PeerId(4));
        let stats = GraphStats::compute(&g, 2, 5);
        assert_eq!(stats.peers, 4);
        assert!(stats.connected, "remaining path of 4 peers is still connected");
    }

    #[test]
    fn render_contains_the_headline_numbers() {
        let stats = GraphStats::compute(&path_graph(4), 2, 4);
        let text = stats.render();
        assert!(text.contains("peers: 4"));
        assert!(text.contains("edges: 3"));
        assert!(text.contains("TTL-2 reach"));
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = OverlayGraph::new(0);
        let stats = GraphStats::compute(&g, 7, 4);
        assert_eq!(stats.peers, 0);
        assert_eq!(stats.estimated_diameter, 0);
        assert_eq!(stats.ttl_reach_fraction, 0.0);
    }
}
