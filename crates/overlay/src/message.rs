//! Overlay messages.
//!
//! The message vocabulary covers everything the four evaluated protocols
//! exchange: keyword/filename queries, query responses carrying provider
//! indexes, Bloom-filter announcements (full or incremental), group-id
//! announcements and keep-alives.
//!
//! Each message knows how to estimate its wire size; the traffic metrics of the
//! evaluation count *messages* (as the paper does for Figure 3) but the
//! byte-level accounting lets the bandwidth ablation quantify the footnote-1
//! claim that incremental Bloom updates are negligible.

use std::sync::Arc;

use bytes::{BufMut, BytesMut};
use locaware_bloom::{BloomDelta, BloomFilter};
use locaware_net::LocId;
use serde::{Deserialize, Serialize};

use crate::PeerId;

/// Globally unique identifier of a query (assigned by the simulation when the
/// query is issued; all forwarded copies share it, which is what duplicate
/// suppression keys on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u64);

/// Globally unique identifier of an individual message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// A keyword is referenced by its id in the global keyword pool; hashing and
/// Bloom membership operate on the id's canonical byte representation, so the
/// overlay does not need the workload crate's string tables.
pub type KeywordId = u32;

/// A file is referenced by its id in the global file pool.
pub type FileId = u32;

/// One provider index entry: the address of a peer providing the file plus its
/// location id (the paper's location-aware index entry, e.g. "(D, 1)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderEntry {
    /// The provider peer.
    pub provider: PeerId,
    /// The provider's locId.
    pub loc_id: LocId,
}

/// The classification of a message, used by the traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// A query being flooded/forwarded.
    Query,
    /// A query response travelling back along the reverse path.
    QueryResponse,
    /// A full Bloom filter announcement.
    BloomFull,
    /// An incremental (changed-bits) Bloom update.
    BloomDelta,
    /// A group-id announcement exchanged between new neighbours.
    GroupAnnounce,
    /// A keep-alive probe.
    Ping,
    /// A keep-alive reply.
    Pong,
    /// An iterative DHT lookup step (structured protocols).
    DhtLookup,
    /// The reply to a DHT lookup step.
    DhtLookupReply,
    /// A DHT record store/republish (structured-index maintenance traffic).
    DhtStore,
}

/// An overlay message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A keyword query travelling away from its originator.
    Query {
        /// The query's global id (stable across forwards).
        query: QueryId,
        /// The peer that issued the query.
        origin: PeerId,
        /// The originator's location id (carried so that peers answering from
        /// their response index can pick providers near the originator, §4.1.2).
        origin_loc: LocId,
        /// The query keywords (1–3 keywords drawn from the target filename).
        ///
        /// Shared rather than owned: one query fans out to many neighbours at
        /// every hop, and every forwarded copy carries the identical keyword
        /// list, so cloning a query message bumps a reference count instead of
        /// reallocating the list per copy.
        keywords: Arc<[KeywordId]>,
        /// For filename-based protocols (Dicas), the exact file being searched;
        /// keyword-based protocols leave this empty and must match on keywords.
        target_filename: Option<FileId>,
        /// Remaining hops (decremented at each forward; 0 stops forwarding).
        ttl: u32,
    },
    /// A response travelling hop-by-hop back along the query's reverse path.
    QueryResponse {
        /// The query this responds to.
        query: QueryId,
        /// The file satisfying the query.
        file: FileId,
        /// All keywords of the file's filename (needed by caching peers to
        /// update their Bloom filters). Interned per file in the catalog and
        /// shared across every response and relay hop about that file, so
        /// constructing or cloning a response bumps a reference count instead
        /// of reallocating the list.
        file_keywords: Arc<[KeywordId]>,
        /// The keywords the original query was expressed with (Dicas-Keys
        /// keys its cache on these). Carried in the response — shared via
        /// `Arc` with the query message that triggered it — so caching peers
        /// along the reverse path need no out-of-band per-query state.
        query_keywords: Arc<[KeywordId]>,
        /// Provider entries: the responding provider plus, in Locaware, other
        /// known providers with their locIds.
        providers: Vec<ProviderEntry>,
        /// The original requestor, which Locaware records as a *new* provider
        /// at caching peers along the path (§4.1.2).
        requestor: ProviderEntry,
    },
    /// Full Bloom filter push to a neighbour (sent on join or as a fallback).
    BloomFull {
        /// The sender's complete filter.
        filter: BloomFilter,
    },
    /// Incremental Bloom update: positions of changed bits (§4.2 footnote).
    BloomDelta {
        /// The changed-bit positions.
        delta: BloomDelta,
    },
    /// Group id announcement ("Neighboring peers exchange their group Ids").
    GroupAnnounce {
        /// The sender's group id.
        gid: u32,
    },
    /// Keep-alive probe.
    Ping,
    /// Keep-alive reply.
    Pong,
    /// One step of an iterative Kademlia-style lookup: the query's *origin*
    /// asks the receiver for the providers it stores under `keyword`'s record
    /// key, plus the contacts it knows closer to that key. Query-charged
    /// traffic: every step pays real link latency and counts against the
    /// issuing query, exactly like a forwarded unstructured query.
    DhtLookup {
        /// The query this lookup resolves.
        query: QueryId,
        /// The keyword whose record key is the lookup target.
        keyword: KeywordId,
        /// This step's depth (1 for the origin's first round).
        hop: u32,
    },
    /// The receiver's answer to a [`Message::DhtLookup`] step.
    DhtLookupReply {
        /// The query this lookup resolves.
        query: QueryId,
        /// The keyword looked up (echoed).
        keyword: KeywordId,
        /// The answered step's depth (echoed).
        hop: u32,
        /// Every unexpired `(file, provider)` entry of the keyword's record
        /// at the answering node.
        entries: Vec<(FileId, ProviderEntry)>,
        /// The answering node's closest known contacts to the record key,
        /// nearest first (the iterative lookup's next candidates).
        closer: Vec<PeerId>,
    },
    /// A record store/republish: upsert `(file, provider)` into the
    /// receiver's record for `keyword`. Background maintenance traffic —
    /// never query-charged, but counted and priced like Bloom sync traffic.
    DhtStore {
        /// The keyword whose record is updated.
        keyword: KeywordId,
        /// The file provided.
        file: FileId,
        /// The providing peer and its location id.
        provider: ProviderEntry,
    },
}

impl Message {
    /// The message's classification for traffic accounting.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Query { .. } => MessageKind::Query,
            Message::QueryResponse { .. } => MessageKind::QueryResponse,
            Message::BloomFull { .. } => MessageKind::BloomFull,
            Message::BloomDelta { .. } => MessageKind::BloomDelta,
            Message::GroupAnnounce { .. } => MessageKind::GroupAnnounce,
            Message::Ping => MessageKind::Ping,
            Message::Pong => MessageKind::Pong,
            Message::DhtLookup { .. } => MessageKind::DhtLookup,
            Message::DhtLookupReply { .. } => MessageKind::DhtLookupReply,
            Message::DhtStore { .. } => MessageKind::DhtStore,
        }
    }

    /// Serialises the message into a compact binary form and returns the bytes.
    ///
    /// The encoding is only used for size accounting (the simulation passes
    /// messages by value); it is nevertheless a complete, deterministic
    /// encoding so the byte counts are honest.
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            Message::Query {
                query,
                origin,
                origin_loc,
                keywords,
                target_filename,
                ttl,
            } => {
                buf.put_u8(0x01);
                buf.put_u64(query.0);
                buf.put_u32(origin.0);
                buf.put_u32(origin_loc.value());
                buf.put_u8(keywords.len() as u8);
                for kw in keywords.iter() {
                    buf.put_u32(*kw);
                }
                match target_filename {
                    Some(f) => {
                        buf.put_u8(1);
                        buf.put_u32(*f);
                    }
                    None => buf.put_u8(0),
                }
                buf.put_u8(*ttl as u8);
            }
            Message::QueryResponse {
                query,
                file,
                file_keywords,
                query_keywords,
                providers,
                requestor,
            } => {
                buf.put_u8(0x02);
                buf.put_u64(query.0);
                buf.put_u32(*file);
                buf.put_u8(file_keywords.len() as u8);
                for kw in file_keywords.iter() {
                    buf.put_u32(*kw);
                }
                buf.put_u8(query_keywords.len() as u8);
                for kw in query_keywords.iter() {
                    buf.put_u32(*kw);
                }
                buf.put_u16(providers.len() as u16);
                for p in providers {
                    buf.put_u32(p.provider.0);
                    buf.put_u32(p.loc_id.value());
                }
                buf.put_u32(requestor.provider.0);
                buf.put_u32(requestor.loc_id.value());
            }
            Message::BloomFull { filter } => {
                buf.put_u8(0x03);
                buf.put_u32(filter.bits() as u32);
                for w in filter.words() {
                    buf.put_u64(*w);
                }
            }
            Message::BloomDelta { delta } => {
                buf.put_u8(0x04);
                buf.put_u16(delta.len() as u16);
                // The paper packs positions in ceil(log2(m)) bits each; we
                // round the whole payload up to whole bytes.
                let payload_bytes = delta.encoded_bytes() as usize;
                buf.put_bytes(0, payload_bytes);
            }
            Message::GroupAnnounce { gid } => {
                buf.put_u8(0x05);
                buf.put_u32(*gid);
            }
            Message::Ping => buf.put_u8(0x06),
            Message::Pong => buf.put_u8(0x07),
            Message::DhtLookup { query, keyword, hop } => {
                buf.put_u8(0x08);
                buf.put_u64(query.0);
                buf.put_u32(*keyword);
                buf.put_u8(*hop as u8);
            }
            Message::DhtLookupReply {
                query,
                keyword,
                hop,
                entries,
                closer,
            } => {
                buf.put_u8(0x09);
                buf.put_u64(query.0);
                buf.put_u32(*keyword);
                buf.put_u8(*hop as u8);
                buf.put_u16(entries.len() as u16);
                for (file, p) in entries {
                    buf.put_u32(*file);
                    buf.put_u32(p.provider.0);
                    buf.put_u32(p.loc_id.value());
                }
                buf.put_u8(closer.len() as u8);
                for c in closer {
                    buf.put_u32(c.0);
                }
            }
            Message::DhtStore {
                keyword,
                file,
                provider,
            } => {
                buf.put_u8(0x0a);
                buf.put_u32(*keyword);
                buf.put_u32(*file);
                buf.put_u32(provider.provider.0);
                buf.put_u32(provider.loc_id.value());
            }
        }
        buf
    }

    /// The message's wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    /// For queries: the remaining TTL. `None` for non-query messages.
    pub fn ttl(&self) -> Option<u32> {
        match self {
            Message::Query { ttl, .. } => Some(*ttl),
            _ => None,
        }
    }

    /// For query-charged messages (queries, responses and DHT lookup steps):
    /// the query id. `None` otherwise.
    pub fn query_id(&self) -> Option<QueryId> {
        match self {
            Message::Query { query, .. }
            | Message::QueryResponse { query, .. }
            | Message::DhtLookup { query, .. }
            | Message::DhtLookupReply { query, .. } => Some(*query),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Message {
        Message::Query {
            query: QueryId(42),
            origin: PeerId(7),
            origin_loc: LocId(3),
            keywords: vec![10, 20, 30].into(),
            target_filename: None,
            ttl: 7,
        }
    }

    #[test]
    fn kinds_are_classified_correctly() {
        assert_eq!(sample_query().kind(), MessageKind::Query);
        assert_eq!(Message::Ping.kind(), MessageKind::Ping);
        assert_eq!(Message::Pong.kind(), MessageKind::Pong);
        assert_eq!(Message::GroupAnnounce { gid: 1 }.kind(), MessageKind::GroupAnnounce);
    }

    #[test]
    fn query_accessors() {
        let q = sample_query();
        assert_eq!(q.ttl(), Some(7));
        assert_eq!(q.query_id(), Some(QueryId(42)));
        assert_eq!(Message::Ping.ttl(), None);
        assert_eq!(Message::Ping.query_id(), None);
    }

    #[test]
    fn query_encoding_has_reasonable_size() {
        let size = sample_query().wire_size();
        // 1 + 8 + 4 + 4 + 1 + 3*4 + 1 + 1 = 32 bytes.
        assert_eq!(size, 32);
    }

    #[test]
    fn response_encoding_grows_with_providers() {
        let small = Message::QueryResponse {
            query: QueryId(1),
            file: 5,
            file_keywords: vec![1, 2, 3].into(),
            query_keywords: vec![1].into(),
            providers: vec![ProviderEntry {
                provider: PeerId(9),
                loc_id: LocId(0),
            }],
            requestor: ProviderEntry {
                provider: PeerId(1),
                loc_id: LocId(2),
            },
        };
        let large = Message::QueryResponse {
            query: QueryId(1),
            file: 5,
            file_keywords: vec![1, 2, 3].into(),
            query_keywords: vec![1].into(),
            providers: (0..10)
                .map(|i| ProviderEntry {
                    provider: PeerId(i),
                    loc_id: LocId(0),
                })
                .collect(),
            requestor: ProviderEntry {
                provider: PeerId(1),
                loc_id: LocId(2),
            },
        };
        assert!(large.wire_size() > small.wire_size());
    }

    #[test]
    fn bloom_delta_is_much_smaller_than_full_filter() {
        let mut filter = BloomFilter::paper_default();
        filter.insert("some");
        filter.insert("keywords");
        let full = Message::BloomFull {
            filter: filter.clone(),
        };
        let mut newer = filter.clone();
        newer.insert("fresh");
        let delta = Message::BloomDelta {
            delta: BloomDelta::between(&filter, &newer),
        };
        assert!(
            delta.wire_size() * 5 < full.wire_size(),
            "delta {} bytes vs full {} bytes",
            delta.wire_size(),
            full.wire_size()
        );
    }

    #[test]
    fn dht_messages_classify_encode_and_charge_queries() {
        let lookup = Message::DhtLookup {
            query: QueryId(9),
            keyword: 42,
            hop: 3,
        };
        assert_eq!(lookup.kind(), MessageKind::DhtLookup);
        assert_eq!(lookup.query_id(), Some(QueryId(9)));
        assert_eq!(lookup.ttl(), None);
        // 1 + 8 + 4 + 1.
        assert_eq!(lookup.wire_size(), 14);

        let reply = Message::DhtLookupReply {
            query: QueryId(9),
            keyword: 42,
            hop: 3,
            entries: vec![(7, ProviderEntry { provider: PeerId(5), loc_id: LocId(1) })],
            closer: vec![PeerId(1), PeerId(2)],
        };
        assert_eq!(reply.kind(), MessageKind::DhtLookupReply);
        assert_eq!(reply.query_id(), Some(QueryId(9)));
        // 1 + 8 + 4 + 1 + 2 + 12 + 1 + 8.
        assert_eq!(reply.wire_size(), 37);

        let store = Message::DhtStore {
            keyword: 42,
            file: 7,
            provider: ProviderEntry { provider: PeerId(5), loc_id: LocId(1) },
        };
        assert_eq!(store.kind(), MessageKind::DhtStore);
        assert_eq!(store.query_id(), None, "stores are background traffic");
        // 1 + 4 + 4 + 8.
        assert_eq!(store.wire_size(), 17);
    }

    #[test]
    fn dicas_query_carries_the_filename() {
        let q = Message::Query {
            query: QueryId(3),
            origin: PeerId(0),
            origin_loc: LocId(0),
            keywords: vec![1, 2, 3].into(),
            target_filename: Some(77),
            ttl: 7,
        };
        // 5 bytes more than the keyword-only variant (flag byte already counted).
        assert_eq!(q.wire_size(), sample_query().wire_size() + 4);
    }
}
