//! Offline stand-in for `serde`.
//!
//! Only the derive macros are re-exported; see `crates/compat/serde_derive`
//! for why they expand to nothing in this offline workspace.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
