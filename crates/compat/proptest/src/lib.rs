//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property suite
//! uses: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, [`collection::vec`], simple regex-class string strategies
//! (`"[a-z]{1,12}"`), [`prelude::Just`], [`prelude::any`], `prop_flat_map` and
//! `prop_shuffle`.
//!
//! Differences from the real crate, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via the
//!   assertion message; the case index and seed are deterministic, so a
//!   failure reproduces exactly by rerunning the test.
//! * **Deterministic by construction.** Case `i` of test `t` is generated from
//!   `hash(t, i)` — there is no OS entropy, so CI and local runs explore the
//!   identical sequence and `proptest-regressions/` files are never needed.
//! * **`PROPTEST_CASES`** caps the number of cases per property (default 64),
//!   matching the env knob the real crate honours.

#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner {
    //! Deterministic RNG used to drive strategies.

    pub use rand::rngs::StdRng as TestRng;

    /// Derives the RNG for one test case from the test name and case index.
    pub fn case_rng(test_name: &str, case: u64) -> TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Number of cases to run per property (the `PROPTEST_CASES` env var,
    /// default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Admissible size specifications for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option`s.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A strategy producing `Some(inner)` with a fixed probability.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
        probability: f64,
    }

    /// Strategy for `Option<S::Value>`, `Some` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }

    /// Strategy for `Option<S::Value>`, `Some` with the given probability.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> OptionStrategy<S> {
        assert!(
            (0.0..=1.0).contains(&probability),
            "Some-probability must be in [0, 1]: got {probability}"
        );
        OptionStrategy { inner, probability }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Always draw the coin so the RNG stream consumed does not depend
            // on the probability value (same discipline as range strategies).
            let coin: f64 = rng.gen();
            if coin < self.probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! The glob-imported proptest surface.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Draws uniformly among the given same-typed strategies (the real crate's
/// weighted form is not supported — list a strategy twice to bias toward it).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let strategy = $strategy;
                Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&strategy, rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that runs the body for [`test_runner::cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}
