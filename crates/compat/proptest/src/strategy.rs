//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG state to a value. Ranges,
//! simple regex character-class patterns, tuples of strategies, [`Just`] and
//! the [`any`] function are supported, plus the `prop_flat_map` /
//! `prop_shuffle` combinators the workspace's property suite uses.

use crate::test_runner::TestRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A recipe for generating values of one type from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps each generated value through `f` into a new strategy, then draws
    /// from that strategy (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Maps each generated value through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Randomly permutes the generated collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Shuffles the collection in place.
    fn shuffle_in_place(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle_in_place(&mut self, rng: &mut TestRng) {
        self.as_mut_slice().shuffle(rng);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mut value = self.inner.generate(rng);
        value.shuffle_in_place(rng);
        value
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// The canonical strategy for `T` over its whole domain.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0, S1.1);
    (S0.0, S1.1, S2.2);
    (S0.0, S1.1, S2.2, S3.3);
}

/// String strategies written as simplified regex patterns.
///
/// Supports what the workspace's properties use: a single character class
/// with a bounded repetition, `"[a-z]{1,12}"` (also `{n}` exact counts).
/// Anything unparsable panics so a typo fails loudly rather than silently
/// generating the wrong distribution.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo_ch, hi_ch, min_len, max_len) =
            parse_class_pattern(self).unwrap_or_else(|| {
                panic!("unsupported string pattern {self:?}; expected \"[x-y]{{m,n}}\"")
            });
        let len = if min_len == max_len {
            min_len
        } else {
            rng.gen_range(min_len..=max_len)
        };
        (0..len)
            .map(|_| rng.gen_range(lo_ch as u32..=hi_ch as u32))
            .map(|c| char::from_u32(c).expect("class endpoints are ASCII"))
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(char, char, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || !lo.is_ascii() || !hi.is_ascii() || lo > hi {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min_len, max_len) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    (min_len <= max_len).then_some((lo, hi, min_len, max_len))
}

/// A boxed generator closure — one arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// See [`prop_oneof!`](crate::prop_oneof): draws a generator uniformly, then
/// a value from it. Built from boxed generator closures so differently-typed
/// strategies producing the same value type can share an arm list.
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Wraps the given generator arms; panics on an empty list.
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one strategy");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.arms.len());
        (self.arms[pick])(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = case_rng("string_patterns", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn flat_map_and_shuffle_compose() {
        let strat = (2usize..=6)
            .prop_flat_map(|k| Just((0..k).collect::<Vec<usize>>()).prop_shuffle());
        let mut rng = case_rng("flat_map_and_shuffle", 1);
        for _ in 0..100 {
            let mut perm = strat.generate(&mut rng);
            let k = perm.len();
            assert!((2..=6).contains(&k));
            perm.sort_unstable();
            assert_eq!(perm, (0..k).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn case_rng_is_deterministic_per_test_and_case() {
        use rand::RngCore;
        assert_eq!(case_rng("t", 3).next_u64(), case_rng("t", 3).next_u64());
        assert_ne!(case_rng("t", 3).next_u64(), case_rng("t", 4).next_u64());
        assert_ne!(case_rng("a", 0).next_u64(), case_rng("b", 0).next_u64());
    }

    #[test]
    fn oneof_and_option_cover_their_arms() {
        let strat = crate::prop_oneof![Just(0.0f64), 1.0f64..2.0];
        let mut rng = case_rng("oneof_arms", 0);
        let mut zeros = 0;
        let mut ranged = 0;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            if v == 0.0 {
                zeros += 1;
            } else {
                assert!((1.0..2.0).contains(&v));
                ranged += 1;
            }
        }
        assert!(zeros > 50 && ranged > 50, "both arms must be drawn: {zeros}/{ranged}");

        let maybe = crate::option::weighted(0.6, 0u32..10);
        let mut somes = 0;
        for _ in 0..200 {
            if let Some(v) = maybe.generate(&mut rng) {
                assert!(v < 10);
                somes += 1;
            }
        }
        assert!((60..180).contains(&somes), "weighted Some-rate wildly off: {somes}/200");
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = case_rng("vec_sizes", 0);
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            let exact = crate::collection::vec(0u32..10, 8usize).generate(&mut rng);
            assert_eq!(exact.len(), 8);
        }
    }
}
