//! Offline stand-in for the `rand` crate (0.8-series API subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the exact API surface the reproduction uses: the [`Rng`]/[`RngCore`] traits
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], the
//! [`rngs::StdRng`] generator and the [`seq::SliceRandom`] helpers
//! (`shuffle`, `choose`, `choose_multiple`).
//!
//! `StdRng` here is xoshiro256\*\* seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but every property the simulation relies
//! on holds: the sequence is fully determined by the seed, `seed_from_u64`
//! never collapses seeds, and draws are equidistributed over 64 bits.

#![warn(missing_docs)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

/// The user-facing random-value interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256\*\*).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` distinct elements in random order (all of them if
        /// the slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Sparse partial Fisher–Yates: identical draw sequence and
            // selection as a dense `(0..len)` index shuffle, but O(amount)
            // per call instead of O(len) — `amount` is tiny (keywords per
            // file, landmark count) while `len` scales with the peer count,
            // so the dense version made every caller quadratic overall.
            // Only positions hit by a swap differ from the identity map, and
            // at most `amount` of them exist; the latest entry for a
            // position wins, exactly like the in-place swap it replaces.
            let mut swapped: Vec<(usize, usize)> = Vec::with_capacity(amount);
            let lookup = |swapped: &[(usize, usize)], position: usize| {
                swapped
                    .iter()
                    .rev()
                    .find(|&&(p, _)| p == position)
                    .map(|&(_, value)| value)
                    .unwrap_or(position)
            };
            let mut picked: Vec<&T> = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                let value_at_j = lookup(&swapped, j);
                let value_at_i = lookup(&swapped, i);
                picked.push(&self[value_at_j]);
                // Position `i` is never read again (future draws start past
                // it), so only `j`'s side of the swap needs recording.
                swapped.push((j, value_at_i));
            }
            picked.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_runs_are_identical() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_multiple_returns_distinct_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }
}
