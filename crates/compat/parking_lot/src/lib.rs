//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Same non-poisoning API shape (`lock()`/`read()`/`write()` return guards
//! directly); the performance characteristics of the real crate are
//! irrelevant at the call sites in this workspace. Poison-freedom is the
//! point: a worker panic already aborts the run through `thread::scope`, so
//! per-acquisition `expect("poisoned")` boilerplate at every engine lock site
//! added nothing but D004 ratchet weight.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error (matching parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the mutex, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never return poison errors
/// (matching parking_lot).
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

/// RAII shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access, ignoring poisoning (parking_lot
    /// semantics).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, ignoring poisoning (parking_lot
    /// semantics).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access through exclusive ownership — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let mut l = RwLock::new(1u32);
        *l.write() += 40;
        assert_eq!(*l.read(), 41);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 42);
    }
}
