//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Same non-poisoning API shape (`lock()` returns the guard directly); the
//! performance characteristics of the real crate are irrelevant at the call
//! sites in this workspace (cold metric-collection paths).

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error (matching parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the mutex, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
