//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the criterion 0.5 API the workspace's eight benches
//! use — [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — measuring mean wall-clock time per iteration
//! with a short warm-up. No statistics, plots or HTML reports: the point is
//! that `cargo bench` runs and prints comparable numbers offline, and that
//! `cargo bench --no-run` type-checks the bench suite in CI.

#![warn(missing_docs)]
// A benchmark harness measures wall-clock time by definition; the
// clippy.toml disallowed-methods ban (lint rule D002) exempts it.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when the harness runs under `cargo bench -- --test`: every benchmark
/// routine executes exactly once, unmeasured — the smoke mode real criterion
/// implements, so CI can prove fixtures still build and routines still run
/// without paying for measurement.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Switches the harness into run-once test mode (called by
/// [`criterion_main!`] when the binary receives `--test`).
pub fn set_test_mode(enabled: bool) {
    TEST_MODE.store(enabled, Ordering::SeqCst);
}

fn test_mode() -> bool {
    TEST_MODE.load(Ordering::SeqCst)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of the parameter display value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_nanos: f64,
    iters_done: u64,
    sample_size: u64,
}

impl Bencher {
    /// Times `routine`, running a short warm-up followed by the measured
    /// iterations. The routine's output is passed through [`black_box`] so the
    /// optimiser cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if test_mode() {
            black_box(routine());
            self.iters_done = 1;
            return;
        }
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        let target = Duration::from_millis(50);
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size || start.elapsed() >= target {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.mean_nanos = elapsed.as_nanos() as f64 / iters as f64;
        self.iters_done = iters;
    }
}

fn run_one(name: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { mean_nanos: 0.0, iters_done: 0, sample_size };
    f(&mut bencher);
    if test_mode() {
        println!("{name:<60} ok (test mode, ran once, unmeasured)");
        return;
    }
    let (value, unit) = humanise(bencher.mean_nanos);
    println!(
        "{name:<60} time: {value:>10.3} {unit}/iter ({} iters)",
        bencher.iters_done
    );
}

fn humanise(nanos: f64) -> (f64, &'static str) {
    if nanos >= 1e9 {
        (nanos / 1e9, "s ")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    }
}

/// Top-level benchmark registry (one per bench target).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the default number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a named benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
///
/// `cargo bench`/`cargo test` pass harness flags (`--bench`, `--test`, filter
/// strings); like real criterion, `--test` runs every benchmark routine
/// exactly once without measuring, so fixtures and routines that panic fail
/// the invocation instead of being skipped.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                $crate::set_test_mode(true);
            }
            $($group();)+
        }
    };
}
