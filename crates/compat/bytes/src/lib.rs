//! Offline stand-in for the `bytes` crate.
//!
//! [`BytesMut`] is a thin wrapper over `Vec<u8>`; [`BufMut`] provides the
//! big-endian `put_*` writers the overlay's wire-size estimator uses. The
//! zero-copy machinery of the real crate is deliberately absent — the
//! reproduction only measures encoded lengths.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer, returning the underlying bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

/// Big-endian byte-writing interface.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends `count` copies of `byte`.
    fn put_bytes(&mut self, byte: u8, count: usize);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    fn put_bytes(&mut self, byte: u8, count: usize) {
        self.inner.resize(self.inner.len() + count, byte);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, BytesMut};

    #[test]
    fn writers_append_big_endian() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(0x01);
        buf.put_u16(0x0203);
        buf.put_u32(0x0405_0607);
        buf.put_bytes(0xff, 2);
        assert_eq!(&buf[..], &[1, 2, 3, 4, 5, 6, 7, 0xff, 0xff]);
        assert_eq!(buf.len(), 9);
    }
}
