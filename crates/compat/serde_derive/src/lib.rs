//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its message and report
//! types so a future wire format can be added without touching every struct,
//! but nothing in the reproduction actually serialises through serde yet (the
//! CSV/report writers are hand-rolled). With no crates.io access the derives
//! therefore expand to nothing; swapping the real serde back in requires only
//! deleting `crates/compat/serde*` and pointing the manifests at the registry.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
