//! Per-link latency cache: compute each link's latency once per topology.
//!
//! [`PhysicalTopology::latency`] is a pure function of the two endpoints
//! (distance, range mapping, deterministic jitter hash) — cheap, but the
//! simulation engine evaluates it on **every message delivery**, and messages
//! overwhelmingly travel along overlay links (queries fan out over neighbour
//! edges; responses retrace the same edges in reverse). A simulation therefore
//! recomputes the same few thousand link latencies millions of times.
//!
//! [`LinkLatencyCache`] precomputes the latency of every overlay link once per
//! substrate and serves lookups from a per-node sorted adjacency array (a
//! short binary search — the average overlay degree is ~4). Pairs outside the
//! cached link set (churn-added edges, requestor→provider download distances,
//! RTT probes to arbitrary providers) fall back to computing from the
//! topology, so a cached lookup **always** returns exactly
//! `topology.latency(a, b)` and substituting the cache can never change
//! simulation results.

use locaware_sim::Duration;

use crate::topology::{NodeId, PhysicalTopology};

/// Precomputed one-way latencies for a fixed set of (undirected) links.
#[derive(Debug, Clone, Default)]
pub struct LinkLatencyCache {
    /// `links[a]` = the cached neighbours of node `a`, sorted by id, with the
    /// precomputed one-way latency to each. Symmetric: `b ∈ links[a]` iff
    /// `a ∈ links[b]` (with the same value, as topology latency is symmetric).
    links: Vec<Vec<(u32, Duration)>>,
}

impl LinkLatencyCache {
    /// An empty cache over `nodes` slots: every lookup falls back to the
    /// topology.
    pub fn empty(nodes: usize) -> Self {
        LinkLatencyCache {
            links: vec![Vec::new(); nodes],
        }
    }

    /// Precomputes the latency of every link in `edges` on `topology`.
    ///
    /// `edges` may list each undirected edge once (either orientation) or
    /// twice; duplicates are deduplicated. Endpoints must be valid topology
    /// nodes.
    pub fn build(
        topology: &PhysicalTopology,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let mut cache = Self::empty(topology.len());
        for (a, b) in edges {
            if a == b {
                continue;
            }
            let latency = topology.latency(a, b);
            cache.insert_directed(a, b, latency);
            cache.insert_directed(b, a, latency);
        }
        cache
    }

    fn insert_directed(&mut self, from: NodeId, to: NodeId, latency: Duration) {
        let row = &mut self.links[from.index()];
        if let Err(pos) = row.binary_search_by_key(&to.0, |&(n, _)| n) {
            row.insert(pos, (to.0, latency));
        }
    }

    /// Number of directed link entries held (twice the undirected link count).
    pub fn len(&self) -> usize {
        self.links.iter().map(Vec::len).sum()
    }

    /// True if no link is cached.
    pub fn is_empty(&self) -> bool {
        self.links.iter().all(Vec::is_empty)
    }

    /// One-way latency between `a` and `b`: a cached-adjacency lookup for
    /// links, `topology.latency(a, b)` for everything else. Always equal to
    /// the direct computation.
    pub fn latency(&self, topology: &PhysicalTopology, a: NodeId, b: NodeId) -> Duration {
        if let Some(row) = self.links.get(a.index()) {
            if let Ok(pos) = row.binary_search_by_key(&b.0, |&(n, _)| n) {
                return row[pos].1;
            }
        }
        topology.latency(a, b)
    }

    /// Round-trip time between `a` and `b` (twice the one-way latency).
    pub fn rtt(&self, topology: &PhysicalTopology, a: NodeId, b: NodeId) -> Duration {
        self.latency(topology, a, b).saturating_mul(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brite::{BriteConfig, BriteGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topology() -> PhysicalTopology {
        BriteGenerator::new(BriteConfig {
            nodes: 40,
            ..BriteConfig::default()
        })
        .generate(&mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn cached_links_agree_with_the_topology() {
        let topo = topology();
        let edges: Vec<(NodeId, NodeId)> = (0..20u32)
            .map(|i| (NodeId(i), NodeId((i + 7) % 40)))
            .collect();
        let cache = LinkLatencyCache::build(&topo, edges.iter().copied());
        for &(a, b) in &edges {
            assert_eq!(cache.latency(&topo, a, b), topo.latency(a, b));
            assert_eq!(cache.latency(&topo, b, a), topo.latency(b, a), "symmetric");
            assert_eq!(cache.rtt(&topo, a, b), topo.rtt(a, b));
        }
    }

    #[test]
    fn uncached_pairs_fall_back_to_the_topology() {
        let topo = topology();
        let cache = LinkLatencyCache::build(&topo, [(NodeId(0), NodeId(1))]);
        assert_eq!(cache.latency(&topo, NodeId(5), NodeId(9)), topo.latency(NodeId(5), NodeId(9)));
        let empty = LinkLatencyCache::empty(topo.len());
        assert!(empty.is_empty());
        assert_eq!(empty.latency(&topo, NodeId(2), NodeId(3)), topo.latency(NodeId(2), NodeId(3)));
    }

    #[test]
    fn duplicate_and_self_edges_are_ignored() {
        let topo = topology();
        let cache = LinkLatencyCache::build(
            &topo,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(0)),
                (NodeId(0), NodeId(1)),
                (NodeId(4), NodeId(4)),
            ],
        );
        assert_eq!(cache.len(), 2, "one undirected link = two directed entries");
        assert_eq!(cache.latency(&topo, NodeId(4), NodeId(4)), Duration::ZERO);
    }
}
