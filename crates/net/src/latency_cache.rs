//! Per-link latency cache: compute each link's latency once per topology.
//!
//! [`PhysicalTopology::latency`] is a pure function of the two endpoints
//! (distance, range mapping, deterministic jitter hash) — cheap, but the
//! simulation engine evaluates it on **every message delivery**, and messages
//! overwhelmingly travel along overlay links (queries fan out over neighbour
//! edges; responses retrace the same edges in reverse). A simulation therefore
//! recomputes the same few thousand link latencies millions of times.
//!
//! [`LinkLatencyCache`] precomputes the latency of every overlay link once per
//! substrate and serves lookups from a per-node sorted adjacency array (a
//! short binary search — the average overlay degree is ~4). Pairs outside the
//! cached link set (churn-added edges, requestor→provider download distances,
//! RTT probes to arbitrary providers) fall back to computing from the
//! topology, so a cached lookup **always** returns exactly
//! `topology.latency(a, b)` and substituting the cache can never change
//! simulation results.

use locaware_sim::Duration;

use crate::topology::{NodeId, PhysicalTopology};

/// Precomputed one-way latencies for a fixed set of (undirected) links.
#[derive(Debug, Clone, Default)]
pub struct LinkLatencyCache {
    /// `links[a]` = the cached neighbours of node `a`, sorted by id, with the
    /// precomputed one-way latency to each. Symmetric: `b ∈ links[a]` iff
    /// `a ∈ links[b]` (with the same value, as topology latency is symmetric).
    links: Vec<Vec<(u32, Duration)>>,
}

impl LinkLatencyCache {
    /// An empty cache over `nodes` slots: every lookup falls back to the
    /// topology.
    pub fn empty(nodes: usize) -> Self {
        LinkLatencyCache {
            links: vec![Vec::new(); nodes],
        }
    }

    /// Precomputes the latency of every link in `edges` on `topology`.
    ///
    /// `edges` may list each undirected edge once (either orientation) or
    /// twice; duplicates are deduplicated. Endpoints must be valid topology
    /// nodes. Per-link latency is a pure function of the endpoints, so that
    /// stage fans out across [`crate::parallel::build_threads`] workers; the
    /// adjacency rows are then assembled serially in edge order, making the
    /// cache byte-identical for every thread count.
    pub fn build(
        topology: &PhysicalTopology,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        Self::build_with_threads(topology, edges, crate::parallel::build_threads())
    }

    /// [`LinkLatencyCache::build`] with an explicit worker count (exposed so
    /// the build-determinism tests can compare thread counts directly).
    pub fn build_with_threads(
        topology: &PhysicalTopology,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
        threads: usize,
    ) -> Self {
        let edges: Vec<(NodeId, NodeId)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        let latencies = crate::parallel::map_indexed(edges.len(), threads, |i| {
            let (a, b) = edges[i];
            topology.latency(a, b)
        });
        let mut cache = Self::empty(topology.len());
        for (&(a, b), &latency) in edges.iter().zip(&latencies) {
            cache.insert_directed(a, b, latency);
            cache.insert_directed(b, a, latency);
        }
        cache
    }

    fn insert_directed(&mut self, from: NodeId, to: NodeId, latency: Duration) {
        let row = &mut self.links[from.index()];
        if let Err(pos) = row.binary_search_by_key(&to.0, |&(n, _)| n) {
            row.insert(pos, (to.0, latency));
        }
    }

    /// Number of directed link entries held (twice the undirected link count).
    pub fn len(&self) -> usize {
        self.links.iter().map(Vec::len).sum()
    }

    /// True if no link is cached.
    pub fn is_empty(&self) -> bool {
        self.links.iter().all(Vec::is_empty)
    }

    /// One-way latency between `a` and `b`: a cached-adjacency lookup for
    /// links, `topology.latency(a, b)` for everything else. Always equal to
    /// the direct computation.
    pub fn latency(&self, topology: &PhysicalTopology, a: NodeId, b: NodeId) -> Duration {
        if let Some(row) = self.links.get(a.index()) {
            if let Ok(pos) = row.binary_search_by_key(&b.0, |&(n, _)| n) {
                return row[pos].1;
            }
        }
        topology.latency(a, b)
    }

    /// Round-trip time between `a` and `b` (twice the one-way latency).
    pub fn rtt(&self, topology: &PhysicalTopology, a: NodeId, b: NodeId) -> Duration {
        self.latency(topology, a, b).saturating_mul(2)
    }

    /// Iterates every cached **directed** link as `(from, to, latency)`.
    /// Each undirected link appears twice (once per orientation).
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, Duration)> + '_ {
        self.links.iter().enumerate().flat_map(|(from, row)| {
            row.iter()
                .map(move |&(to, latency)| (NodeId(from as u32), NodeId(to), latency))
        })
    }

    /// The smallest cached latency among links whose endpoints fall in
    /// *different* partition cells under `assignment` (node index → cell).
    ///
    /// This is the conservative lookahead of a sharded simulator: a message
    /// sent over a link at time `t` cannot reach another shard before
    /// `t + min_cross_partition_latency`, so shards may safely run `W` of
    /// simulated time ahead of each other between merges. Returns `None` when
    /// no cached link crosses a cell boundary (e.g. a single-cell partition),
    /// which callers should read as "unbounded lookahead".
    ///
    /// Nodes outside `assignment` (shorter slice than the topology) are
    /// treated as cell 0.
    pub fn min_cross_partition_latency(&self, assignment: &[u32]) -> Option<Duration> {
        let cell = |n: NodeId| assignment.get(n.index()).copied().unwrap_or(0);
        self.links()
            .filter(|&(a, b, _)| cell(a) != cell(b))
            .map(|(_, _, latency)| latency)
            .min()
    }

    /// Per-cell latency structure of the cached link set under `assignment`
    /// (node index → cell in `0..cells`): how many links stay inside each
    /// cell, how many leave it, and the minimum latency of each kind.
    ///
    /// The per-cell `cross_min` values are what a sharded engine consults to
    /// reason about a partition's quality: the global window length is the
    /// minimum over all cells (equal to
    /// [`LinkLatencyCache::min_cross_partition_latency`]), and a cell with a
    /// much smaller `cross_min` than its peers marks a bad partition boundary.
    pub fn partition_views(&self, assignment: &[u32], cells: usize) -> Vec<PartitionView> {
        let mut views: Vec<PartitionView> = (0..cells)
            .map(|cell| PartitionView {
                cell: cell as u32,
                intra_links: 0,
                cross_links: 0,
                intra_min: None,
                cross_min: None,
            })
            .collect();
        let cell_of = |n: NodeId| assignment.get(n.index()).copied().unwrap_or(0);
        for (from, to, latency) in self.links() {
            let cell = cell_of(from) as usize;
            let Some(view) = views.get_mut(cell) else {
                continue;
            };
            if cell_of(from) == cell_of(to) {
                view.intra_links += 1;
                view.intra_min = Some(view.intra_min.map_or(latency, |m: Duration| m.min(latency)));
            } else {
                view.cross_links += 1;
                view.cross_min = Some(view.cross_min.map_or(latency, |m: Duration| m.min(latency)));
            }
        }
        views
    }

    /// Per-(src, dst)-cell channel minima of the cached link set under
    /// `assignment` (node index → cell in `0..cells`): `matrix[src][dst]` is
    /// the smallest latency of any cached link from a node in `src` to a node
    /// in `dst`, or `None` when no such link exists. Diagonal entries carry
    /// the intra-cell minima.
    ///
    /// This is the CMB-style per-channel lookahead table of a conservative
    /// parallel simulator: a message from shard `j` to shard `i` sent at time
    /// `t` cannot arrive before `t + matrix[j][i]`, so shard `i` may safely
    /// advance to `min over incoming j of (frontier + matrix[j][i])` — a
    /// per-destination bound that is never tighter, and usually much looser,
    /// than the global [`LinkLatencyCache::min_cross_partition_latency`].
    pub fn channel_mins(&self, assignment: &[u32], cells: usize) -> Vec<Vec<Option<Duration>>> {
        let mut matrix = vec![vec![None; cells]; cells];
        let cell_of = |n: NodeId| assignment.get(n.index()).copied().unwrap_or(0);
        for (from, to, latency) in self.links() {
            let (src, dst) = (cell_of(from) as usize, cell_of(to) as usize);
            if src >= cells || dst >= cells {
                continue;
            }
            let entry = &mut matrix[src][dst];
            *entry = Some(entry.map_or(latency, |m: Duration| m.min(latency)));
        }
        matrix
    }

    /// Per-destination-cell lookahead: for each cell, the minimum of
    /// [`LinkLatencyCache::channel_mins`] over its *incoming* cross-cell
    /// channels. `None` means no cached link enters the cell from outside —
    /// unbounded lookahead for that cell.
    pub fn incoming_channel_mins(&self, assignment: &[u32], cells: usize) -> Vec<Option<Duration>> {
        let matrix = self.channel_mins(assignment, cells);
        (0..cells)
            .map(|dst| {
                (0..cells)
                    .filter(|&src| src != dst)
                    .filter_map(|src| matrix[src][dst])
                    .min()
            })
            .collect()
    }
}

/// One partition cell's view of the cached link set; see
/// [`LinkLatencyCache::partition_views`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionView {
    /// The cell this view describes.
    pub cell: u32,
    /// Directed cached links starting in this cell and staying inside it.
    pub intra_links: usize,
    /// Directed cached links starting in this cell and leaving it.
    pub cross_links: usize,
    /// Smallest intra-cell link latency, if any such link is cached.
    pub intra_min: Option<Duration>,
    /// Smallest latency of a link leaving this cell, if any is cached.
    pub cross_min: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brite::{BriteConfig, BriteGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topology() -> PhysicalTopology {
        BriteGenerator::new(BriteConfig {
            nodes: 40,
            ..BriteConfig::default()
        })
        .generate(&mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn cached_links_agree_with_the_topology() {
        let topo = topology();
        let edges: Vec<(NodeId, NodeId)> = (0..20u32)
            .map(|i| (NodeId(i), NodeId((i + 7) % 40)))
            .collect();
        let cache = LinkLatencyCache::build(&topo, edges.iter().copied());
        for &(a, b) in &edges {
            assert_eq!(cache.latency(&topo, a, b), topo.latency(a, b));
            assert_eq!(cache.latency(&topo, b, a), topo.latency(b, a), "symmetric");
            assert_eq!(cache.rtt(&topo, a, b), topo.rtt(a, b));
        }
    }

    #[test]
    fn uncached_pairs_fall_back_to_the_topology() {
        let topo = topology();
        let cache = LinkLatencyCache::build(&topo, [(NodeId(0), NodeId(1))]);
        assert_eq!(cache.latency(&topo, NodeId(5), NodeId(9)), topo.latency(NodeId(5), NodeId(9)));
        let empty = LinkLatencyCache::empty(topo.len());
        assert!(empty.is_empty());
        assert_eq!(empty.latency(&topo, NodeId(2), NodeId(3)), topo.latency(NodeId(2), NodeId(3)));
    }

    #[test]
    fn partition_views_and_cross_minimum_agree() {
        let topo = topology();
        // Links 0-1, 1-2 (within cell 0), 2-20, 3-21 (crossing into cell 1).
        let edges = [
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(2), NodeId(20)),
            (NodeId(3), NodeId(21)),
        ];
        let cache = LinkLatencyCache::build(&topo, edges);
        let assignment: Vec<u32> = (0..40).map(|i| u32::from(i >= 20)).collect();

        let cross_min = cache
            .min_cross_partition_latency(&assignment)
            .expect("two links cross the partition");
        let expected = topo
            .latency(NodeId(2), NodeId(20))
            .min(topo.latency(NodeId(3), NodeId(21)));
        assert_eq!(cross_min, expected);

        let views = cache.partition_views(&assignment, 2);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].intra_links, 4, "0-1 and 1-2, both directions");
        assert_eq!(views[0].cross_links, 2, "2->20 and 3->21");
        assert_eq!(views[1].cross_links, 2, "20->2 and 21->3");
        assert_eq!(views[1].intra_links, 0);
        assert_eq!(views[1].intra_min, None);
        // The global window length is the minimum over all per-cell views.
        let per_cell_min = views.iter().filter_map(|v| v.cross_min).min();
        assert_eq!(per_cell_min, Some(cross_min));
    }

    #[test]
    fn channel_mins_match_per_link_minima() {
        let topo = topology();
        // Cells: [0, 20) = 0, [20, 40) = 1. Two links crossing 0→1, one
        // intra-cell link in cell 0, none in cell 1.
        let edges = [
            (NodeId(0), NodeId(1)),
            (NodeId(2), NodeId(20)),
            (NodeId(3), NodeId(21)),
        ];
        let cache = LinkLatencyCache::build(&topo, edges);
        let assignment: Vec<u32> = (0..40).map(|i| u32::from(i >= 20)).collect();

        let matrix = cache.channel_mins(&assignment, 2);
        let cross = topo
            .latency(NodeId(2), NodeId(20))
            .min(topo.latency(NodeId(3), NodeId(21)));
        assert_eq!(matrix[0][1], Some(cross));
        assert_eq!(matrix[1][0], Some(cross), "links are symmetric");
        assert_eq!(matrix[0][0], Some(topo.latency(NodeId(0), NodeId(1))));
        assert_eq!(matrix[1][1], None, "no intra-cell link in cell 1");

        // Incoming mins agree with the matrix and with the global minimum.
        let incoming = cache.incoming_channel_mins(&assignment, 2);
        assert_eq!(incoming, vec![Some(cross), Some(cross)]);
        assert_eq!(
            incoming.iter().copied().flatten().min(),
            cache.min_cross_partition_latency(&assignment)
        );
    }

    #[test]
    fn incoming_channel_mins_can_exceed_the_global_floor() {
        let topo = topology();
        // Three cells; find two cross links with different latencies so one
        // destination's incoming minimum sits above the global floor.
        let assignment: Vec<u32> = (0..40u32).map(|i| i / 14).collect(); // cells 0,1,2
        let edges = [
            (NodeId(0), NodeId(15)),  // 0 ↔ 1
            (NodeId(1), NodeId(30)),  // 0 ↔ 2
        ];
        let cache = LinkLatencyCache::build(&topo, edges);
        let l01 = topo.latency(NodeId(0), NodeId(15));
        let l02 = topo.latency(NodeId(1), NodeId(30));
        let incoming = cache.incoming_channel_mins(&assignment, 3);
        assert_eq!(incoming[1], Some(l01), "cell 1 only hears from cell 0");
        assert_eq!(incoming[2], Some(l02), "cell 2 only hears from cell 0");
        assert_eq!(incoming[0], Some(l01.min(l02)));
        let global = cache.min_cross_partition_latency(&assignment).unwrap();
        assert_eq!(global, l01.min(l02));
        // The looser of the two incoming bounds strictly beats the global
        // floor whenever the two link latencies differ.
        if l01 != l02 {
            assert!(incoming[1].unwrap().max(incoming[2].unwrap()) > global);
        }
    }

    #[test]
    fn single_cell_partitions_have_no_cross_links() {
        let topo = topology();
        let cache = LinkLatencyCache::build(&topo, [(NodeId(0), NodeId(1))]);
        let assignment = vec![0u32; 40];
        assert_eq!(cache.min_cross_partition_latency(&assignment), None);
        let views = cache.partition_views(&assignment, 1);
        assert_eq!(views[0].cross_links, 0);
        assert_eq!(views[0].intra_links, 2);
    }

    #[test]
    fn duplicate_and_self_edges_are_ignored() {
        let topo = topology();
        let cache = LinkLatencyCache::build(
            &topo,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(0)),
                (NodeId(0), NodeId(1)),
                (NodeId(4), NodeId(4)),
            ],
        );
        assert_eq!(cache.len(), 2, "one undirected link = two directed entries");
        assert_eq!(cache.latency(&topo, NodeId(4), NodeId(4)), Duration::ZERO);
    }
}
