//! RTT probing for provider selection.
//!
//! §5.1 adjusts the provider-selection strategy: *"when a requestor peer does
//! not find a provider with matching locId amongst its received indexes, it
//! measures its RTT to the set of available providers and chooses the one with
//! the smallest RTT."*
//!
//! [`ProximityProbe`] models that measurement step against the physical
//! topology and also accounts for its cost (one probe per candidate), which the
//! simulation can fold into its traffic metrics if desired.

use locaware_sim::Duration;

use crate::topology::{NodeId, PhysicalTopology};

/// Outcome of probing a set of candidate providers from a requestor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The candidate with the smallest RTT, if any candidates were given.
    pub best: Option<NodeId>,
    /// RTT to the best candidate.
    pub best_rtt: Option<Duration>,
    /// Number of probes performed (= number of candidates).
    pub probes: usize,
}

/// Measures RTTs from a requestor to candidate providers over a topology.
#[derive(Debug, Clone, Copy)]
pub struct ProximityProbe<'a> {
    topology: &'a PhysicalTopology,
}

impl<'a> ProximityProbe<'a> {
    /// Creates a probe bound to a topology.
    pub fn new(topology: &'a PhysicalTopology) -> Self {
        ProximityProbe { topology }
    }

    /// RTT between `from` and a single candidate.
    pub fn rtt(&self, from: NodeId, candidate: NodeId) -> Duration {
        self.topology.rtt(from, candidate)
    }

    /// Probes every candidate and returns the closest one.
    ///
    /// Ties are broken by node id so the outcome is deterministic.
    pub fn probe(&self, from: NodeId, candidates: &[NodeId]) -> ProbeOutcome {
        let mut best: Option<(Duration, NodeId)> = None;
        for &c in candidates {
            let rtt = self.topology.rtt(from, c);
            let key = (rtt, c);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        ProbeOutcome {
            best: best.map(|(_, n)| n),
            best_rtt: best.map(|(d, _)| d),
            probes: candidates.len(),
        }
    }
}

/// Convenience wrapper: the closest candidate by RTT, or `None` if the slice is
/// empty.
pub fn closest_by_rtt(
    topology: &PhysicalTopology,
    from: NodeId,
    candidates: &[NodeId],
) -> Option<NodeId> {
    ProximityProbe::new(topology).probe(from, candidates).best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinates::Point;
    use crate::topology::LatencyModel;

    fn topo() -> PhysicalTopology {
        PhysicalTopology::new(
            vec![
                Point::new(0.0, 0.0), // 0: requestor
                Point::new(0.1, 0.0), // 1: close
                Point::new(0.9, 0.9), // 2: far
                Point::new(0.1, 0.05), // 3: close-ish
            ],
            LatencyModel {
                jitter_fraction: 0.0,
                ..LatencyModel::default()
            },
        )
    }

    #[test]
    fn picks_the_closest_candidate() {
        let t = topo();
        let out = ProximityProbe::new(&t).probe(NodeId(0), &[NodeId(2), NodeId(1), NodeId(3)]);
        assert_eq!(out.best, Some(NodeId(1)));
        assert_eq!(out.probes, 3);
        assert_eq!(out.best_rtt, Some(t.rtt(NodeId(0), NodeId(1))));
    }

    #[test]
    fn empty_candidate_set_yields_none() {
        let t = topo();
        let out = ProximityProbe::new(&t).probe(NodeId(0), &[]);
        assert_eq!(out.best, None);
        assert_eq!(out.best_rtt, None);
        assert_eq!(out.probes, 0);
    }

    #[test]
    fn helper_matches_probe() {
        let t = topo();
        assert_eq!(
            closest_by_rtt(&t, NodeId(0), &[NodeId(2), NodeId(3)]),
            Some(NodeId(3))
        );
        assert_eq!(closest_by_rtt(&t, NodeId(0), &[]), None);
    }

    #[test]
    fn ties_break_deterministically_by_node_id() {
        // Candidates 1 and 1 duplicated — and a self-probe candidate with zero RTT.
        let t = topo();
        let out = ProximityProbe::new(&t).probe(NodeId(0), &[NodeId(0), NodeId(1)]);
        // Probing yourself has RTT 0, which is minimal.
        assert_eq!(out.best, Some(NodeId(0)));
    }
}
