//! The physical topology: node positions plus a latency model.
//!
//! [`PhysicalTopology`] answers two questions the simulation asks constantly:
//!
//! 1. *What is the one-way latency / RTT between nodes `u` and `v`?* — used for
//!    message delivery timing, download-distance measurement and RTT probing.
//! 2. *Where is node `u`?* — used by the landmark subsystem to compute RTTs to
//!    landmark positions.
//!
//! Latency is computed on demand from the two endpoints' coordinates (no O(N²)
//! matrix): a base propagation delay proportional to distance, mapped into the
//! configured `[min_latency, max_latency]` range, plus a small deterministic
//! per-pair jitter so that distinct pairs at the same distance do not collide on
//! exactly the same value. The jitter is a pure function of the pair and the
//! topology seed, so lookups are reproducible and symmetric.

use locaware_sim::Duration;
use serde::{Deserialize, Serialize};

use crate::coordinates::Point;

/// Identifies a node (peer) in the physical topology.
///
/// The same integer is used as the peer id at the overlay layer, so crossing
/// layers never needs a translation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Latency-model parameters shared by every pair of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// One-way latency of two co-located nodes, in milliseconds.
    pub min_latency_ms: f64,
    /// One-way latency of two maximally distant nodes, in milliseconds.
    pub max_latency_ms: f64,
    /// Relative magnitude of deterministic per-pair jitter (0.05 = ±5 %).
    pub jitter_fraction: f64,
    /// Seed mixed into the per-pair jitter so distinct topologies differ.
    pub jitter_seed: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // The paper: "assigns latencies between 10 and 500 ms".
        LatencyModel {
            min_latency_ms: 10.0,
            max_latency_ms: 500.0,
            jitter_fraction: 0.05,
            jitter_seed: 0,
        }
    }
}

impl LatencyModel {
    /// One-way latency in milliseconds for two nodes at `normalized_distance`
    /// (in `[0, 1]`), identified by `a` and `b` for jitter purposes.
    fn latency_ms(&self, a: NodeId, b: NodeId, normalized_distance: f64) -> f64 {
        let span = self.max_latency_ms - self.min_latency_ms;
        let base = self.min_latency_ms + span * normalized_distance.clamp(0.0, 1.0);
        let jitter = self.pair_jitter(a, b);
        (base * (1.0 + jitter)).clamp(self.min_latency_ms, self.max_latency_ms)
    }

    /// Deterministic, symmetric jitter in `[-jitter_fraction, +jitter_fraction]`.
    fn pair_jitter(&self, a: NodeId, b: NodeId) -> f64 {
        if self.jitter_fraction == 0.0 {
            return 0.0;
        }
        // Order the pair so that jitter(a, b) == jitter(b, a).
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let mut z = (u64::from(lo) << 32 | u64::from(hi)) ^ self.jitter_seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (unit * 2.0 - 1.0) * self.jitter_fraction
    }
}

/// Positions of all nodes plus the latency model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhysicalTopology {
    positions: Vec<Point>,
    model: LatencyModel,
}

impl PhysicalTopology {
    /// Builds a topology from explicit positions and a latency model.
    pub fn new(positions: Vec<Point>, model: LatencyModel) -> Self {
        PhysicalTopology { positions, model }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// Position of node `n`.
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    pub fn position(&self, n: NodeId) -> Point {
        self.positions[n.index()]
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.model
    }

    /// One-way latency between two nodes.
    pub fn latency(&self, a: NodeId, b: NodeId) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        let d = self.positions[a.index()].normalized_distance(&self.positions[b.index()]);
        Duration::from_millis_f64(self.model.latency_ms(a, b, d))
    }

    /// Round-trip time between two nodes (twice the one-way latency).
    pub fn rtt(&self, a: NodeId, b: NodeId) -> Duration {
        self.latency(a, b).saturating_mul(2)
    }

    /// One-way latency between a node and an arbitrary point (used for
    /// landmarks, which are not peers). No jitter is applied because the
    /// landmark is not a `NodeId`; the mapping is still monotone in distance.
    pub fn latency_to_point(&self, a: NodeId, p: &Point) -> Duration {
        let d = self.positions[a.index()].normalized_distance(p);
        let span = self.model.max_latency_ms - self.model.min_latency_ms;
        Duration::from_millis_f64(self.model.min_latency_ms + span * d)
    }

    /// Round-trip time between a node and an arbitrary point.
    pub fn rtt_to_point(&self, a: NodeId, p: &Point) -> Duration {
        self.latency_to_point(a, p).saturating_mul(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_topology() -> PhysicalTopology {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.01),
            Point::new(0.5, 0.5),
        ];
        PhysicalTopology::new(positions, LatencyModel::default())
    }

    #[test]
    fn self_latency_is_zero() {
        let t = grid_topology();
        assert_eq!(t.latency(NodeId(0), NodeId(0)), Duration::ZERO);
    }

    #[test]
    fn latency_is_symmetric() {
        let t = grid_topology();
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(t.latency(a, b), t.latency(b, a), "pair {a} {b}");
            }
        }
    }

    #[test]
    fn latency_respects_configured_bounds() {
        let t = grid_topology();
        for a in t.nodes() {
            for b in t.nodes() {
                if a == b {
                    continue;
                }
                let l = t.latency(a, b).as_millis_f64();
                assert!((10.0..=500.0).contains(&l), "latency {l} out of bounds");
            }
        }
    }

    #[test]
    fn close_nodes_have_lower_latency_than_distant_nodes() {
        let t = grid_topology();
        let near = t.latency(NodeId(0), NodeId(2));
        let far = t.latency(NodeId(0), NodeId(1));
        assert!(near < far, "near={near} far={far}");
    }

    #[test]
    fn rtt_is_twice_one_way() {
        let t = grid_topology();
        let l = t.latency(NodeId(0), NodeId(3));
        assert_eq!(t.rtt(NodeId(0), NodeId(3)).as_micros(), l.as_micros() * 2);
    }

    #[test]
    fn latency_to_point_is_monotone_in_distance() {
        let t = grid_topology();
        let near = t.latency_to_point(NodeId(0), &Point::new(0.1, 0.1));
        let far = t.latency_to_point(NodeId(0), &Point::new(0.9, 0.9));
        assert!(near < far);
    }

    #[test]
    fn zero_jitter_model_is_exactly_linear() {
        let model = LatencyModel {
            jitter_fraction: 0.0,
            ..LatencyModel::default()
        };
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let t = PhysicalTopology::new(positions, model);
        let l = t.latency(NodeId(0), NodeId(1)).as_millis_f64();
        assert!((l - 500.0).abs() < 1e-6, "max-distance pair should hit max latency, got {l}");
    }

    #[test]
    fn jitter_is_deterministic() {
        let t1 = grid_topology();
        let t2 = grid_topology();
        assert_eq!(t1.latency(NodeId(0), NodeId(3)), t2.latency(NodeId(0), NodeId(3)));
    }
}
