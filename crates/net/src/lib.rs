//! # locaware-net — the physical underlay model
//!
//! The Locaware paper evaluates download distance in terms of *latency between
//! the requestor and the chosen provider* on an underlay "inspired by BRITE"
//! that "assigns latencies between 10 and 500 ms" (§5.1), and derives each
//! peer's location identifier (`locId`) from the ordering of its round-trip
//! times to a small set of well-known *landmarks* (§4.1.1), exactly as in
//! Ratnasamy et al.'s binning scheme.
//!
//! This crate provides the Rust substitute for that underlay:
//!
//! * [`coordinates`] — a 2-D Euclidean coordinate space in which peers and
//!   landmarks are placed,
//! * [`brite`] — the BRITE-inspired generator: uniform node placement plus a
//!   latency function that maps geometric distance into the paper's
//!   \[10 ms, 500 ms\] range with deterministic per-pair jitter,
//! * [`topology`] — [`PhysicalTopology`]: one-way latency / RTT lookups between
//!   any two nodes,
//! * [`landmark`] — landmark placement and per-peer RTT measurement vectors,
//! * [`locid`] — [`LocId`]: the landmark-ordering fingerprint, encoded as a
//!   Lehmer-coded permutation index (4 landmarks ⇒ 4! = 24 distinct ids),
//! * [`proximity`] — RTT probing used by the §5.1 fallback rule ("measure RTT to
//!   the available providers and choose the smallest"),
//! * [`latency_cache`] — [`LinkLatencyCache`]: per-link latencies computed once
//!   per topology and reused across every message delivery of a simulation,
//! * [`parallel`] — deterministic worker fan-out for the pure build stages
//!   (same bytes for every thread count).
//!
//! The model is geometric rather than a router-level graph: latency is a
//! monotone function of distance in the plane. This preserves the two
//! properties the paper's evaluation depends on — latencies spanning the
//! prescribed range, and *physically close peers producing the same landmark
//! ordering* — without simulating routers the paper never models.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brite;
pub mod coordinates;
pub mod landmark;
pub mod latency_cache;
pub mod locid;
pub mod parallel;
pub mod proximity;
pub mod topology;

pub use brite::{BriteConfig, BriteGenerator};
pub use coordinates::Point;
pub use landmark::{LandmarkSet, RttVector};
pub use latency_cache::{LinkLatencyCache, PartitionView};
pub use locid::LocId;
pub use parallel::{build_threads, map_indexed};
pub use proximity::{closest_by_rtt, ProximityProbe};
pub use topology::{NodeId, PhysicalTopology};
