//! BRITE-inspired underlay generation.
//!
//! BRITE (Boston university Representative Internet Topology gEnerator) places
//! nodes on a plane — either uniformly or in heavy-tailed clusters — and derives
//! link delays from geometric distance. The Locaware paper only borrows the
//! delay model: "we generate an underlying topology of peers connected with
//! links of variable latencies; the model inspired by BRITE assigns latencies
//! between 10 and 500 ms" (§5.1).
//!
//! [`BriteGenerator`] reproduces that: it places peers in the unit square
//! (uniformly, or grouped into a configurable number of clusters to mimic the
//! Internet's regional structure — clustering is what makes landmark binning
//! meaningful) and wraps the result in a [`PhysicalTopology`] whose latencies
//! fall in the configured range.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::coordinates::Point;
use crate::topology::{LatencyModel, PhysicalTopology};

/// How peers are spread over the plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementModel {
    /// Uniform i.i.d. placement over the unit square (BRITE "random" mode).
    Uniform,
    /// Peers are grouped around `clusters` uniformly-placed cluster centres with
    /// Gaussian spread `sigma` (BRITE "heavy-tailed"/hierarchical flavour).
    /// This mimics regional Internet structure: peers in the same cluster see
    /// each other with low latency and produce identical landmark orderings.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
        /// Standard deviation of the per-coordinate offset around a centre.
        sigma: f64,
    },
}

/// Configuration of the BRITE-inspired generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BriteConfig {
    /// Number of peers to place.
    pub nodes: usize,
    /// Placement model.
    pub placement: PlacementModel,
    /// Minimum one-way latency in milliseconds (paper: 10 ms).
    pub min_latency_ms: f64,
    /// Maximum one-way latency in milliseconds (paper: 500 ms).
    pub max_latency_ms: f64,
    /// Relative per-pair latency jitter.
    pub jitter_fraction: f64,
}

impl Default for BriteConfig {
    fn default() -> Self {
        BriteConfig {
            nodes: 1000,
            placement: PlacementModel::Clustered {
                clusters: 24,
                sigma: 0.03,
            },
            min_latency_ms: 10.0,
            max_latency_ms: 500.0,
            jitter_fraction: 0.05,
        }
    }
}

/// Generates [`PhysicalTopology`] instances from a [`BriteConfig`].
#[derive(Debug, Clone)]
pub struct BriteGenerator {
    config: BriteConfig,
}

impl BriteGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is internally inconsistent (zero nodes,
    /// inverted latency range, or a clustered placement with zero clusters).
    pub fn new(config: BriteConfig) -> Self {
        assert!(config.nodes > 0, "topology must contain at least one node");
        assert!(
            config.min_latency_ms > 0.0 && config.max_latency_ms >= config.min_latency_ms,
            "latency range must satisfy 0 < min <= max"
        );
        if let PlacementModel::Clustered { clusters, .. } = config.placement {
            assert!(clusters > 0, "clustered placement needs at least one cluster");
        }
        BriteGenerator { config }
    }

    /// The configuration this generator uses.
    pub fn config(&self) -> &BriteConfig {
        &self.config
    }

    /// Generates a topology using the supplied RNG (typically the
    /// `StreamId::PhysicalTopology` stream).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> PhysicalTopology {
        let positions = match self.config.placement {
            PlacementModel::Uniform => self.place_uniform(rng),
            PlacementModel::Clustered { clusters, sigma } => {
                self.place_clustered(rng, clusters, sigma)
            }
        };
        let model = LatencyModel {
            min_latency_ms: self.config.min_latency_ms,
            max_latency_ms: self.config.max_latency_ms,
            jitter_fraction: self.config.jitter_fraction,
            jitter_seed: rng.gen(),
        };
        PhysicalTopology::new(positions, model)
    }

    fn place_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Point> {
        (0..self.config.nodes)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn place_clustered<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        clusters: usize,
        sigma: f64,
    ) -> Vec<Point> {
        let centres: Vec<Point> = (0..clusters)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        (0..self.config.nodes)
            .map(|_| {
                let centre = centres[rng.gen_range(0..clusters)];
                let dx = gaussian(rng) * sigma;
                let dy = gaussian(rng) * sigma;
                Point::new(centre.x + dx, centre.y + dy)
            })
            .collect()
    }
}

/// Standard normal sample via the Box–Muller transform (avoids depending on
/// `rand_distr`, which is outside the allowed dependency set).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_number_of_nodes() {
        let gen = BriteGenerator::new(BriteConfig {
            nodes: 137,
            ..BriteConfig::default()
        });
        let topo = gen.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(topo.len(), 137);
    }

    #[test]
    fn latencies_fall_in_configured_range() {
        let gen = BriteGenerator::new(BriteConfig {
            nodes: 60,
            placement: PlacementModel::Uniform,
            ..BriteConfig::default()
        });
        let topo = gen.generate(&mut StdRng::seed_from_u64(2));
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a == b {
                    continue;
                }
                let l = topo.latency(a, b).as_millis_f64();
                assert!((10.0..=500.0).contains(&l), "latency {l} out of range");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let gen = BriteGenerator::new(BriteConfig::default());
        let t1 = gen.generate(&mut StdRng::seed_from_u64(99));
        let t2 = gen.generate(&mut StdRng::seed_from_u64(99));
        for n in t1.nodes() {
            assert_eq!(t1.position(n).x, t2.position(n).x);
            assert_eq!(t1.position(n).y, t2.position(n).y);
        }
        assert_eq!(
            t1.latency(NodeId(0), NodeId(1)),
            t2.latency(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let gen = BriteGenerator::new(BriteConfig::default());
        let t1 = gen.generate(&mut StdRng::seed_from_u64(1));
        let t2 = gen.generate(&mut StdRng::seed_from_u64(2));
        let same = t1
            .nodes()
            .filter(|&n| t1.position(n).x == t2.position(n).x)
            .count();
        assert!(same < t1.len() / 10, "layouts should differ almost everywhere");
    }

    #[test]
    fn clustered_placement_produces_locality() {
        // With clustering, the average latency of the closest 1% of pairs
        // should be far below the global average.
        let gen = BriteGenerator::new(BriteConfig {
            nodes: 200,
            placement: PlacementModel::Clustered {
                clusters: 10,
                sigma: 0.02,
            },
            ..BriteConfig::default()
        });
        let topo = gen.generate(&mut StdRng::seed_from_u64(7));
        let mut latencies: Vec<f64> = Vec::new();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a < b {
                    latencies.push(topo.latency(a, b).as_millis_f64());
                }
            }
        }
        latencies.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let closest: f64 =
            latencies[..latencies.len() / 100].iter().sum::<f64>() / (latencies.len() / 100) as f64;
        let avg: f64 = latencies.iter().sum::<f64>() / latencies.len() as f64;
        assert!(
            closest * 3.0 < avg,
            "clustered topology should have pronounced locality (closest={closest:.1}ms avg={avg:.1}ms)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_is_rejected() {
        let _ = BriteGenerator::new(BriteConfig {
            nodes: 0,
            ..BriteConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "latency range")]
    fn inverted_latency_range_is_rejected() {
        let _ = BriteGenerator::new(BriteConfig {
            min_latency_ms: 100.0,
            max_latency_ms: 10.0,
            ..BriteConfig::default()
        });
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
