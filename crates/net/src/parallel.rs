//! Deterministic worker fan-out for substrate-build stages.
//!
//! The expensive build stages (landmark RTT assignment, link-latency
//! precomputation) are per-element **pure**: element `i`'s value depends only
//! on immutable inputs, never on element `j`'s. [`map_indexed`] exploits that
//! with a staged fan-out — contiguous index chunks go to scoped worker
//! threads, and the per-chunk outputs are concatenated back in chunk order —
//! so the result is byte-identical for every thread count, including 1. All
//! RNG-driven stages (topology placement, overlay wiring, catalog draws)
//! stay strictly serial; parallelism is only ever applied to derivations.

use std::sync::OnceLock;

/// Minimum items before fan-out pays for thread spawns. Purely a function of
/// the workload size, so it cannot perturb determinism.
const PARALLEL_MIN_ITEMS: usize = 256;

/// The process-wide build-stage thread count: `LOCAWARE_BUILD_THREADS` if set
/// (clamped to ≥ 1), otherwise the machine's available parallelism. Read
/// once — mid-run environment changes cannot split one build across two
/// fan-out shapes (harmless for results, confusing for profiles).
pub fn build_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("LOCAWARE_BUILD_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            })
    })
}

/// Evaluates `f(0..count)` across `threads` scoped workers and returns the
/// results in index order.
///
/// Each worker owns one contiguous chunk of the index range; the canonical
/// merge is concatenation in chunk order, so the output equals the serial
/// `(0..count).map(f).collect()` for **every** thread count — the
/// build-determinism property tests pin this across {1, 2, 8}.
pub fn map_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads == 1 || count < PARALLEL_MIN_ITEMS {
        return (0..count).map(f).collect();
    }
    let chunk = count.div_ceil(threads);
    let mut out: Vec<T> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|w| {
                let f = &f;
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(count);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for worker in workers {
            out.extend(worker.join().expect("build worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_matches_serial_for_every_thread_count() {
        let serial: Vec<usize> = (0..1000).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(map_indexed(1000, threads, |i| i * 3 + 1), serial);
        }
    }

    #[test]
    fn small_and_empty_inputs_stay_serial_and_correct() {
        assert_eq!(map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(3, 8, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn thread_counts_beyond_the_item_count_are_clamped() {
        let out = map_indexed(300, 1000, |i| i);
        assert_eq!(out, (0..300).collect::<Vec<_>>());
    }
}
