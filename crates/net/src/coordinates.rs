//! A 2-D coordinate space for placing peers and landmarks.
//!
//! The BRITE topology generator places routers on a plane and assigns link
//! delays proportional to Euclidean distance. Our underlay keeps the same
//! geometric intuition: every node has a position in the unit square and
//! latency grows monotonically with distance, so peers that are close in the
//! plane behave like peers in the same region of the Internet.

use serde::{Deserialize, Serialize};

/// A point in the unit square `[0, 1] × [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Point {
    /// The maximum possible distance between two points in the unit square.
    pub const MAX_DISTANCE: f64 = std::f64::consts::SQRT_2;

    /// Creates a point, clamping both coordinates into `[0, 1]`.
    pub fn new(x: f64, y: f64) -> Self {
        Point {
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
        }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Distance normalised to `[0, 1]` by the unit-square diagonal.
    pub fn normalized_distance(&self, other: &Point) -> f64 {
        self.distance(other) / Self::MAX_DISTANCE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.3, 0.4);
        assert!((a.distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(0.2, 0.9);
        let b = Point::new(0.7, 0.1);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn constructor_clamps_out_of_range() {
        let p = Point::new(-0.5, 1.5);
        assert_eq!(p.x, 0.0);
        assert_eq!(p.y, 1.0);
    }

    #[test]
    fn normalized_distance_bounded_by_one() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        assert!((a.normalized_distance(&b) - 1.0).abs() < 1e-12);
        let c = Point::new(0.5, 0.5);
        assert!(a.normalized_distance(&c) < 1.0);
    }
}
