//! Location identifiers (`locId`).
//!
//! §4.1.1 of the paper: *"An ordering of the \[landmark\] set by increasing RTT
//! reflects the physical location of peer n. Thus, physically close peers are
//! likely to produce the same ordering. We thereby associate to each possible
//! ordering a location Id noted locId."*
//!
//! With `k` landmarks there are `k!` possible orderings; the paper uses 4
//! landmarks, i.e. 24 locIds (§5.1). We encode an ordering (a permutation of
//! `0..k`) as its **Lehmer code** index in `[0, k!)`, which gives a compact,
//! stable integer id and an exact inverse for debugging and tests.

use serde::{Deserialize, Serialize};

/// A location identifier: the Lehmer index of a landmark-RTT ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocId(pub u32);

impl LocId {
    /// Number of distinct locIds for `landmarks` landmarks (`landmarks!`).
    ///
    /// # Panics
    /// Panics if the factorial overflows `u32` (landmarks > 12), far beyond any
    /// sensible landmark count — the paper argues even 5 is too many.
    pub fn cardinality(landmarks: usize) -> u32 {
        let mut f: u32 = 1;
        for i in 2..=landmarks as u32 {
            f = f.checked_mul(i).expect("landmark count too large for u32 factorial");
        }
        f
    }

    /// Encodes a permutation of `0..k` (the landmark indices sorted by
    /// increasing RTT) into its Lehmer index.
    ///
    /// # Panics
    /// Panics if `ordering` is not a permutation of `0..ordering.len()`.
    pub fn from_ordering(ordering: &[usize]) -> LocId {
        let k = ordering.len();
        assert!(is_permutation(ordering), "ordering must be a permutation of 0..k");
        let mut index: u32 = 0;
        for (i, &oi) in ordering.iter().enumerate() {
            // Count how many later elements are smaller than ordering[i].
            let smaller_later = ordering[i + 1..].iter().filter(|&&oj| oj < oi).count() as u32;
            index = index * (k - i) as u32 + smaller_later;
        }
        LocId(index)
    }

    /// Decodes the locId back into the landmark ordering it represents.
    pub fn to_ordering(self, landmarks: usize) -> Vec<usize> {
        let mut remaining: Vec<usize> = (0..landmarks).collect();
        let mut index = self.0;
        // Factorials of the suffix lengths.
        let mut result = Vec::with_capacity(landmarks);
        for i in 0..landmarks {
            let suffix = landmarks - i - 1;
            let fact = (1..=suffix as u32).product::<u32>().max(1);
            let pos = (index / fact) as usize;
            index %= fact;
            result.push(remaining.remove(pos.min(remaining.len().saturating_sub(1))));
        }
        result
    }

    /// The raw id value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for LocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

fn is_permutation(values: &[usize]) -> bool {
    let k = values.len();
    let mut seen = vec![false; k];
    for &v in values {
        if v >= k || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_factorial() {
        assert_eq!(LocId::cardinality(1), 1);
        assert_eq!(LocId::cardinality(2), 2);
        assert_eq!(LocId::cardinality(3), 6);
        assert_eq!(LocId::cardinality(4), 24); // the paper's configuration
        assert_eq!(LocId::cardinality(5), 120); // the rejected alternative
    }

    #[test]
    fn identity_ordering_is_zero() {
        assert_eq!(LocId::from_ordering(&[0, 1, 2, 3]), LocId(0));
    }

    #[test]
    fn reverse_ordering_is_max() {
        assert_eq!(LocId::from_ordering(&[3, 2, 1, 0]), LocId(23));
    }

    #[test]
    fn all_orderings_of_four_landmarks_are_distinct_and_in_range() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..4usize {
            for b in 0..4usize {
                for c in 0..4usize {
                    for d in 0..4usize {
                        let perm = [a, b, c, d];
                        if !is_permutation(&perm) {
                            continue;
                        }
                        let id = LocId::from_ordering(&perm);
                        assert!(id.value() < 24);
                        assert!(seen.insert(id), "duplicate id for {perm:?}");
                    }
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn encode_decode_round_trips() {
        for k in 1..=6usize {
            // Enumerate all permutations of 0..k via Heap's algorithm.
            let mut perm: Vec<usize> = (0..k).collect();
            let mut c = vec![0usize; k];
            let check = |p: &[usize]| {
                let id = LocId::from_ordering(p);
                assert_eq!(id.to_ordering(k), p, "round trip failed for {p:?}");
            };
            check(&perm);
            let mut i = 0;
            while i < k {
                if c[i] < i {
                    if i % 2 == 0 {
                        perm.swap(0, i);
                    } else {
                        perm.swap(c[i], i);
                    }
                    check(&perm);
                    c[i] += 1;
                    i = 0;
                } else {
                    c[i] = 0;
                    i += 1;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_is_rejected() {
        let _ = LocId::from_ordering(&[0, 0, 1, 2]);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", LocId(7)), "loc7");
    }
}
