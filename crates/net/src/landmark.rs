//! Landmarks and RTT measurement vectors.
//!
//! §4.1.1: *"we assume that participant peers can be grouped based on their
//! physical locations. [...] a set of well-known machines spread across the
//! Internet, called landmarks. A peer n can estimate its distance, i.e., its
//! round-trip time (RTT) to each landmark."*
//!
//! [`LandmarkSet`] holds the landmark positions (placed to cover the plane —
//! a poorly spread landmark set would collapse many localities onto the same
//! ordering) and computes, for any peer of a [`PhysicalTopology`], its RTT
//! vector and the resulting [`LocId`].

use locaware_sim::Duration;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::coordinates::Point;
use crate::locid::LocId;
use crate::topology::{NodeId, PhysicalTopology};

/// The per-peer vector of measured RTTs to each landmark, in landmark order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RttVector(pub Vec<Duration>);

impl RttVector {
    /// The ordering of landmark indices by increasing RTT.
    ///
    /// Ties are broken by landmark index so the ordering is always a valid,
    /// deterministic permutation.
    pub fn ordering(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.0.len()).collect();
        idx.sort_by_key(|&i| (self.0[i], i));
        idx
    }

    /// The locId corresponding to this RTT vector.
    pub fn loc_id(&self) -> LocId {
        LocId::from_ordering(&self.ordering())
    }

    /// RTT to landmark `i`.
    pub fn rtt(&self, i: usize) -> Duration {
        self.0[i]
    }

    /// Number of landmarks measured.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A set of landmark machines at fixed positions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LandmarkSet {
    positions: Vec<Point>,
}

impl LandmarkSet {
    /// Creates a landmark set from explicit positions.
    ///
    /// # Panics
    /// Panics if `positions` is empty.
    pub fn new(positions: Vec<Point>) -> Self {
        assert!(!positions.is_empty(), "landmark set must not be empty");
        LandmarkSet { positions }
    }

    /// Places `count` landmarks deterministically on a spread-out grid pattern.
    ///
    /// Landmarks are laid out on the corners/edges of the unit square so that
    /// RTT orderings partition the plane into meaningful regions. For the
    /// paper's `count = 4`, the landmarks sit at the four corners.
    pub fn spread(count: usize) -> Self {
        assert!(count > 0, "landmark set must not be empty");
        let corners = [
            Point::new(0.05, 0.05),
            Point::new(0.95, 0.95),
            Point::new(0.05, 0.95),
            Point::new(0.95, 0.05),
            Point::new(0.5, 0.05),
            Point::new(0.5, 0.95),
            Point::new(0.05, 0.5),
            Point::new(0.95, 0.5),
        ];
        let positions = (0..count)
            .map(|i| {
                if i < corners.len() {
                    corners[i]
                } else {
                    // Beyond 8 landmarks, fall back to a deterministic spiral.
                    let t = i as f64 / count as f64;
                    let angle = t * std::f64::consts::TAU * 2.0;
                    Point::new(0.5 + 0.4 * t * angle.cos(), 0.5 + 0.4 * t * angle.sin())
                }
            })
            .collect();
        LandmarkSet { positions }
    }

    /// Places `count` landmarks uniformly at random (for sensitivity studies).
    pub fn random<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Self {
        assert!(count > 0, "landmark set must not be empty");
        LandmarkSet {
            positions: (0..count)
                .map(|_| Point::new(rng.gen(), rng.gen()))
                .collect(),
        }
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of distinct locIds this landmark set can produce.
    pub fn loc_id_cardinality(&self) -> u32 {
        LocId::cardinality(self.positions.len())
    }

    /// Position of landmark `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// Measures the RTT vector of peer `n` on `topology`.
    pub fn measure(&self, topology: &PhysicalTopology, n: NodeId) -> RttVector {
        RttVector(
            self.positions
                .iter()
                .map(|p| topology.rtt_to_point(n, p))
                .collect(),
        )
    }

    /// Convenience: the locId of peer `n` on `topology`.
    pub fn loc_id_of(&self, topology: &PhysicalTopology, n: NodeId) -> LocId {
        self.measure(topology, n).loc_id()
    }

    /// Computes the locId of every node, indexed by `NodeId`.
    ///
    /// Each node's assignment is a pure function of the topology, so the work
    /// fans out across [`crate::parallel::build_threads`] workers; the result
    /// is byte-identical for every thread count.
    pub fn assign_all(&self, topology: &PhysicalTopology) -> Vec<LocId> {
        self.assign_all_with_threads(topology, crate::parallel::build_threads())
    }

    /// [`LandmarkSet::assign_all`] with an explicit worker count (exposed so
    /// the build-determinism tests can compare thread counts directly).
    pub fn assign_all_with_threads(
        &self,
        topology: &PhysicalTopology,
        threads: usize,
    ) -> Vec<LocId> {
        crate::parallel::map_indexed(topology.len(), threads, |i| {
            self.loc_id_of(topology, NodeId(i as u32))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brite::{BriteConfig, BriteGenerator, PlacementModel};
    use crate::topology::LatencyModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_topology() -> PhysicalTopology {
        PhysicalTopology::new(
            vec![
                Point::new(0.10, 0.30),
                Point::new(0.12, 0.28),
                Point::new(0.90, 0.90),
            ],
            LatencyModel::default(),
        )
    }

    #[test]
    fn spread_four_landmarks_cover_the_corners() {
        let lm = LandmarkSet::spread(4);
        assert_eq!(lm.len(), 4);
        assert_eq!(lm.loc_id_cardinality(), 24);
    }

    #[test]
    fn close_peers_share_a_loc_id_distant_peers_do_not() {
        let topo = small_topology();
        let lm = LandmarkSet::spread(4);
        let a = lm.loc_id_of(&topo, NodeId(0));
        let b = lm.loc_id_of(&topo, NodeId(1));
        let c = lm.loc_id_of(&topo, NodeId(2));
        assert_eq!(a, b, "co-located peers must share their locId");
        assert_ne!(a, c, "opposite-corner peers must differ");
    }

    #[test]
    fn rtt_vector_ordering_is_a_permutation() {
        let topo = small_topology();
        let lm = LandmarkSet::spread(4);
        let v = lm.measure(&topo, NodeId(0));
        let mut ord = v.ordering();
        ord.sort_unstable();
        assert_eq!(ord, vec![0, 1, 2, 3]);
    }

    #[test]
    fn assign_all_covers_every_node() {
        let gen = BriteGenerator::new(BriteConfig {
            nodes: 100,
            placement: PlacementModel::Clustered {
                clusters: 8,
                sigma: 0.02,
            },
            ..BriteConfig::default()
        });
        let topo = gen.generate(&mut StdRng::seed_from_u64(5));
        let lm = LandmarkSet::spread(4);
        let ids = lm.assign_all(&topo);
        assert_eq!(ids.len(), 100);
        for id in &ids {
            assert!(id.value() < 24);
        }
        // With 8 clusters we expect a handful of distinct localities, not 1.
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() > 1, "expected multiple localities");
    }

    #[test]
    fn paper_argument_more_landmarks_scatter_peers() {
        // §5.1: with 5 landmarks (120 locIds) the same population scatters into
        // many more localities than with 4 landmarks (24 locIds).
        let gen = BriteGenerator::new(BriteConfig {
            nodes: 200,
            placement: PlacementModel::Uniform,
            ..BriteConfig::default()
        });
        let topo = gen.generate(&mut StdRng::seed_from_u64(11));
        let four = LandmarkSet::spread(4).assign_all(&topo);
        let five = LandmarkSet::spread(5).assign_all(&topo);
        let distinct4: std::collections::HashSet<_> = four.iter().collect();
        let distinct5: std::collections::HashSet<_> = five.iter().collect();
        assert!(
            distinct5.len() >= distinct4.len(),
            "5 landmarks should produce at least as many localities ({} vs {})",
            distinct5.len(),
            distinct4.len()
        );
    }

    #[test]
    fn random_landmarks_are_reproducible() {
        let a = LandmarkSet::random(4, &mut StdRng::seed_from_u64(3));
        let b = LandmarkSet::random(4, &mut StdRng::seed_from_u64(3));
        for i in 0..4 {
            assert_eq!(a.position(i).x, b.position(i).x);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_landmark_set_is_rejected() {
        let _ = LandmarkSet::new(vec![]);
    }
}
