//! Zipf-distributed sampling of file popularity.
//!
//! §5.1: *"Queries are generated according to Zipf distribution"*. Measurement
//! studies of Gnutella traffic (Sripanidkulchai, cited as \[15\]) report query
//! popularity following a Zipf-like law with exponent close to 1; the exponent
//! is configurable so sensitivity experiments can flatten or sharpen the skew.
//!
//! The sampler pre-computes the cumulative distribution over ranks and samples
//! by binary search on a uniform draw — O(log n) per sample, exact, and free of
//! the rejection loops that `rand_distr`'s sampler uses (that crate is outside
//! the allowed dependency set anyway).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Zipf distribution over ranks `0..n` (rank 0 being the most popular).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfDistribution {
    /// Cumulative probabilities, `cdf[i]` = P(rank ≤ i). Last entry is 1.0.
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfDistribution {
    /// Creates a Zipf(α) distribution over `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is negative or non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one rank");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "Zipf exponent must be finite and non-negative"
        );
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point drift so the last bucket always catches.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfDistribution { cdf, exponent }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution is over zero ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew exponent α.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose cdf value is >= u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf contains no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfDistribution::new(500, 1.0);
        let total: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(9999), 0.0);
    }

    #[test]
    fn lower_ranks_are_more_popular() {
        let z = ZipfDistribution::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(99));
    }

    #[test]
    fn samples_follow_the_distribution() {
        let z = ZipfDistribution::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = vec![0usize; 1000];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Empirical frequency of rank 0 should be close to its pmf.
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - z.pmf(0)).abs() < 0.01, "rank-0 frequency {f0} vs pmf {}", z.pmf(0));
        // The top 10% of ranks should attract well over half the queries (skew).
        let head: usize = counts[..100].iter().sum();
        assert!(
            head as f64 / n as f64 > 0.6,
            "Zipf(1.0) head mass too small: {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfDistribution::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_exponent_means_more_skew() {
        let gentle = ZipfDistribution::new(100, 0.6);
        let sharp = ZipfDistribution::new(100, 1.4);
        assert!(sharp.pmf(0) > gentle.pmf(0));
        assert!(sharp.pmf(99) < gentle.pmf(99));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = ZipfDistribution::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = ZipfDistribution::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_is_rejected() {
        let _ = ZipfDistribution::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_is_rejected() {
        let _ = ZipfDistribution::new(10, -1.0);
    }
}
