//! Query arrival process.
//!
//! §5.1 fixes the arrival rate at *0.00083 queries per second per peer*. The
//! aggregate process over `N` peers is Poisson with rate `N × 0.00083`; each
//! arrival is attributed to a uniformly random peer. [`ArrivalProcess`]
//! generates the `(time, peer)` sequence either up to a horizon or up to a
//! fixed number of queries (the figures sweep the *number of queries*, so the
//! count-bounded form is what the experiment harness uses).
//!
//! ## Non-homogeneous schedules
//!
//! The paper's evaluation is steady-state, but the regimes the
//! search-and-replication literature stresses — flash crowds, diurnal ramps —
//! are *bursty*. [`ArrivalSchedule`] makes the rate a first-class, validated
//! piecewise function of time: [`Steady`](ArrivalSchedule::Steady) is the
//! paper's constant rate, [`Ramp`](ArrivalSchedule::Ramp) interpolates the
//! rate linearly over a window, [`Burst`](ArrivalSchedule::Burst) multiplies
//! it inside a window, and [`Phases`](ArrivalSchedule::Phases) composes
//! arbitrary constant-rate segments. Generation uses the time-scaling
//! (inverse-cumulative-hazard) construction of a non-homogeneous Poisson
//! process: each arrival consumes exactly one unit-exponential draw which is
//! mapped through the inverse of `Λ(t) = ∫₀ᵗ λ(u) du`. For `Steady` the
//! mapping degenerates to the paper's constant-rate loop and is executed
//! **bit-for-bit identically** to the original implementation (same RNG
//! draws, same floating-point operations), so an omitted schedule reproduces
//! historical runs exactly.
//!
//! ## Weighted origins
//!
//! Arrival *attribution* (which peer issues the query) is uniform by default;
//! with [`ArrivalConfig::origin_weights`] set, origins are drawn from the
//! weighted contiguous peer clusters of a [`ClusterWeights`], so hotspot
//! regimes can concentrate query load on the same peer ranges in which
//! [`InitialPlacement`](crate::placement::InitialPlacement) concentrates
//! storage.

use locaware_sim::{Duration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::placement::ClusterWeights;

/// One query arrival: when and at which peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// The time the query is issued.
    pub at: SimTime,
    /// The peer issuing it (index into the peer population).
    pub peer: usize,
}

/// One constant-rate segment of an [`ArrivalSchedule::Phases`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePhase {
    /// Rate multiplier applied to the base rate during this phase.
    pub multiplier: f64,
    /// Phase length in seconds of simulated time.
    pub duration_secs: f64,
}

/// A piecewise rate profile modulating the base arrival rate over time.
///
/// Every variant multiplies [`ArrivalConfig::aggregate_rate`]; after the
/// profile's span the rate returns to (or stays at) a steady value, so
/// count-bounded generation always terminates. Validation
/// ([`ArrivalSchedule::validate`]) rejects degenerate profiles — empty phase
/// lists, non-positive multipliers, zero-length or negative durations — with
/// a typed [`ScheduleError`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalSchedule {
    /// The paper's homogeneous process: the base rate at all times. Omitting
    /// a schedule means `Steady`, and `Steady` reproduces the legacy
    /// constant-rate generator bit-for-bit.
    #[default]
    Steady,
    /// The rate multiplier ramps linearly from `from` to `to` over
    /// `duration_secs`, then stays at `to`.
    Ramp {
        /// Multiplier at time zero.
        from: f64,
        /// Multiplier at the end of the ramp (and afterwards).
        to: f64,
        /// Ramp length in seconds.
        duration_secs: f64,
    },
    /// The rate is the base rate except in the window
    /// `[start_secs, start_secs + duration_secs)`, where it is multiplied by
    /// `multiplier` (a flash crowd for `multiplier > 1`, an outage for
    /// `multiplier < 1`).
    Burst {
        /// Rate multiplier inside the burst window.
        multiplier: f64,
        /// Burst start in seconds (0 starts the run bursting).
        start_secs: f64,
        /// Burst length in seconds.
        duration_secs: f64,
    },
    /// Arbitrary composition: the listed constant-rate phases run back to
    /// back from time zero; after the last phase the multiplier returns to 1.
    Phases(Vec<RatePhase>),
}

/// Why an [`ArrivalSchedule`] (or the arrival configuration around it) is
/// invalid. Carried by
/// [`ArrivalProcess::new`] and surfaced through the simulation layer's
/// configuration validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The arrival population is empty.
    NoPeers,
    /// The base per-peer rate is not positive and finite.
    InvalidRate {
        /// The offending rate in queries per second per peer.
        rate_per_peer: f64,
    },
    /// A `Phases` schedule with no phases.
    EmptyPhases,
    /// A multiplier (phase, ramp endpoint or burst) is not positive and finite.
    InvalidMultiplier {
        /// The offending multiplier.
        multiplier: f64,
    },
    /// A segment duration (phase, ramp or burst length) is not positive and
    /// finite.
    InvalidDuration {
        /// The offending duration in seconds.
        duration_secs: f64,
    },
    /// A burst start time is negative or not finite.
    InvalidBurstStart {
        /// The offending start time in seconds.
        start_secs: f64,
    },
    /// The origin weights do not fit the population.
    OriginWeights(crate::placement::ClusterWeightsError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoPeers => write!(f, "arrival process needs at least one peer"),
            ScheduleError::InvalidRate { rate_per_peer } => write!(
                f,
                "per-peer rate must be positive and finite: got {rate_per_peer}"
            ),
            ScheduleError::EmptyPhases => {
                write!(f, "a Phases schedule needs at least one phase")
            }
            ScheduleError::InvalidMultiplier { multiplier } => write!(
                f,
                "schedule multipliers must be positive and finite: got {multiplier}"
            ),
            ScheduleError::InvalidDuration { duration_secs } => write!(
                f,
                "schedule durations must be positive and finite: got {duration_secs}s"
            ),
            ScheduleError::InvalidBurstStart { start_secs } => write!(
                f,
                "burst start must be non-negative and finite: got {start_secs}s"
            ),
            ScheduleError::OriginWeights(error) => write!(f, "origin weights: {error}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// True when `x` is a usable multiplier or duration.
fn positive_finite(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

impl ArrivalSchedule {
    /// Checks the profile for degenerate parameters.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        match self {
            ArrivalSchedule::Steady => Ok(()),
            ArrivalSchedule::Ramp { from, to, duration_secs } => {
                for &m in [*from, *to].iter() {
                    if !positive_finite(m) {
                        return Err(ScheduleError::InvalidMultiplier { multiplier: m });
                    }
                }
                if !positive_finite(*duration_secs) {
                    return Err(ScheduleError::InvalidDuration {
                        duration_secs: *duration_secs,
                    });
                }
                Ok(())
            }
            ArrivalSchedule::Burst { multiplier, start_secs, duration_secs } => {
                if !positive_finite(*multiplier) {
                    return Err(ScheduleError::InvalidMultiplier { multiplier: *multiplier });
                }
                if !start_secs.is_finite() || *start_secs < 0.0 {
                    return Err(ScheduleError::InvalidBurstStart { start_secs: *start_secs });
                }
                if !positive_finite(*duration_secs) {
                    return Err(ScheduleError::InvalidDuration {
                        duration_secs: *duration_secs,
                    });
                }
                Ok(())
            }
            ArrivalSchedule::Phases(phases) => {
                if phases.is_empty() {
                    return Err(ScheduleError::EmptyPhases);
                }
                for phase in phases {
                    if !positive_finite(phase.multiplier) {
                        return Err(ScheduleError::InvalidMultiplier {
                            multiplier: phase.multiplier,
                        });
                    }
                    if !positive_finite(phase.duration_secs) {
                        return Err(ScheduleError::InvalidDuration {
                            duration_secs: phase.duration_secs,
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// True for the homogeneous (legacy) profile.
    pub fn is_steady(&self) -> bool {
        matches!(self, ArrivalSchedule::Steady)
    }

    /// The intrinsic span of the non-steady part of the profile, in seconds:
    /// the time after which the rate is constant forever. `None` for
    /// [`ArrivalSchedule::Steady`], which has no intrinsic span.
    ///
    /// Horizon computations (e.g. the churn schedule) must cover at least
    /// this span — under a burst followed by a quiet tail, the last *arrival*
    /// can fall well before the end of the schedule.
    pub fn span_secs(&self) -> Option<f64> {
        match self {
            ArrivalSchedule::Steady => None,
            ArrivalSchedule::Ramp { duration_secs, .. } => Some(*duration_secs),
            ArrivalSchedule::Burst { start_secs, duration_secs, .. } => {
                Some(start_secs + duration_secs)
            }
            ArrivalSchedule::Phases(phases) => {
                Some(phases.iter().map(|p| p.duration_secs).sum())
            }
        }
    }

    /// The rate multiplier in force at `t_secs` (right-continuous at segment
    /// boundaries). Validated schedules return positive, finite values.
    pub fn multiplier_at(&self, t_secs: f64) -> f64 {
        match self {
            ArrivalSchedule::Steady => 1.0,
            ArrivalSchedule::Ramp { from, to, duration_secs } => {
                if t_secs >= *duration_secs {
                    *to
                } else {
                    from + (to - from) * (t_secs / duration_secs).max(0.0)
                }
            }
            ArrivalSchedule::Burst { multiplier, start_secs, duration_secs } => {
                if t_secs >= *start_secs && t_secs < start_secs + duration_secs {
                    *multiplier
                } else {
                    1.0
                }
            }
            ArrivalSchedule::Phases(phases) => {
                let mut start = 0.0;
                for phase in phases {
                    if t_secs < start + phase.duration_secs {
                        return phase.multiplier;
                    }
                    start += phase.duration_secs;
                }
                1.0
            }
        }
    }

    /// Compiles the profile into linear-rate segments plus the tail
    /// multiplier in force after the last segment. Empty for `Steady`.
    fn segments(&self) -> (Vec<Segment>, f64) {
        match self {
            ArrivalSchedule::Steady => (Vec::new(), 1.0),
            ArrivalSchedule::Ramp { from, to, duration_secs } => (
                vec![Segment {
                    start_secs: 0.0,
                    end_secs: *duration_secs,
                    multiplier_start: *from,
                    multiplier_end: *to,
                }],
                *to,
            ),
            ArrivalSchedule::Burst { multiplier, start_secs, duration_secs } => {
                let mut segments = Vec::new();
                if *start_secs > 0.0 {
                    segments.push(Segment {
                        start_secs: 0.0,
                        end_secs: *start_secs,
                        multiplier_start: 1.0,
                        multiplier_end: 1.0,
                    });
                }
                segments.push(Segment {
                    start_secs: *start_secs,
                    end_secs: start_secs + duration_secs,
                    multiplier_start: *multiplier,
                    multiplier_end: *multiplier,
                });
                (segments, 1.0)
            }
            ArrivalSchedule::Phases(phases) => {
                let mut segments = Vec::with_capacity(phases.len());
                let mut start = 0.0;
                for phase in phases {
                    segments.push(Segment {
                        start_secs: start,
                        end_secs: start + phase.duration_secs,
                        multiplier_start: phase.multiplier,
                        multiplier_end: phase.multiplier,
                    });
                    start += phase.duration_secs;
                }
                (segments, 1.0)
            }
        }
    }
}

/// One compiled schedule segment with a linearly interpolated multiplier.
#[derive(Debug, Clone, Copy)]
struct Segment {
    start_secs: f64,
    end_secs: f64,
    multiplier_start: f64,
    multiplier_end: f64,
}

impl Segment {
    /// The multiplier at `t` (which must lie inside the segment).
    fn multiplier_at(&self, t: f64) -> f64 {
        if self.multiplier_start == self.multiplier_end {
            self.multiplier_start
        } else {
            let progress = (t - self.start_secs) / (self.end_secs - self.start_secs);
            self.multiplier_start + (self.multiplier_end - self.multiplier_start) * progress
        }
    }

    /// The multiplier's slope per second.
    fn slope(&self) -> f64 {
        (self.multiplier_end - self.multiplier_start) / (self.end_secs - self.start_secs)
    }
}

/// Configuration of the arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Number of peers in the population.
    pub peers: usize,
    /// Base per-peer query rate in queries per second (paper: 0.00083).
    pub rate_per_peer: f64,
    /// Rate profile over time (default: the paper's homogeneous process).
    pub schedule: ArrivalSchedule,
    /// Optional per-cluster weighting of which peers issue queries; `None`
    /// attributes arrivals uniformly, exactly like the paper.
    pub origin_weights: Option<ClusterWeights>,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            peers: 1000,
            rate_per_peer: crate::PAPER_QUERY_RATE_PER_PEER,
            schedule: ArrivalSchedule::Steady,
            origin_weights: None,
        }
    }
}

impl ArrivalConfig {
    /// The aggregate base Poisson rate over the whole population
    /// (queries/second), before schedule modulation.
    pub fn aggregate_rate(&self) -> f64 {
        self.peers as f64 * self.rate_per_peer
    }

    /// Checks population, rate, schedule and origin weights; the first
    /// violated constraint comes back as a typed error.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        if self.peers == 0 {
            return Err(ScheduleError::NoPeers);
        }
        if !positive_finite(self.rate_per_peer) {
            return Err(ScheduleError::InvalidRate {
                rate_per_peer: self.rate_per_peer,
            });
        }
        self.schedule.validate()?;
        if let Some(weights) = &self.origin_weights {
            // A constructed ClusterWeights is well-formed by type; only the
            // population bound (clusters <= peers) is config-dependent.
            weights
                .validate_for(self.peers)
                .map_err(ScheduleError::OriginWeights)?;
        }
        Ok(())
    }
}

/// Generates (possibly non-homogeneous) Poisson query arrivals.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    config: ArrivalConfig,
    segments: Vec<Segment>,
    tail_multiplier: f64,
}

impl ArrivalProcess {
    /// Creates an arrival process, validating the configuration.
    ///
    /// Malformed configurations — no peers, a non-positive or non-finite
    /// rate, a degenerate schedule — come back as a typed [`ScheduleError`]
    /// instead of a panic, so presets and builders can surface them fallibly.
    pub fn new(config: ArrivalConfig) -> Result<Self, ScheduleError> {
        config.validate()?;
        let (segments, tail_multiplier) = config.schedule.segments();
        Ok(ArrivalProcess {
            config,
            segments,
            tail_multiplier,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &ArrivalConfig {
        &self.config
    }

    /// Generates exactly `count` arrivals starting from time zero.
    pub fn generate_count<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Arrival> {
        if count == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(count);
        self.generate(
            rng,
            |_| true,
            |arrival| {
                out.push(arrival);
                out.len() < count
            },
        );
        out
    }

    /// Generates every arrival up to `horizon`.
    pub fn generate_until<R: Rng + ?Sized>(&self, horizon: SimTime, rng: &mut R) -> Vec<Arrival> {
        let mut out = Vec::new();
        self.generate(
            rng,
            |now| now <= horizon,
            |arrival| {
                out.push(arrival);
                true
            },
        );
        out
    }

    /// The generation loop. Per arrival: draw the inter-arrival time, let
    /// `accept_time` veto it (the horizon check — **before** any origin draw,
    /// exactly like the legacy generator, which never drew a peer for the
    /// over-horizon arrival), then draw the origin and hand the arrival to
    /// `push`, which returns whether to continue. The `Steady` path is the
    /// original constant-rate loop preserved operation-for-operation so
    /// legacy schedules replay bit-identically — including the state the
    /// shared RNG stream is left in; non-steady schedules map the identical
    /// unit exponential draws through the inverse cumulative hazard of the
    /// compiled piecewise-linear rate.
    fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mut accept_time: impl FnMut(SimTime) -> bool,
        mut push: impl FnMut(Arrival) -> bool,
    ) {
        let rate = self.config.aggregate_rate();
        if self.config.schedule.is_steady() {
            let mut now = SimTime::ZERO;
            loop {
                now += Duration::from_secs_f64(exponential(rng, 1.0 / rate));
                if !accept_time(now) {
                    return;
                }
                let peer = self.sample_origin(rng);
                if !push(Arrival { at: now, peer }) {
                    return;
                }
            }
        }
        let mut t_secs = 0.0f64;
        let mut segment_index = 0usize;
        loop {
            let hazard = exponential(rng, 1.0);
            t_secs = self.invert_hazard(t_secs, hazard, rate, &mut segment_index);
            let now = SimTime::ZERO + Duration::from_secs_f64(t_secs);
            if !accept_time(now) {
                return;
            }
            let peer = self.sample_origin(rng);
            if !push(Arrival { at: now, peer }) {
                return;
            }
        }
    }

    /// Advances from `t_secs` until `hazard` units of cumulative hazard have
    /// accrued under the piecewise-linear rate `rate × multiplier(t)`.
    fn invert_hazard(
        &self,
        mut t_secs: f64,
        mut hazard: f64,
        base_rate: f64,
        segment_index: &mut usize,
    ) -> f64 {
        while *segment_index < self.segments.len() {
            let segment = self.segments[*segment_index];
            if t_secs >= segment.end_secs {
                *segment_index += 1;
                continue;
            }
            let start = t_secs.max(segment.start_secs);
            let rate_here = base_rate * segment.multiplier_at(start);
            let rate_end = base_rate * segment.multiplier_end;
            let remaining = segment.end_secs - start;
            let hazard_to_end = 0.5 * (rate_here + rate_end) * remaining;
            if hazard <= hazard_to_end {
                let slope = base_rate * segment.slope();
                let step = if slope == 0.0 {
                    hazard / rate_here
                } else {
                    // Solve rate_here·δ + slope·δ²/2 = hazard for δ ≥ 0.
                    ((rate_here * rate_here + 2.0 * slope * hazard).sqrt() - rate_here) / slope
                };
                return start + step.min(remaining);
            }
            hazard -= hazard_to_end;
            t_secs = segment.end_secs;
            *segment_index += 1;
        }
        // Past every segment: constant tail rate.
        let tail_rate = base_rate * self.tail_multiplier;
        t_secs + hazard / tail_rate
    }

    /// Draws the issuing peer: uniform (one `gen_range` draw, exactly the
    /// legacy attribution) or cluster-weighted (one uniform draw to pick the
    /// cluster, one `gen_range` within it).
    fn sample_origin<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match &self.config.origin_weights {
            None => rng.gen_range(0..self.config.peers),
            Some(weights) => {
                let cluster = weights.sample_cluster(rng);
                let range = weights.peer_range(cluster, self.config.peers);
                rng.gen_range(range)
            }
        }
    }

    /// Expected number of arrivals within `window` starting at time zero,
    /// accounting for the schedule.
    pub fn expected_count(&self, window: Duration) -> f64 {
        let base = self.config.aggregate_rate();
        let end = window.as_secs_f64();
        let mut expected = 0.0;
        let mut covered = 0.0f64;
        for segment in &self.segments {
            if covered >= end {
                return expected;
            }
            let upto = segment.end_secs.min(end);
            if upto > segment.start_secs {
                let m_start = segment.multiplier_at(segment.start_secs);
                let m_upto = segment.multiplier_at(upto);
                expected += base * 0.5 * (m_start + m_upto) * (upto - segment.start_secs);
            }
            covered = segment.end_secs;
        }
        if end > covered {
            expected += base * self.tail_multiplier * (end - covered);
        }
        expected
    }
}

/// Exponential sample with the given mean via inverse-CDF.
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn steady_config(peers: usize, rate: f64) -> ArrivalConfig {
        ArrivalConfig {
            peers,
            rate_per_peer: rate,
            ..ArrivalConfig::default()
        }
    }

    #[test]
    fn count_bounded_generation_is_monotone_and_sized() {
        let p = ArrivalProcess::new(ArrivalConfig::default()).unwrap();
        let arrivals = p.generate_count(500, &mut StdRng::seed_from_u64(1));
        assert_eq!(arrivals.len(), 500);
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at, "arrival times must be non-decreasing");
        }
        for a in &arrivals {
            assert!(a.peer < 1000);
        }
        assert!(p.generate_count(0, &mut StdRng::seed_from_u64(1)).is_empty());
    }

    #[test]
    fn aggregate_rate_matches_paper_numbers() {
        let cfg = ArrivalConfig::default();
        // 1000 peers × 0.00083 q/s = 0.83 q/s for the whole system.
        assert!((cfg.aggregate_rate() - 0.83).abs() < 1e-9);
        let p = ArrivalProcess::new(cfg).unwrap();
        assert!((p.expected_count(Duration::from_secs(1000)) - 830.0).abs() < 1e-6);
    }

    #[test]
    fn horizon_bounded_generation_respects_the_horizon() {
        let p = ArrivalProcess::new(steady_config(100, 0.01)).unwrap();
        let horizon = SimTime::from_secs(10_000);
        let arrivals = p.generate_until(horizon, &mut StdRng::seed_from_u64(2));
        assert!(!arrivals.is_empty());
        for a in &arrivals {
            assert!(a.at <= horizon);
        }
        // Expected about rate × horizon = 1 q/s × 10_000 s = 10_000 arrivals.
        let expected = p.expected_count(Duration::from_secs(10_000));
        let got = arrivals.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "got {got}, expected about {expected}"
        );
    }

    #[test]
    fn inter_arrival_mean_matches_rate() {
        let p = ArrivalProcess::new(ArrivalConfig::default()).unwrap();
        let arrivals = p.generate_count(20_000, &mut StdRng::seed_from_u64(3));
        let total = arrivals.last().unwrap().at.as_secs_f64();
        let mean_gap = total / arrivals.len() as f64;
        let expected_gap = 1.0 / p.config().aggregate_rate();
        assert!(
            (mean_gap - expected_gap).abs() < expected_gap * 0.05,
            "mean gap {mean_gap}, expected {expected_gap}"
        );
    }

    #[test]
    fn peers_are_hit_roughly_uniformly() {
        let p = ArrivalProcess::new(steady_config(10, 0.01)).unwrap();
        let arrivals = p.generate_count(10_000, &mut StdRng::seed_from_u64(4));
        let mut counts = [0usize; 10];
        for a in &arrivals {
            counts[a.peer] += 1;
        }
        for (peer, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "peer {peer} issued {c} of 10000 queries; expected ≈1000"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = ArrivalProcess::new(ArrivalConfig::default()).unwrap();
        let a = p.generate_count(100, &mut StdRng::seed_from_u64(5));
        let b = p.generate_count(100, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn non_positive_rate_is_a_typed_error_not_a_panic() {
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ArrivalProcess::new(steady_config(10, rate)).unwrap_err();
            assert!(
                matches!(err, ScheduleError::InvalidRate { .. }),
                "rate {rate}: got {err:?}"
            );
        }
        assert_eq!(
            ArrivalProcess::new(steady_config(0, 0.01)).unwrap_err(),
            ScheduleError::NoPeers
        );
    }

    #[test]
    fn degenerate_schedules_are_rejected() {
        let cases: Vec<(ArrivalSchedule, ScheduleError)> = vec![
            (
                ArrivalSchedule::Phases(Vec::new()),
                ScheduleError::EmptyPhases,
            ),
            (
                ArrivalSchedule::Phases(vec![RatePhase {
                    multiplier: 2.0,
                    duration_secs: -5.0,
                }]),
                ScheduleError::InvalidDuration { duration_secs: -5.0 },
            ),
            (
                ArrivalSchedule::Phases(vec![RatePhase {
                    multiplier: 0.0,
                    duration_secs: 5.0,
                }]),
                ScheduleError::InvalidMultiplier { multiplier: 0.0 },
            ),
            (
                ArrivalSchedule::Burst {
                    multiplier: 10.0,
                    start_secs: 60.0,
                    duration_secs: 0.0,
                },
                ScheduleError::InvalidDuration { duration_secs: 0.0 },
            ),
            (
                ArrivalSchedule::Burst {
                    multiplier: 10.0,
                    start_secs: -1.0,
                    duration_secs: 60.0,
                },
                ScheduleError::InvalidBurstStart { start_secs: -1.0 },
            ),
            (
                ArrivalSchedule::Ramp {
                    from: 1.0,
                    to: f64::NAN,
                    duration_secs: 60.0,
                },
                ScheduleError::InvalidMultiplier { multiplier: f64::NAN },
            ),
        ];
        for (schedule, expected) in cases {
            let got = schedule.validate().unwrap_err();
            // NaN payloads never compare equal; compare discriminants there.
            assert_eq!(
                std::mem::discriminant(&got),
                std::mem::discriminant(&expected),
                "{schedule:?}: got {got:?}"
            );
            let config = ArrivalConfig {
                schedule,
                ..ArrivalConfig::default()
            };
            assert!(ArrivalProcess::new(config).is_err());
        }
    }

    #[test]
    fn steady_schedule_is_bit_identical_to_the_legacy_generator() {
        // The legacy constant-rate loop, reproduced verbatim: any divergence
        // in RNG consumption or floating-point evaluation order would change
        // historical fingerprints.
        fn legacy(peers: usize, rate_per_peer: f64, count: usize, seed: u64) -> Vec<Arrival> {
            let mut rng = StdRng::seed_from_u64(seed);
            let rate = peers as f64 * rate_per_peer;
            let mut now = SimTime::ZERO;
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                now += Duration::from_secs_f64(exponential(&mut rng, 1.0 / rate));
                out.push(Arrival {
                    at: now,
                    peer: rng.gen_range(0..peers),
                });
            }
            out
        }
        for (peers, rate, seed) in [(1000, 0.00083, 7u64), (60, 0.013, 11), (3, 2.0, 99)] {
            let p = ArrivalProcess::new(steady_config(peers, rate)).unwrap();
            let modern = p.generate_count(400, &mut StdRng::seed_from_u64(seed));
            assert_eq!(modern, legacy(peers, rate, 400, seed));
        }
    }

    #[test]
    fn steady_generate_until_leaves_the_rng_stream_where_legacy_did() {
        // Legacy generate_until never drew an origin for the arrival that
        // overshot the horizon; the modern loop must not either, so a caller
        // reusing the stream afterwards sees identical subsequent draws.
        fn legacy_until(peers: usize, rate_per_peer: f64, horizon: SimTime, seed: u64) -> (Vec<Arrival>, u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rate = peers as f64 * rate_per_peer;
            let mut now = SimTime::ZERO;
            let mut out = Vec::new();
            loop {
                now += Duration::from_secs_f64(exponential(&mut rng, 1.0 / rate));
                if now > horizon {
                    break;
                }
                out.push(Arrival {
                    at: now,
                    peer: rng.gen_range(0..peers),
                });
            }
            (out, rng.gen::<u64>())
        }
        let p = ArrivalProcess::new(steady_config(50, 0.02)).unwrap();
        let horizon = SimTime::from_secs(500);
        let mut rng = StdRng::seed_from_u64(31);
        let modern = p.generate_until(horizon, &mut rng);
        let modern_next = rng.gen::<u64>();
        let (expected, expected_next) = legacy_until(50, 0.02, horizon, 31);
        assert_eq!(modern, expected);
        assert_eq!(modern_next, expected_next, "the stream must not shift");
    }

    #[test]
    fn burst_concentrates_arrivals_inside_the_window() {
        let config = ArrivalConfig {
            peers: 100,
            rate_per_peer: 0.001,
            schedule: ArrivalSchedule::Burst {
                multiplier: 50.0,
                start_secs: 1000.0,
                duration_secs: 2000.0,
            },
            origin_weights: None,
        };
        let p = ArrivalProcess::new(config).unwrap();
        let arrivals = p.generate_count(2000, &mut StdRng::seed_from_u64(6));
        let inside = arrivals
            .iter()
            .filter(|a| {
                let t = a.at.as_secs_f64();
                (1000.0..3000.0).contains(&t)
            })
            .count();
        // Base rate 0.1 q/s: the 1000 s lead-in yields ~100 arrivals, the
        // 2000 s burst at 5 q/s yields ~10 000, so the 2000-query run sits
        // almost entirely inside the window.
        assert!(
            inside as f64 > arrivals.len() as f64 * 0.9,
            "only {inside} of {} arrivals fell inside the burst window",
            arrivals.len()
        );
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at, "burst arrivals must stay time-sorted");
        }
    }

    #[test]
    fn phases_hit_their_expected_per_phase_counts() {
        let config = ArrivalConfig {
            peers: 100,
            rate_per_peer: 0.01, // base 1 q/s
            schedule: ArrivalSchedule::Phases(vec![
                RatePhase { multiplier: 1.0, duration_secs: 1000.0 },
                RatePhase { multiplier: 10.0, duration_secs: 1000.0 },
                RatePhase { multiplier: 0.5, duration_secs: 1000.0 },
            ]),
            origin_weights: None,
        };
        let p = ArrivalProcess::new(config).unwrap();
        let horizon = SimTime::from_secs(3000);
        let arrivals = p.generate_until(horizon, &mut StdRng::seed_from_u64(8));
        let mut counts = [0usize; 3];
        for a in &arrivals {
            counts[(a.at.as_secs_f64() / 1000.0).min(2.0) as usize] += 1;
        }
        // Expected 1000 / 10000 / 500 per phase; allow generous Poisson noise.
        assert!((800..1200).contains(&counts[0]), "phase 0: {}", counts[0]);
        assert!((9300..10700).contains(&counts[1]), "phase 1: {}", counts[1]);
        assert!((350..650).contains(&counts[2]), "phase 2: {}", counts[2]);
        let expected = p.expected_count(Duration::from_secs(3000));
        assert!((expected - 11_500.0).abs() < 1e-6, "expected_count: {expected}");
    }

    #[test]
    fn ramp_rate_rises_over_the_ramp() {
        let schedule = ArrivalSchedule::Ramp {
            from: 1.0,
            to: 9.0,
            duration_secs: 1000.0,
        };
        assert_eq!(schedule.multiplier_at(0.0), 1.0);
        assert!((schedule.multiplier_at(500.0) - 5.0).abs() < 1e-12);
        assert_eq!(schedule.multiplier_at(2000.0), 9.0);

        let config = ArrivalConfig {
            peers: 100,
            rate_per_peer: 0.01,
            schedule,
            origin_weights: None,
        };
        let p = ArrivalProcess::new(config).unwrap();
        let arrivals = p.generate_until(SimTime::from_secs(1000), &mut StdRng::seed_from_u64(9));
        let (first_half, second_half): (Vec<&Arrival>, Vec<&Arrival>) = arrivals
            .iter()
            .partition(|a| a.at.as_secs_f64() < 500.0);
        assert!(
            second_half.len() > first_half.len() * 2,
            "the back half of the ramp must be denser: {} vs {}",
            second_half.len(),
            first_half.len()
        );
        // ∫ from 0 to 1000 of (1 + 8t/1000) dt = 5000 expected arrivals.
        let expected = p.expected_count(Duration::from_secs(1000));
        assert!((expected - 5000.0).abs() < 1e-6, "{expected}");
    }

    #[test]
    fn schedule_spans_cover_trailing_quiet_phases() {
        assert_eq!(ArrivalSchedule::Steady.span_secs(), None);
        assert_eq!(
            ArrivalSchedule::Burst {
                multiplier: 25.0,
                start_secs: 600.0,
                duration_secs: 1800.0
            }
            .span_secs(),
            Some(2400.0)
        );
        assert_eq!(
            ArrivalSchedule::Ramp { from: 1.0, to: 2.0, duration_secs: 300.0 }.span_secs(),
            Some(300.0)
        );
        assert_eq!(
            ArrivalSchedule::Phases(vec![
                RatePhase { multiplier: 5.0, duration_secs: 100.0 },
                RatePhase { multiplier: 0.1, duration_secs: 900.0 },
            ])
            .span_secs(),
            Some(1000.0)
        );
    }

    #[test]
    fn weighted_origins_concentrate_attribution() {
        let weights = ClusterWeights::new(vec![8.0, 1.0, 1.0]).unwrap();
        let config = ArrivalConfig {
            peers: 90,
            rate_per_peer: 0.01,
            schedule: ArrivalSchedule::Steady,
            origin_weights: Some(weights),
        };
        let p = ArrivalProcess::new(config).unwrap();
        let arrivals = p.generate_count(10_000, &mut StdRng::seed_from_u64(10));
        let hot = arrivals.iter().filter(|a| a.peer < 30).count();
        let share = hot as f64 / arrivals.len() as f64;
        assert!(
            (0.75..0.85).contains(&share),
            "hot cluster should issue ~80% of queries, got {share}"
        );
        for a in &arrivals {
            assert!(a.peer < 90);
        }
        // Weighted attribution stays deterministic per seed.
        let again = p.generate_count(10_000, &mut StdRng::seed_from_u64(10));
        assert_eq!(arrivals, again);
    }
}
