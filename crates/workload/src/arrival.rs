//! Query arrival process.
//!
//! §5.1 fixes the arrival rate at *0.00083 queries per second per peer*. The
//! aggregate process over `N` peers is Poisson with rate `N × 0.00083`; each
//! arrival is attributed to a uniformly random peer. [`ArrivalProcess`]
//! generates the `(time, peer)` sequence either up to a horizon or up to a
//! fixed number of queries (the figures sweep the *number of queries*, so the
//! count-bounded form is what the experiment harness uses).

use locaware_sim::{Duration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One query arrival: when and at which peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// The time the query is issued.
    pub at: SimTime,
    /// The peer issuing it (index into the peer population).
    pub peer: usize,
}

/// Configuration of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Number of peers in the population.
    pub peers: usize,
    /// Per-peer query rate in queries per second (paper: 0.00083).
    pub rate_per_peer: f64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            peers: 1000,
            rate_per_peer: crate::PAPER_QUERY_RATE_PER_PEER,
        }
    }
}

impl ArrivalConfig {
    /// The aggregate Poisson rate over the whole population (queries/second).
    pub fn aggregate_rate(&self) -> f64 {
        self.peers as f64 * self.rate_per_peer
    }
}

/// Generates Poisson query arrivals.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    config: ArrivalConfig,
}

impl ArrivalProcess {
    /// Creates an arrival process.
    ///
    /// # Panics
    /// Panics if the configuration has no peers or a non-positive rate.
    pub fn new(config: ArrivalConfig) -> Self {
        assert!(config.peers > 0, "arrival process needs at least one peer");
        assert!(
            config.rate_per_peer > 0.0 && config.rate_per_peer.is_finite(),
            "per-peer rate must be positive and finite"
        );
        ArrivalProcess { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ArrivalConfig {
        &self.config
    }

    /// Generates exactly `count` arrivals starting from time zero.
    pub fn generate_count<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Arrival> {
        let rate = self.config.aggregate_rate();
        let mut now = SimTime::ZERO;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            now += Duration::from_secs_f64(exponential(rng, 1.0 / rate));
            out.push(Arrival {
                at: now,
                peer: rng.gen_range(0..self.config.peers),
            });
        }
        out
    }

    /// Generates every arrival up to `horizon`.
    pub fn generate_until<R: Rng + ?Sized>(&self, horizon: SimTime, rng: &mut R) -> Vec<Arrival> {
        let rate = self.config.aggregate_rate();
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        loop {
            now += Duration::from_secs_f64(exponential(rng, 1.0 / rate));
            if now > horizon {
                break;
            }
            out.push(Arrival {
                at: now,
                peer: rng.gen_range(0..self.config.peers),
            });
        }
        out
    }

    /// Expected number of arrivals within `window`.
    pub fn expected_count(&self, window: Duration) -> f64 {
        self.config.aggregate_rate() * window.as_secs_f64()
    }
}

/// Exponential sample with the given mean via inverse-CDF.
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn count_bounded_generation_is_monotone_and_sized() {
        let p = ArrivalProcess::new(ArrivalConfig::default());
        let arrivals = p.generate_count(500, &mut StdRng::seed_from_u64(1));
        assert_eq!(arrivals.len(), 500);
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at, "arrival times must be non-decreasing");
        }
        for a in &arrivals {
            assert!(a.peer < 1000);
        }
    }

    #[test]
    fn aggregate_rate_matches_paper_numbers() {
        let cfg = ArrivalConfig::default();
        // 1000 peers × 0.00083 q/s = 0.83 q/s for the whole system.
        assert!((cfg.aggregate_rate() - 0.83).abs() < 1e-9);
        let p = ArrivalProcess::new(cfg);
        assert!((p.expected_count(Duration::from_secs(1000)) - 830.0).abs() < 1e-6);
    }

    #[test]
    fn horizon_bounded_generation_respects_the_horizon() {
        let p = ArrivalProcess::new(ArrivalConfig {
            peers: 100,
            rate_per_peer: 0.01,
        });
        let horizon = SimTime::from_secs(10_000);
        let arrivals = p.generate_until(horizon, &mut StdRng::seed_from_u64(2));
        assert!(!arrivals.is_empty());
        for a in &arrivals {
            assert!(a.at <= horizon);
        }
        // Expected about rate × horizon = 1 q/s × 10_000 s = 10_000 arrivals.
        let expected = p.expected_count(Duration::from_secs(10_000));
        let got = arrivals.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "got {got}, expected about {expected}"
        );
    }

    #[test]
    fn inter_arrival_mean_matches_rate() {
        let p = ArrivalProcess::new(ArrivalConfig::default());
        let arrivals = p.generate_count(20_000, &mut StdRng::seed_from_u64(3));
        let total = arrivals.last().unwrap().at.as_secs_f64();
        let mean_gap = total / arrivals.len() as f64;
        let expected_gap = 1.0 / p.config().aggregate_rate();
        assert!(
            (mean_gap - expected_gap).abs() < expected_gap * 0.05,
            "mean gap {mean_gap}, expected {expected_gap}"
        );
    }

    #[test]
    fn peers_are_hit_roughly_uniformly() {
        let p = ArrivalProcess::new(ArrivalConfig {
            peers: 10,
            rate_per_peer: 0.01,
        });
        let arrivals = p.generate_count(10_000, &mut StdRng::seed_from_u64(4));
        let mut counts = [0usize; 10];
        for a in &arrivals {
            counts[a.peer] += 1;
        }
        for (peer, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "peer {peer} issued {c} of 10000 queries; expected ≈1000"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = ArrivalProcess::new(ArrivalConfig::default());
        let a = p.generate_count(100, &mut StdRng::seed_from_u64(5));
        let b = p.generate_count(100, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_rate_is_rejected() {
        let _ = ArrivalProcess::new(ArrivalConfig {
            peers: 10,
            rate_per_peer: 0.0,
        });
    }
}
