//! # locaware-workload — workload generation for the Locaware evaluation
//!
//! §5.1 of the paper fixes the workload precisely:
//!
//! * *"each peer initially shares 3 files, randomly chosen from a pool of
//!   3000"*,
//! * *"each filename is formed of 3 keywords, randomly chosen from a pool of
//!   9000"*,
//! * *"Queries are generated according to Zipf distribution, at the rate of
//!   0.00083 queries per second per peer"*,
//! * *"To express each query, we randomly choose 1 to 3 keywords from the
//!   queried filename"*.
//!
//! This crate builds all of that, deterministically:
//!
//! * [`keywords`] — the keyword pool (synthetic pseudo-words; ids are what the
//!   protocols hash, the strings exist for realistic Bloom-filter behaviour and
//!   readable examples),
//! * [`catalog`] — the file catalog: 3000 filenames of 3 keywords each, plus
//!   the inverted index used as ground truth for "which files satisfy query q",
//! * [`zipf`] — a Zipf(α) sampler over file popularity ranks (implemented
//!   in-crate; `rand_distr` is outside the allowed dependency set),
//! * [`placement`] — the initial assignment of shared files to peers, with
//!   optional weighted-cluster concentration ([`ClusterWeights`]),
//! * [`queries`] — query generation: Zipf-chosen target file, 1–3 of its
//!   keywords,
//! * [`arrival`] — the Poisson arrival process at 0.00083 queries/s/peer,
//!   modulated by a validated piecewise [`ArrivalSchedule`] (steady, ramp,
//!   burst, or composed phases) for non-homogeneous regimes,
//! * [`faults`] — the fault plan: per-message loss, transient link outages,
//!   crash-stop departures, and typed timeout/retry policies
//!   ([`FaultConfig`], [`TimeoutPolicy`]) making failure a first-class,
//!   validated workload dimension.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod catalog;
pub mod faults;
pub mod keywords;
pub mod placement;
pub mod queries;
pub mod zipf;

pub use arrival::{Arrival, ArrivalConfig, ArrivalProcess, ArrivalSchedule, RatePhase, ScheduleError};
pub use catalog::{Catalog, CatalogConfig, FileId, Filename};
pub use faults::{FaultConfig, FaultConfigError, OutageWindow, TimeoutPolicy, TimeoutPolicyError};
pub use keywords::{KeywordHashes, KeywordId, KeywordPool};
pub use placement::{ClusterWeights, ClusterWeightsError, InitialPlacement, PlacementConfig};
pub use queries::{Query, QueryGenerator, QueryWorkloadConfig};
pub use zipf::ZipfDistribution;

/// Paper default: number of distinct files in the system (§5.1).
pub const PAPER_FILE_POOL: usize = 3000;
/// Paper default: number of distinct keywords (§5.1).
pub const PAPER_KEYWORD_POOL: usize = 9000;
/// Paper default: keywords per filename (§5.1).
pub const PAPER_KEYWORDS_PER_FILE: usize = 3;
/// Paper default: files initially shared by each peer (§5.1).
pub const PAPER_FILES_PER_PEER: usize = 3;
/// Paper default: per-peer query rate in queries per second (§5.1).
pub const PAPER_QUERY_RATE_PER_PEER: f64 = 0.00083;
