//! Query generation.
//!
//! §5.1: queries target files drawn from a Zipf popularity distribution; each
//! query is expressed with *"1 to 3 keywords from the queried filename"*. §3.3
//! formalises it: `q = {kw_i ∈ f}` with `1 ≤ X ≤ K` keywords.
//!
//! [`QueryGenerator`] draws the target file (Zipf over a random popularity
//! permutation of the catalog — the popular files should not accidentally be
//! the low-numbered ids everywhere), picks how many keywords to use, and which.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::catalog::{Catalog, FileId};
use crate::keywords::KeywordId;
use crate::zipf::ZipfDistribution;

/// A generated query: the keywords actually sent, plus the ground-truth target
/// used only by the metrics (never by the protocols, except Dicas' filename
/// search, which the paper defines as searching for the exact filename).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// The file whose filename the keywords were drawn from.
    pub target: FileId,
    /// The query keywords (a non-empty subset of the target filename's keywords).
    pub keywords: Vec<KeywordId>,
}

impl Query {
    /// Number of keywords in the query (the paper's `X`).
    pub fn keyword_count(&self) -> usize {
        self.keywords.len()
    }
}

/// Configuration of query generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkloadConfig {
    /// Zipf exponent of file popularity (≈1 for Gnutella-like traces).
    pub zipf_exponent: f64,
    /// Minimum number of keywords per query (paper: 1).
    pub min_keywords: usize,
    /// Maximum number of keywords per query (paper: 3, the filename length).
    pub max_keywords: usize,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            zipf_exponent: 1.0,
            min_keywords: 1,
            max_keywords: crate::PAPER_KEYWORDS_PER_FILE,
        }
    }
}

/// Generates queries over a catalog.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    config: QueryWorkloadConfig,
    zipf: ZipfDistribution,
    /// Maps popularity rank → file id, so popularity is decoupled from id order.
    rank_to_file: Vec<FileId>,
    /// The inverse permutation: file id index → popularity rank.
    rank_of_file: Vec<usize>,
}

impl QueryGenerator {
    /// Creates a generator for `catalog`.
    ///
    /// The popularity permutation is drawn from `rng` once at construction;
    /// subsequent [`Self::generate`] calls only consume randomness for the
    /// per-query decisions.
    ///
    /// # Panics
    /// Panics if the keyword bounds are inconsistent (`min > max` or `min == 0`).
    pub fn new<R: Rng + ?Sized>(catalog: &Catalog, config: QueryWorkloadConfig, rng: &mut R) -> Self {
        assert!(
            config.min_keywords >= 1 && config.min_keywords <= config.max_keywords,
            "keyword count bounds must satisfy 1 <= min <= max"
        );
        let zipf = ZipfDistribution::new(catalog.len(), config.zipf_exponent);
        let mut rank_to_file: Vec<FileId> = catalog.files().collect();
        rank_to_file.shuffle(rng);
        let mut rank_of_file = vec![0usize; rank_to_file.len()];
        for (rank, file) in rank_to_file.iter().enumerate() {
            rank_of_file[file.index()] = rank;
        }
        QueryGenerator {
            config,
            zipf,
            rank_to_file,
            rank_of_file,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &QueryWorkloadConfig {
        &self.config
    }

    /// The file occupying popularity rank `rank` (0 = most popular).
    pub fn file_at_rank(&self, rank: usize) -> FileId {
        self.rank_to_file[rank]
    }

    /// The popularity rank of `file` (0 = most popular) — the inverse of
    /// [`Self::file_at_rank`]. The hybrid structured protocol keys its
    /// head/tail split on this.
    pub fn rank_of(&self, file: FileId) -> usize {
        self.rank_of_file[file.index()]
    }

    /// Generates one query against `catalog`.
    pub fn generate<R: Rng + ?Sized>(&self, catalog: &Catalog, rng: &mut R) -> Query {
        let rank = self.zipf.sample(rng);
        self.generate_for_target(catalog, self.rank_to_file[rank], rng)
    }

    /// Generates a query for a caller-chosen target file (keyword selection
    /// still randomised).
    ///
    /// The simulation engine uses this as the deterministic fallback when the
    /// Zipf draw keeps landing on files the requestor already stores: peers
    /// only search for files they lack, which is what keeps the
    /// one-download-one-replica accounting exact.
    pub fn generate_for_target<R: Rng + ?Sized>(
        &self,
        catalog: &Catalog,
        target: FileId,
        rng: &mut R,
    ) -> Query {
        let filename = catalog.filename(target);
        let max = self.config.max_keywords.min(filename.len());
        let min = self.config.min_keywords.min(max);
        let count = if min == max {
            min
        } else {
            rng.gen_range(min..=max)
        };
        let mut keywords: Vec<KeywordId> = filename
            .keywords()
            .choose_multiple(rng, count)
            .copied()
            .collect();
        keywords.sort_unstable();
        Query { target, keywords }
    }

    /// Generates a batch of `n` queries.
    pub fn generate_batch<R: Rng + ?Sized>(
        &self,
        catalog: &Catalog,
        n: usize,
        rng: &mut R,
    ) -> Vec<Query> {
        (0..n).map(|_| self.generate(catalog, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn setup() -> (Catalog, QueryGenerator) {
        let mut rng = StdRng::seed_from_u64(1);
        let catalog = Catalog::generate(
            CatalogConfig {
                files: 300,
                keywords: 900,
                keywords_per_file: 3,
            },
            &mut rng,
        );
        let generator = QueryGenerator::new(&catalog, QueryWorkloadConfig::default(), &mut rng);
        (catalog, generator)
    }

    #[test]
    fn queries_use_keywords_of_their_target() {
        let (catalog, generator) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let q = generator.generate(&catalog, &mut rng);
            let filename = catalog.filename(q.target);
            assert!(
                (1..=3).contains(&q.keyword_count()),
                "keyword count out of the paper's 1..=3 range"
            );
            for kw in &q.keywords {
                assert!(
                    filename.keywords().contains(kw),
                    "query keyword {kw:?} not in target filename"
                );
            }
            // The target must, by construction, satisfy its own query.
            assert!(catalog.file_matches(q.target, &q.keywords));
        }
    }

    #[test]
    fn keyword_counts_span_the_full_range() {
        let (catalog, generator) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [0usize; 4];
        for _ in 0..1000 {
            let q = generator.generate(&catalog, &mut rng);
            seen[q.keyword_count()] += 1;
        }
        assert!(seen[1] > 0 && seen[2] > 0 && seen[3] > 0, "counts {seen:?}");
    }

    #[test]
    fn popularity_is_skewed_towards_few_files() {
        let (catalog, generator) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts: HashMap<FileId, usize> = HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            let q = generator.generate(&catalog, &mut rng);
            *counts.entry(q.target).or_default() += 1;
        }
        let mut by_count: Vec<usize> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top30: usize = by_count.iter().take(30).sum();
        assert!(
            top30 as f64 / n as f64 > 0.5,
            "top-10% files should draw most queries (got {})",
            top30 as f64 / n as f64
        );
        // And the most popular file should match the generator's rank-0 file.
        let most_queried = counts.iter().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(*most_queried, generator.file_at_rank(0));
    }

    #[test]
    fn rank_of_inverts_file_at_rank() {
        let (catalog, generator) = setup();
        for rank in 0..catalog.len() {
            assert_eq!(generator.rank_of(generator.file_at_rank(rank)), rank);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (catalog, generator) = setup();
        let a = generator.generate_batch(&catalog, 50, &mut StdRng::seed_from_u64(9));
        let b = generator.generate_batch(&catalog, 50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_keyword_count_configuration() {
        let mut rng = StdRng::seed_from_u64(5);
        let catalog = Catalog::generate(
            CatalogConfig {
                files: 50,
                keywords: 200,
                keywords_per_file: 3,
            },
            &mut rng,
        );
        let generator = QueryGenerator::new(
            &catalog,
            QueryWorkloadConfig {
                min_keywords: 3,
                max_keywords: 3,
                ..QueryWorkloadConfig::default()
            },
            &mut rng,
        );
        for _ in 0..100 {
            assert_eq!(generator.generate(&catalog, &mut rng).keyword_count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn inconsistent_keyword_bounds_are_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let catalog = Catalog::generate(
            CatalogConfig {
                files: 10,
                keywords: 30,
                keywords_per_file: 3,
            },
            &mut rng,
        );
        let _ = QueryGenerator::new(
            &catalog,
            QueryWorkloadConfig {
                min_keywords: 0,
                max_keywords: 3,
                ..QueryWorkloadConfig::default()
            },
            &mut rng,
        );
    }
}
