//! Fault-injection specification: message loss, link outages, crash-stop
//! departures, and the timeout/retry policies protocols use to survive them.
//!
//! The paper's evaluation (and every prior run of this reproduction) assumes
//! a perfectly reliable network: no message is ever dropped and peers only
//! leave gracefully at churn barriers. [`FaultConfig`] makes failure a
//! *workload dimension*: a validated, serialisable plan the engine threads
//! from configuration to tallies, with the same determinism contract as every
//! other knob — the same seed and plan produce bit-identical reports for
//! every shard count, and the disabled plan reproduces fault-free runs
//! byte-for-byte.
//!
//! The types here are pure *specification*; the engine derives the actual
//! per-message loss coins and outage membership from the
//! `StreamId::Faults` stream so fault patterns are independent of topology,
//! workload and protocol randomness.

use serde::{Deserialize, Serialize};

use locaware_sim::Duration;

/// A typed retransmit policy: how long to wait for a query to produce a
/// response, how the wait grows, and how many times to retry.
///
/// `initial_secs == 0` disables the policy (no timeout events are ever
/// scheduled, which is the default and keeps fault-free runs byte-identical).
/// When enabled, attempt `n` (0-based) times out after
/// `initial_secs * backoff.powi(n)` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeoutPolicy {
    /// Timeout of the first attempt, in seconds of simulated time.
    /// `0` disables timeouts entirely.
    pub initial_secs: f64,
    /// Multiplicative backoff factor applied per retry (`>= 1`).
    pub backoff: f64,
    /// Maximum number of retransmits after the initial attempt.
    pub max_retries: u32,
}

impl TimeoutPolicy {
    /// The disabled policy: no timeouts, no retries.
    pub fn disabled() -> Self {
        TimeoutPolicy {
            initial_secs: 0.0,
            backoff: 1.0,
            max_retries: 0,
        }
    }

    /// True when the policy schedules timeout events at all.
    pub fn is_enabled(&self) -> bool {
        self.initial_secs > 0.0
    }

    /// The timeout of 0-based attempt `attempt`, in seconds.
    pub fn delay_secs(&self, attempt: u32) -> f64 {
        self.initial_secs * self.backoff.powi(attempt.min(i32::MAX as u32) as i32)
    }

    /// Validates the policy; returns the first violated constraint.
    pub fn validate(&self) -> Result<(), TimeoutPolicyError> {
        if self.initial_secs < 0.0 || !self.initial_secs.is_finite() {
            return Err(TimeoutPolicyError::InvalidInitial {
                initial_secs: self.initial_secs,
            });
        }
        if !self.backoff.is_finite() || (self.is_enabled() && self.backoff < 1.0) {
            return Err(TimeoutPolicyError::InvalidBackoff { backoff: self.backoff });
        }
        if self.is_enabled() {
            // Worst-case cumulative wait across every attempt must fit the
            // microsecond simulation clock; engine time arithmetic saturates
            // silently past it.
            let worst_delay = self.delay_secs(self.max_retries);
            let span_secs = worst_delay * (self.max_retries as f64 + 1.0);
            if Duration::try_from_millis_f64(span_secs * 1000.0).is_none() {
                return Err(TimeoutPolicyError::SpanOverflow { span_secs });
            }
        }
        Ok(())
    }
}

impl Default for TimeoutPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Why a [`TimeoutPolicy`] is unusable.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimeoutPolicyError {
    /// The initial timeout is negative or not finite.
    InvalidInitial {
        /// The offending initial timeout in seconds.
        initial_secs: f64,
    },
    /// The backoff factor is not finite, or below 1 while the policy is
    /// enabled.
    InvalidBackoff {
        /// The offending backoff factor.
        backoff: f64,
    },
    /// The worst-case cumulative retry span does not fit the microsecond
    /// simulation clock.
    SpanOverflow {
        /// The unrepresentable span in seconds.
        span_secs: f64,
    },
}

impl std::fmt::Display for TimeoutPolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeoutPolicyError::InvalidInitial { initial_secs } => write!(
                f,
                "initial timeout must be non-negative and finite: got {initial_secs}s"
            ),
            TimeoutPolicyError::InvalidBackoff { backoff } => write!(
                f,
                "backoff factor must be finite and at least 1: got {backoff}"
            ),
            TimeoutPolicyError::SpanOverflow { span_secs } => write!(
                f,
                "worst-case retry span {span_secs}s overflows the microsecond simulation clock"
            ),
        }
    }
}

impl std::error::Error for TimeoutPolicyError {}

/// A transient link-degradation window: between `start_secs` and
/// `start_secs + duration_secs`, a deterministic `fraction` of overlay links
/// drop every message sent across them (a partial partition).
///
/// Which links participate is a pure hash of the fault seed and the link's
/// endpoint pair, so the affected set is fixed per run and identical for
/// every shard count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Window start, in seconds of simulated time.
    pub start_secs: f64,
    /// Window length in seconds (must be positive).
    pub duration_secs: f64,
    /// Fraction of links affected, in `[0, 1]` (`1` is a full blackout).
    pub fraction: f64,
}

impl OutageWindow {
    /// Window end in seconds.
    pub fn end_secs(&self) -> f64 {
        self.start_secs + self.duration_secs
    }
}

/// The complete fault plan of a run: what breaks, and how protocols are
/// allowed to cope.
///
/// [`FaultConfig::disabled`] (the default) injects nothing and schedules
/// nothing — runs under it are byte-identical to runs that predate fault
/// injection, which is what pins the golden fingerprints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Independent per-message loss probability in `[0, 1]`. Applies to every
    /// overlay message (queries, responses, DHT traffic, Bloom sync alike):
    /// the coin is a pure hash of the fault seed and the message identity.
    pub message_loss: f64,
    /// Transient link-outage windows (may overlap; a message is lost if any
    /// active window covers its link).
    pub outages: Vec<OutageWindow>,
    /// When true, churn departures are *crash-stop*: the peer vanishes
    /// without telling neighbours or the DHT, and its in-flight messages are
    /// consumed as lost. The default (false) keeps the graceful departure
    /// every prior run used.
    pub crash_stop: bool,
    /// Retransmit policy for unstructured queries: when an origin's query
    /// has produced no response by the deadline, the query is re-flooded
    /// (with full TTL) as a new attempt, up to `max_retries` times.
    pub query_timeout: TimeoutPolicy,
    /// Per-step timeout for iterative DHT lookups, in seconds. When a lookup
    /// step gets no reply by the deadline, the stalled slot is released and
    /// the lookup re-issues against the next shortlist candidate. `0`
    /// disables step timeouts (lost steps then simply conclude the lookup
    /// early, as before).
    pub dht_step_timeout_secs: f64,
}

impl FaultConfig {
    /// The fault-free plan: no loss, no outages, graceful churn, no timeouts.
    pub fn disabled() -> Self {
        FaultConfig {
            message_loss: 0.0,
            outages: Vec::new(),
            crash_stop: false,
            query_timeout: TimeoutPolicy::disabled(),
            dht_step_timeout_secs: 0.0,
        }
    }

    /// True when the plan injects nothing and arms nothing — the engine then
    /// skips fault bookkeeping entirely and reproduces fault-free runs
    /// byte-for-byte.
    pub fn is_disabled(&self) -> bool {
        self.message_loss == 0.0
            && self.outages.is_empty()
            && !self.crash_stop
            && !self.query_timeout.is_enabled()
            && self.dht_step_timeout_secs == 0.0
    }

    /// Validates every fault axis except the retransmit policy (validated
    /// separately via [`TimeoutPolicy::validate`] so configuration errors
    /// stay precisely typed); returns the first violated constraint.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if !(0.0..=1.0).contains(&self.message_loss) || !self.message_loss.is_finite() {
            return Err(FaultConfigError::InvalidLossProbability {
                probability: self.message_loss,
            });
        }
        for window in &self.outages {
            if window.start_secs < 0.0 || !window.start_secs.is_finite() {
                return Err(FaultConfigError::InvalidOutageStart {
                    start_secs: window.start_secs,
                });
            }
            if window.duration_secs <= 0.0 || !window.duration_secs.is_finite() {
                return Err(FaultConfigError::InvalidOutageDuration {
                    duration_secs: window.duration_secs,
                });
            }
            if !(0.0..=1.0).contains(&window.fraction) || !window.fraction.is_finite() {
                return Err(FaultConfigError::InvalidOutageFraction {
                    fraction: window.fraction,
                });
            }
            if Duration::try_from_millis_f64(window.end_secs() * 1000.0).is_none() {
                return Err(FaultConfigError::OutageBeyondClock {
                    end_secs: window.end_secs(),
                });
            }
        }
        if self.dht_step_timeout_secs < 0.0 || !self.dht_step_timeout_secs.is_finite() {
            return Err(FaultConfigError::InvalidStepTimeout {
                timeout_secs: self.dht_step_timeout_secs,
            });
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Why a [`FaultConfig`] is unusable.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultConfigError {
    /// The message loss probability is outside `[0, 1]`.
    InvalidLossProbability {
        /// The offending probability.
        probability: f64,
    },
    /// An outage window starts at a negative or non-finite time.
    InvalidOutageStart {
        /// The offending start time in seconds.
        start_secs: f64,
    },
    /// An outage window has a non-positive or non-finite duration.
    InvalidOutageDuration {
        /// The offending duration in seconds.
        duration_secs: f64,
    },
    /// An outage window's link fraction is outside `[0, 1]`.
    InvalidOutageFraction {
        /// The offending fraction.
        fraction: f64,
    },
    /// An outage window extends past the representable simulation clock.
    OutageBeyondClock {
        /// The unrepresentable window end in seconds.
        end_secs: f64,
    },
    /// The DHT step timeout is negative or not finite.
    InvalidStepTimeout {
        /// The offending timeout in seconds.
        timeout_secs: f64,
    },
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::InvalidLossProbability { probability } => write!(
                f,
                "message loss probability must be in [0, 1]: got {probability}"
            ),
            FaultConfigError::InvalidOutageStart { start_secs } => write!(
                f,
                "outage start must be non-negative and finite: got {start_secs}s"
            ),
            FaultConfigError::InvalidOutageDuration { duration_secs } => write!(
                f,
                "outage duration must be positive and finite: got {duration_secs}s"
            ),
            FaultConfigError::InvalidOutageFraction { fraction } => write!(
                f,
                "outage link fraction must be in [0, 1]: got {fraction}"
            ),
            FaultConfigError::OutageBeyondClock { end_secs } => write!(
                f,
                "outage window ends at {end_secs}s, past the representable simulation clock"
            ),
            FaultConfigError::InvalidStepTimeout { timeout_secs } => write!(
                f,
                "DHT step timeout must be non-negative and finite: got {timeout_secs}s"
            ),
        }
    }
}

impl std::error::Error for FaultConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_disabled_and_valid() {
        let plan = FaultConfig::disabled();
        assert!(plan.is_disabled());
        assert!(plan.validate().is_ok());
        assert!(plan.query_timeout.validate().is_ok());
        assert_eq!(plan, FaultConfig::default());
    }

    #[test]
    fn any_armed_axis_enables_the_plan() {
        let mut plan = FaultConfig::disabled();
        plan.message_loss = 0.05;
        assert!(!plan.is_disabled());

        let mut plan = FaultConfig::disabled();
        plan.outages.push(OutageWindow {
            start_secs: 10.0,
            duration_secs: 5.0,
            fraction: 0.5,
        });
        assert!(!plan.is_disabled());

        let mut plan = FaultConfig::disabled();
        plan.crash_stop = true;
        assert!(!plan.is_disabled());

        let mut plan = FaultConfig::disabled();
        plan.query_timeout = TimeoutPolicy {
            initial_secs: 5.0,
            backoff: 2.0,
            max_retries: 2,
        };
        assert!(!plan.is_disabled());

        let mut plan = FaultConfig::disabled();
        plan.dht_step_timeout_secs = 2.0;
        assert!(!plan.is_disabled());
    }

    #[test]
    fn timeout_policy_delays_follow_the_backoff() {
        let policy = TimeoutPolicy {
            initial_secs: 4.0,
            backoff: 2.0,
            max_retries: 3,
        };
        assert!(policy.is_enabled());
        assert_eq!(policy.delay_secs(0), 4.0);
        assert_eq!(policy.delay_secs(1), 8.0);
        assert_eq!(policy.delay_secs(2), 16.0);
        assert!(!TimeoutPolicy::disabled().is_enabled());
    }

    #[test]
    fn timeout_policy_rejections_are_typed() {
        let bad = TimeoutPolicy {
            initial_secs: -1.0,
            ..TimeoutPolicy::disabled()
        };
        assert!(matches!(
            bad.validate(),
            Err(TimeoutPolicyError::InvalidInitial { .. })
        ));

        let bad = TimeoutPolicy {
            initial_secs: 5.0,
            backoff: 0.5,
            max_retries: 1,
        };
        assert!(matches!(
            bad.validate(),
            Err(TimeoutPolicyError::InvalidBackoff { .. })
        ));

        let bad = TimeoutPolicy {
            initial_secs: 5.0,
            backoff: f64::INFINITY,
            max_retries: 1,
        };
        assert!(matches!(
            bad.validate(),
            Err(TimeoutPolicyError::InvalidBackoff { .. })
        ));

        let bad = TimeoutPolicy {
            initial_secs: 1.0e300,
            backoff: 10.0,
            max_retries: 100,
        };
        assert!(matches!(
            bad.validate(),
            Err(TimeoutPolicyError::SpanOverflow { .. })
        ));
    }

    #[test]
    fn fault_config_rejections_are_typed() {
        let mut plan = FaultConfig::disabled();
        plan.message_loss = 1.5;
        assert!(matches!(
            plan.validate(),
            Err(FaultConfigError::InvalidLossProbability { probability }) if probability == 1.5
        ));

        let mut plan = FaultConfig::disabled();
        plan.message_loss = f64::NAN;
        assert!(matches!(
            plan.validate(),
            Err(FaultConfigError::InvalidLossProbability { .. })
        ));

        let window = |start_secs, duration_secs, fraction| OutageWindow {
            start_secs,
            duration_secs,
            fraction,
        };
        let mut plan = FaultConfig::disabled();
        plan.outages.push(window(-1.0, 5.0, 0.5));
        assert!(matches!(
            plan.validate(),
            Err(FaultConfigError::InvalidOutageStart { .. })
        ));

        let mut plan = FaultConfig::disabled();
        plan.outages.push(window(0.0, 0.0, 0.5));
        assert!(matches!(
            plan.validate(),
            Err(FaultConfigError::InvalidOutageDuration { .. })
        ));

        let mut plan = FaultConfig::disabled();
        plan.outages.push(window(0.0, 5.0, 2.0));
        assert!(matches!(
            plan.validate(),
            Err(FaultConfigError::InvalidOutageFraction { .. })
        ));

        let mut plan = FaultConfig::disabled();
        plan.outages.push(window(1.0e300, 1.0e300, 0.5));
        assert!(matches!(
            plan.validate(),
            Err(FaultConfigError::OutageBeyondClock { .. })
        ));

        let mut plan = FaultConfig::disabled();
        plan.dht_step_timeout_secs = f64::NEG_INFINITY;
        assert!(matches!(
            plan.validate(),
            Err(FaultConfigError::InvalidStepTimeout { .. })
        ));
    }

    #[test]
    fn errors_display_their_values_and_box_as_std_errors() {
        let err = FaultConfigError::InvalidLossProbability { probability: 2.0 };
        assert!(err.to_string().contains('2'));
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("loss"));

        let err = TimeoutPolicyError::InvalidBackoff { backoff: 0.25 };
        assert!(err.to_string().contains("0.25"));
    }
}
