//! The file catalog: filenames, their keywords and the ground-truth match
//! relation between queries and files.
//!
//! §3.3 defines the matching rule: a query `q = {kw_i ∈ f}` (1 ≤ |q| ≤ K) "can
//! be satisfied by any file f which filename contains all keywords of q"
//! (§3.1). The catalog materialises the keyword → files inverted index so both
//! the protocols (matching a query against locally stored files) and the
//! metrics (was a returned file actually a correct answer?) agree on one
//! definition of satisfaction.

use std::collections::HashMap;
use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::keywords::{KeywordHashes, KeywordId, KeywordPool};

/// Identifies a file (and its filename) in the global pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl FileId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A filename: the ordered list of keywords composing it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Filename {
    keywords: Vec<KeywordId>,
}

impl Filename {
    /// Creates a filename from its keywords.
    ///
    /// # Panics
    /// Panics if the keyword list is empty.
    pub fn new(keywords: Vec<KeywordId>) -> Self {
        assert!(!keywords.is_empty(), "a filename needs at least one keyword");
        Filename { keywords }
    }

    /// The keywords of this filename, in order.
    pub fn keywords(&self) -> &[KeywordId] {
        &self.keywords
    }

    /// Number of keywords (the paper's `K`).
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// True if the filename has no keywords (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// True if this filename contains every keyword in `query_keywords`
    /// (the §3.1 satisfaction rule).
    pub fn matches(&self, query_keywords: &[KeywordId]) -> bool {
        query_keywords.iter().all(|kw| self.keywords.contains(kw))
    }

    /// Human-readable rendering, e.g. `"beso42 lurim17 tona8.mp3"`.
    pub fn display(&self) -> String {
        let words: Vec<String> = self.keywords.iter().map(|k| k.canonical()).collect();
        format!("{}.mp3", words.join(" "))
    }
}

/// Configuration of catalog generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Number of files (paper: 3000).
    pub files: usize,
    /// Number of keywords in the pool (paper: 9000).
    pub keywords: usize,
    /// Keywords per filename (paper: 3).
    pub keywords_per_file: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            files: crate::PAPER_FILE_POOL,
            keywords: crate::PAPER_KEYWORD_POOL,
            keywords_per_file: crate::PAPER_KEYWORDS_PER_FILE,
        }
    }
}

/// The global catalog of files, their filenames and the inverted index.
#[derive(Debug, Clone)]
pub struct Catalog {
    pool: KeywordPool,
    filenames: Vec<Filename>,
    /// keyword → files whose filename contains it.
    inverted: HashMap<KeywordId, Vec<FileId>>,
    /// Bloom hashes interned once per pool keyword (shared with peer state so
    /// the routing and cache-maintenance hot paths never re-hash a keyword).
    keyword_hashes: Arc<KeywordHashes>,
    /// Each filename's raw keyword ids as one shared allocation, interned at
    /// construction. Response messages clone the `Arc` instead of rebuilding
    /// a fresh `Vec` per hit on the query hot path.
    wire_keywords: Vec<Arc<[u32]>>,
}

impl Catalog {
    /// Generates a catalog according to `config`, drawing from `rng`
    /// (typically the `StreamId::Catalog` stream).
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (zero files, or more
    /// keywords per file than the pool holds).
    pub fn generate<R: Rng + ?Sized>(config: CatalogConfig, rng: &mut R) -> Self {
        assert!(config.files > 0, "catalog must contain at least one file");
        assert!(
            config.keywords_per_file > 0 && config.keywords_per_file <= config.keywords,
            "keywords per file must be in 1..=pool size"
        );
        let pool = KeywordPool::new(config.keywords);
        let all_keywords: Vec<KeywordId> = pool.iter().collect();

        let mut filenames = Vec::with_capacity(config.files);
        let mut inverted: HashMap<KeywordId, Vec<FileId>> = HashMap::new();
        for f in 0..config.files {
            let kws: Vec<KeywordId> = all_keywords
                .choose_multiple(rng, config.keywords_per_file)
                .copied()
                .collect();
            for &kw in &kws {
                inverted.entry(kw).or_default().push(FileId(f as u32));
            }
            filenames.push(Filename::new(kws));
        }
        let keyword_hashes = Arc::new(KeywordHashes::for_pool(&pool));
        let wire_keywords = intern_wire_keywords(&filenames);
        Catalog {
            pool,
            filenames,
            inverted,
            keyword_hashes,
            wire_keywords,
        }
    }

    /// Builds a catalog from explicit filenames (used by tests and examples).
    pub fn from_filenames(pool: KeywordPool, filenames: Vec<Filename>) -> Self {
        let mut inverted: HashMap<KeywordId, Vec<FileId>> = HashMap::new();
        for (i, fname) in filenames.iter().enumerate() {
            for &kw in fname.keywords() {
                inverted.entry(kw).or_default().push(FileId(i as u32));
            }
        }
        let keyword_hashes = Arc::new(KeywordHashes::for_pool(&pool));
        let wire_keywords = intern_wire_keywords(&filenames);
        Catalog {
            pool,
            filenames,
            inverted,
            keyword_hashes,
            wire_keywords,
        }
    }

    /// Number of files in the catalog.
    pub fn len(&self) -> usize {
        self.filenames.len()
    }

    /// True if the catalog holds no files.
    pub fn is_empty(&self) -> bool {
        self.filenames.is_empty()
    }

    /// The keyword pool the catalog draws from.
    pub fn keyword_pool(&self) -> &KeywordPool {
        &self.pool
    }

    /// The interned Bloom hashes of every pool keyword, built once with the
    /// catalog and shared (via `Arc`) with every peer of a simulation.
    pub fn keyword_hashes(&self) -> &Arc<KeywordHashes> {
        &self.keyword_hashes
    }

    /// The filename of `file`.
    ///
    /// # Panics
    /// Panics if the file id is out of range.
    pub fn filename(&self, file: FileId) -> &Filename {
        &self.filenames[file.index()]
    }

    /// The interned wire form of `file`'s keywords (raw ids, one shared
    /// allocation per file).
    ///
    /// # Panics
    /// Panics if the file id is out of range.
    pub fn wire_keywords(&self, file: FileId) -> &Arc<[u32]> {
        &self.wire_keywords[file.index()]
    }

    /// Iterator over all file ids.
    pub fn files(&self) -> impl Iterator<Item = FileId> {
        (0..self.filenames.len() as u32).map(FileId)
    }

    /// Files whose filename contains `keyword`.
    pub fn files_with_keyword(&self, keyword: KeywordId) -> &[FileId] {
        self.inverted
            .get(&keyword)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All files satisfying a query (containing **all** its keywords).
    ///
    /// This is the ground truth the metrics use; protocols must never do better
    /// than this set.
    pub fn matching_files(&self, query_keywords: &[KeywordId]) -> Vec<FileId> {
        match query_keywords.first() {
            None => Vec::new(),
            Some(&first) => self
                .files_with_keyword(first)
                .iter()
                .copied()
                .filter(|&f| self.filename(f).matches(query_keywords))
                .collect(),
        }
    }

    /// True if `file` satisfies the query.
    pub fn file_matches(&self, file: FileId, query_keywords: &[KeywordId]) -> bool {
        self.filename(file).matches(query_keywords)
    }
}

/// One shared `Arc<[u32]>` of raw keyword ids per filename.
fn intern_wire_keywords(filenames: &[Filename]) -> Vec<Arc<[u32]>> {
    filenames
        .iter()
        .map(|f| f.keywords().iter().map(|kw| kw.0).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_catalog() -> Catalog {
        // f0 = {0,1,2}, f1 = {2,3,4}, f2 = {0,2,4}
        let pool = KeywordPool::new(5);
        Catalog::from_filenames(
            pool,
            vec![
                Filename::new(vec![KeywordId(0), KeywordId(1), KeywordId(2)]),
                Filename::new(vec![KeywordId(2), KeywordId(3), KeywordId(4)]),
                Filename::new(vec![KeywordId(0), KeywordId(2), KeywordId(4)]),
            ],
        )
    }

    #[test]
    fn generated_catalog_matches_paper_dimensions() {
        let catalog = Catalog::generate(CatalogConfig::default(), &mut StdRng::seed_from_u64(1));
        assert_eq!(catalog.len(), 3000);
        assert_eq!(catalog.keyword_pool().len(), 9000);
        for f in catalog.files().take(50) {
            let fname = catalog.filename(f);
            assert_eq!(fname.len(), 3);
            // Keywords inside one filename are distinct (choose_multiple).
            let mut kws = fname.keywords().to_vec();
            kws.sort_unstable();
            kws.dedup();
            assert_eq!(kws.len(), 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Catalog::generate(CatalogConfig::default(), &mut StdRng::seed_from_u64(5));
        let b = Catalog::generate(CatalogConfig::default(), &mut StdRng::seed_from_u64(5));
        for f in a.files().take(100) {
            assert_eq!(a.filename(f), b.filename(f));
        }
    }

    #[test]
    fn inverted_index_is_consistent_with_filenames() {
        let catalog = Catalog::generate(
            CatalogConfig {
                files: 200,
                keywords: 300,
                keywords_per_file: 3,
            },
            &mut StdRng::seed_from_u64(2),
        );
        for f in catalog.files() {
            for &kw in catalog.filename(f).keywords() {
                assert!(
                    catalog.files_with_keyword(kw).contains(&f),
                    "inverted index must list {f} under {kw}"
                );
            }
        }
    }

    #[test]
    fn matching_follows_the_all_keywords_rule() {
        let c = tiny_catalog();
        // Single keyword 2 appears in every file.
        assert_eq!(c.matching_files(&[KeywordId(2)]).len(), 3);
        // {0, 2} appears in f0 and f2.
        let m = c.matching_files(&[KeywordId(0), KeywordId(2)]);
        assert_eq!(m, vec![FileId(0), FileId(2)]);
        // {1, 3} appears in no single file.
        assert!(c.matching_files(&[KeywordId(1), KeywordId(3)]).is_empty());
        // Empty queries match nothing (they are never generated).
        assert!(c.matching_files(&[]).is_empty());
    }

    #[test]
    fn file_matches_agrees_with_matching_files() {
        let c = tiny_catalog();
        let q = [KeywordId(0), KeywordId(2)];
        for f in c.files() {
            assert_eq!(c.file_matches(f, &q), c.matching_files(&q).contains(&f));
        }
    }

    #[test]
    fn interned_hashes_cover_the_pool() {
        use locaware_bloom::ElementHashes;
        let c = tiny_catalog();
        assert_eq!(c.keyword_hashes().len(), c.keyword_pool().len());
        for kw in c.keyword_pool().iter() {
            assert_eq!(
                c.keyword_hashes().of(kw),
                ElementHashes::of_str(&kw.canonical())
            );
        }
    }

    #[test]
    fn filename_display_is_readable() {
        let f = Filename::new(vec![KeywordId(1), KeywordId(2)]);
        let s = f.display();
        assert!(s.ends_with(".mp3"));
        assert!(s.contains(' '));
    }

    #[test]
    #[should_panic(expected = "at least one keyword")]
    fn empty_filename_is_rejected() {
        let _ = Filename::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "keywords per file")]
    fn too_many_keywords_per_file_is_rejected() {
        let _ = Catalog::generate(
            CatalogConfig {
                files: 10,
                keywords: 2,
                keywords_per_file: 3,
            },
            &mut StdRng::seed_from_u64(0),
        );
    }
}
