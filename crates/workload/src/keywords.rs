//! The keyword pool.
//!
//! Keywords are identified by dense integer ids (`KeywordId`); the protocols
//! only ever hash or compare ids. Each id also has a deterministic pseudo-word
//! spelling so that examples print something readable and the Bloom filter is
//! exercised with realistic variable-length strings rather than bare integers.

use serde::{Deserialize, Serialize};

/// Identifies a keyword in the global pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The canonical string form hashed into Bloom filters.
    ///
    /// Every component (peer-side filter maintenance, query-side membership
    /// tests) must use this same spelling, otherwise membership tests would
    /// silently fail; centralising it here is what guarantees that.
    pub fn canonical(self) -> String {
        KeywordPool::spell(self)
    }
}

impl std::fmt::Display for KeywordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

/// The pool of all keywords in the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordPool {
    count: u32,
}

impl KeywordPool {
    /// Creates a pool of `count` keywords (the paper uses 9000).
    ///
    /// # Panics
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "keyword pool must not be empty");
        KeywordPool {
            count: count as u32,
        }
    }

    /// Number of keywords in the pool.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True if the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True if `kw` belongs to this pool.
    pub fn contains(&self, kw: KeywordId) -> bool {
        kw.0 < self.count
    }

    /// Iterator over all keyword ids.
    pub fn iter(&self) -> impl Iterator<Item = KeywordId> {
        (0..self.count).map(KeywordId)
    }

    /// Deterministic pseudo-word spelling of a keyword id.
    ///
    /// Ids map to distinct strings (the id is appended), with a
    /// syllable-generated prefix so lengths and character distributions look
    /// like real search terms.
    pub fn spell(kw: KeywordId) -> String {
        const ONSETS: [&str; 12] = [
            "b", "d", "f", "g", "k", "l", "m", "n", "r", "s", "t", "v",
        ];
        const NUCLEI: [&str; 6] = ["a", "e", "i", "o", "u", "y"];
        const CODAS: [&str; 8] = ["", "n", "r", "s", "l", "m", "x", "t"];
        let mut word = String::new();
        let mut state = kw.0 as u64 + 1;
        let syllables = 2 + (kw.0 % 3) as usize;
        for _ in 0..syllables {
            // Simple multiplicative scrambling to vary syllables across ids.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let onset = ONSETS[(state >> 33) as usize % ONSETS.len()];
            let nucleus = NUCLEI[(state >> 21) as usize % NUCLEI.len()];
            let coda = CODAS[(state >> 11) as usize % CODAS.len()];
            word.push_str(onset);
            word.push_str(nucleus);
            word.push_str(coda);
        }
        // The numeric suffix guarantees global uniqueness of spellings.
        word.push_str(&kw.0.to_string());
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pool_membership() {
        let pool = KeywordPool::new(100);
        assert_eq!(pool.len(), 100);
        assert!(pool.contains(KeywordId(0)));
        assert!(pool.contains(KeywordId(99)));
        assert!(!pool.contains(KeywordId(100)));
        assert_eq!(pool.iter().count(), 100);
    }

    #[test]
    fn spellings_are_unique_and_deterministic() {
        let spellings: Vec<String> = (0..9000).map(|i| KeywordId(i).canonical()).collect();
        let distinct: HashSet<&String> = spellings.iter().collect();
        assert_eq!(distinct.len(), 9000, "all spellings must be unique");
        assert_eq!(KeywordId(42).canonical(), KeywordId(42).canonical());
    }

    #[test]
    fn spellings_look_like_words() {
        for i in [0u32, 1, 17, 8999] {
            let w = KeywordId(i).canonical();
            assert!(w.len() >= 4, "keyword too short: {w}");
            assert!(w.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn display_matches_canonical() {
        assert_eq!(format!("{}", KeywordId(7)), KeywordId(7).canonical());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_pool_is_rejected() {
        let _ = KeywordPool::new(0);
    }
}
