//! The keyword pool.
//!
//! Keywords are identified by dense integer ids (`KeywordId`); the protocols
//! only ever hash or compare ids. Each id also has a deterministic pseudo-word
//! spelling so that examples print something readable and the Bloom filter is
//! exercised with realistic variable-length strings rather than bare integers.

use locaware_bloom::ElementHashes;
use serde::{Deserialize, Serialize};

/// Identifies a keyword in the global pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The canonical string form hashed into Bloom filters.
    ///
    /// Every component (peer-side filter maintenance, query-side membership
    /// tests) must use this same spelling, otherwise membership tests would
    /// silently fail; centralising it here is what guarantees that.
    pub fn canonical(self) -> String {
        KeywordPool::spell(self)
    }
}

impl std::fmt::Display for KeywordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

/// The pool of all keywords in the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordPool {
    count: u32,
}

impl KeywordPool {
    /// Creates a pool of `count` keywords (the paper uses 9000).
    ///
    /// # Panics
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "keyword pool must not be empty");
        KeywordPool {
            count: count as u32,
        }
    }

    /// Number of keywords in the pool.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True if the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True if `kw` belongs to this pool.
    pub fn contains(&self, kw: KeywordId) -> bool {
        kw.0 < self.count
    }

    /// Iterator over all keyword ids.
    pub fn iter(&self) -> impl Iterator<Item = KeywordId> {
        (0..self.count).map(KeywordId)
    }

    /// Deterministic pseudo-word spelling of a keyword id.
    ///
    /// Ids map to distinct strings (the id is appended), with a
    /// syllable-generated prefix so lengths and character distributions look
    /// like real search terms.
    pub fn spell(kw: KeywordId) -> String {
        const ONSETS: [&str; 12] = [
            "b", "d", "f", "g", "k", "l", "m", "n", "r", "s", "t", "v",
        ];
        const NUCLEI: [&str; 6] = ["a", "e", "i", "o", "u", "y"];
        const CODAS: [&str; 8] = ["", "n", "r", "s", "l", "m", "x", "t"];
        let mut word = String::new();
        let mut state = kw.0 as u64 + 1;
        let syllables = 2 + (kw.0 % 3) as usize;
        for _ in 0..syllables {
            // Simple multiplicative scrambling to vary syllables across ids.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let onset = ONSETS[(state >> 33) as usize % ONSETS.len()];
            let nucleus = NUCLEI[(state >> 21) as usize % NUCLEI.len()];
            let coda = CODAS[(state >> 11) as usize % CODAS.len()];
            word.push_str(onset);
            word.push_str(nucleus);
            word.push_str(coda);
        }
        // The numeric suffix guarantees global uniqueness of spellings.
        word.push_str(&kw.0.to_string());
        word
    }
}

/// Bloom hashes interned once per keyword of a pool.
///
/// Every Bloom-filter operation on a keyword starts by hashing its canonical
/// spelling; on the routing hot path the *same* keywords are hashed over and
/// over (once per neighbour per hop). Interning the [`ElementHashes`] of every
/// pool keyword at substrate-build time turns each of those hashes into an
/// array load. Keywords outside the interned pool (only constructed by tests)
/// fall back to hashing on the fly, so lookups are total and always agree with
/// `ElementHashes::of_str(&kw.canonical())`.
#[derive(Debug, Clone, Default)]
pub struct KeywordHashes {
    hashes: Vec<ElementHashes>,
}

impl KeywordHashes {
    /// Interns the hashes of every keyword in `pool`.
    pub fn for_pool(pool: &KeywordPool) -> Self {
        KeywordHashes {
            hashes: pool
                .iter()
                .map(|kw| ElementHashes::of_str(&kw.canonical()))
                .collect(),
        }
    }

    /// An empty table: every lookup falls back to hashing on the fly.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of interned keywords.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True if nothing is interned (all lookups hash on the fly).
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The Bloom hashes of `kw`: an array load for pool keywords, a fresh
    /// hash of the canonical spelling otherwise.
    pub fn of(&self, kw: KeywordId) -> ElementHashes {
        match self.hashes.get(kw.index()) {
            Some(&h) => h,
            None => ElementHashes::of_str(&kw.canonical()),
        }
    }

    /// Fills `out` with the hashes of `keywords` (clearing it first).
    pub fn of_all_into(&self, keywords: &[KeywordId], out: &mut Vec<ElementHashes>) {
        out.clear();
        out.extend(keywords.iter().map(|&kw| self.of(kw)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pool_membership() {
        let pool = KeywordPool::new(100);
        assert_eq!(pool.len(), 100);
        assert!(pool.contains(KeywordId(0)));
        assert!(pool.contains(KeywordId(99)));
        assert!(!pool.contains(KeywordId(100)));
        assert_eq!(pool.iter().count(), 100);
    }

    #[test]
    fn spellings_are_unique_and_deterministic() {
        let spellings: Vec<String> = (0..9000).map(|i| KeywordId(i).canonical()).collect();
        let distinct: HashSet<&String> = spellings.iter().collect();
        assert_eq!(distinct.len(), 9000, "all spellings must be unique");
        assert_eq!(KeywordId(42).canonical(), KeywordId(42).canonical());
    }

    #[test]
    fn spellings_look_like_words() {
        for i in [0u32, 1, 17, 8999] {
            let w = KeywordId(i).canonical();
            assert!(w.len() >= 4, "keyword too short: {w}");
            assert!(w.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn display_matches_canonical() {
        assert_eq!(format!("{}", KeywordId(7)), KeywordId(7).canonical());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_pool_is_rejected() {
        let _ = KeywordPool::new(0);
    }

    #[test]
    fn interned_hashes_match_on_the_fly_hashing() {
        let pool = KeywordPool::new(200);
        let interned = KeywordHashes::for_pool(&pool);
        assert_eq!(interned.len(), 200);
        for kw in pool.iter() {
            assert_eq!(interned.of(kw), ElementHashes::of_str(&kw.canonical()));
        }
        // Out-of-pool keywords fall back to hashing on the fly.
        let outside = KeywordId(9999);
        assert_eq!(
            interned.of(outside),
            ElementHashes::of_str(&outside.canonical())
        );
        // The empty table is a pure fallback.
        let empty = KeywordHashes::empty();
        assert!(empty.is_empty());
        assert_eq!(empty.of(KeywordId(3)), ElementHashes::of_str(&KeywordId(3).canonical()));
    }

    #[test]
    fn of_all_into_reuses_the_buffer() {
        let pool = KeywordPool::new(10);
        let interned = KeywordHashes::for_pool(&pool);
        let mut buf = vec![ElementHashes::of_str("stale")];
        interned.of_all_into(&[KeywordId(1), KeywordId(2)], &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0], interned.of(KeywordId(1)));
        assert_eq!(buf[1], interned.of(KeywordId(2)));
    }
}
