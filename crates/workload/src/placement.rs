//! Initial placement of shared files on peers.
//!
//! §5.1: *"each peer initially shares 3 files, randomly chosen from a pool of
//! 3000"*. The placement is the system's starting replica distribution; natural
//! replication (requestors keeping downloaded files) then grows it during the
//! run, which is exactly the effect Locaware exploits.
//!
//! ## Weighted clusters
//!
//! [`ClusterWeights`] partitions the peer index space into contiguous
//! clusters and attaches a positive weight to each. With
//! [`PlacementConfig::cluster_weights`] set, the *total* share budget
//! (`peers × files_per_peer`) is redistributed across clusters proportionally
//! to weight (largest-remainder apportionment, then an even split inside each
//! cluster), so a hot cluster holds correspondingly more initial replicas.
//! The same weights drive query-origin attribution in
//! [`ArrivalConfig::origin_weights`](crate::arrival::ArrivalConfig), which is
//! what lets hotspot regimes concentrate storage *and* load on the same peers
//! (the simulation layer maps cluster slots onto locality-sorted peer ids, so
//! "the hot cluster" is a physically co-located region). `None` reproduces
//! the paper's uniform placement draw-for-draw.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::catalog::FileId;

/// Why a [`ClusterWeights`] is (or does not fit a population) invalid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterWeightsError {
    /// No clusters at all.
    Empty,
    /// A weight is not positive and finite.
    InvalidWeight {
        /// Index of the offending cluster.
        index: usize,
        /// The offending weight.
        weight: f64,
    },
    /// More clusters than peers: some cluster would own no peers.
    MoreClustersThanPeers {
        /// Number of clusters.
        clusters: usize,
        /// Number of peers.
        peers: usize,
    },
    /// The cached weight total does not match the weights (only possible for
    /// values that bypassed [`ClusterWeights::new`], e.g. a future
    /// deserialization path).
    InconsistentTotal {
        /// The cached total.
        cached: f64,
        /// The total recomputed from the weights.
        computed: f64,
    },
}

impl std::fmt::Display for ClusterWeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterWeightsError::Empty => write!(f, "cluster weights must not be empty"),
            ClusterWeightsError::InvalidWeight { index, weight } => write!(
                f,
                "cluster weights must be positive and finite: cluster {index} has {weight}"
            ),
            ClusterWeightsError::MoreClustersThanPeers { clusters, peers } => write!(
                f,
                "more clusters than peers: {clusters} clusters over {peers} peers"
            ),
            ClusterWeightsError::InconsistentTotal { cached, computed } => write!(
                f,
                "cached weight total {cached} does not match the weights (sum {computed})"
            ),
        }
    }
}

impl std::error::Error for ClusterWeightsError {}

/// Positive per-cluster weights over a contiguous partition of the peer
/// index space.
///
/// Cluster `c` of `k` over a population of `n` peers owns the index range
/// `[c·n/k, (c+1)·n/k)` (integer division), so every cluster is non-empty
/// whenever `k ≤ n`. Weights are relative: `[8, 1, 1]` gives the first
/// cluster 80% of whatever mass is being apportioned (initial file copies,
/// query origins).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterWeights {
    weights: Vec<f64>,
    /// Sum of `weights`, fixed at construction so per-arrival cluster
    /// sampling never re-adds the whole vector.
    total: f64,
}

/// The shape invariant shared by [`ClusterWeights::new`] and
/// [`ClusterWeights::validate_for`]: at least one cluster, every weight
/// positive and finite.
fn check_weights(weights: &[f64]) -> Result<(), ClusterWeightsError> {
    if weights.is_empty() {
        return Err(ClusterWeightsError::Empty);
    }
    for (index, &weight) in weights.iter().enumerate() {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(ClusterWeightsError::InvalidWeight { index, weight });
        }
    }
    Ok(())
}

impl ClusterWeights {
    /// Validates and wraps per-cluster weights: at least one cluster, every
    /// weight positive and finite.
    pub fn new(weights: Vec<f64>) -> Result<Self, ClusterWeightsError> {
        check_weights(&weights)?;
        let total = weights.iter().sum();
        Ok(ClusterWeights { weights, total })
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.weights.len()
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Checks that the partition fits a population of `peers` — and re-runs
    /// the construction invariants, so a value that bypassed
    /// [`ClusterWeights::new`] (a hypothetical deserialization path; the
    /// `Deserialize` derive is a no-op under the offline shims today) cannot
    /// smuggle a degenerate shape past the configuration layer's validation.
    pub fn validate_for(&self, peers: usize) -> Result<(), ClusterWeightsError> {
        check_weights(&self.weights)?;
        let computed: f64 = self.weights.iter().sum();
        if self.total.to_bits() != computed.to_bits() {
            return Err(ClusterWeightsError::InconsistentTotal {
                cached: self.total,
                computed,
            });
        }
        if self.weights.len() > peers {
            return Err(ClusterWeightsError::MoreClustersThanPeers {
                clusters: self.weights.len(),
                peers,
            });
        }
        Ok(())
    }

    /// The contiguous peer index range owned by `cluster` in a population of
    /// `peers`.
    pub fn peer_range(&self, cluster: usize, peers: usize) -> std::ops::Range<usize> {
        let k = self.weights.len();
        (cluster * peers / k)..((cluster + 1) * peers / k)
    }

    /// The cluster owning peer index `peer` in a population of `peers`.
    pub fn cluster_of(&self, peer: usize, peers: usize) -> usize {
        let k = self.weights.len();
        // Approximate inverse of `peer_range`: floor(peer·k/n) can be one
        // below the true cluster (never above it, for k <= n); correct by
        // range membership.
        let candidate = (peer * k) / peers.max(1);
        (candidate..=(candidate + 1).min(k - 1))
            .find(|&c| self.peer_range(c, peers).contains(&peer))
            .unwrap_or(k - 1)
    }

    /// Draws a cluster index proportionally to weight (one uniform draw;
    /// the subtractive scan keeps the draw → cluster mapping bit-stable
    /// against the precomputed total).
    pub fn sample_cluster<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut target = rng.gen::<f64>() * self.total;
        for (index, &weight) in self.weights.iter().enumerate() {
            if target < weight {
                return index;
            }
            target -= weight;
        }
        self.weights.len() - 1
    }

    /// Apportions `total` indivisible units across the clusters
    /// proportionally to weight, by the largest-remainder method (exact sum,
    /// deterministic, ties broken by cluster index).
    pub fn apportion(&self, total: usize) -> Vec<usize> {
        let weight_sum = self.total;
        let quotas: Vec<f64> = self
            .weights
            .iter()
            .map(|w| total as f64 * w / weight_sum)
            .collect();
        let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        // Hand the leftover units to the largest fractional remainders.
        let mut order: Vec<usize> = (0..self.weights.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
        });
        for &cluster in order.iter().take(total - assigned) {
            counts[cluster] += 1;
        }
        counts
    }

    /// Per-peer share counts for a population of `peers` with a total budget
    /// of `peers × files_per_peer` file copies: the budget is apportioned
    /// across clusters by weight, then split as evenly as possible inside
    /// each cluster (the first peers of a cluster absorb the remainder).
    pub fn share_counts(&self, peers: usize, files_per_peer: usize) -> Vec<usize> {
        let per_cluster = self.apportion(peers * files_per_peer);
        let mut counts = vec![0usize; peers];
        for (cluster, &quota) in per_cluster.iter().enumerate() {
            let range = self.peer_range(cluster, peers);
            let n = range.len();
            if n == 0 {
                continue;
            }
            let base = quota / n;
            let extra = quota % n;
            for (offset, peer) in range.enumerate() {
                counts[peer] = base + usize::from(offset < extra);
            }
        }
        counts
    }

    /// The largest per-peer share count [`ClusterWeights::share_counts`]
    /// would produce — what the configuration layer checks against the file
    /// pool (no peer can share more distinct files than exist).
    pub fn max_share_count(&self, peers: usize, files_per_peer: usize) -> usize {
        self.share_counts(peers, files_per_peer)
            .into_iter()
            .max()
            .unwrap_or(0)
    }
}

/// Configuration of the initial placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Number of peers.
    pub peers: usize,
    /// Number of files each peer initially shares (paper: 3); under
    /// [`PlacementConfig::cluster_weights`] this is the population *average*,
    /// redistributed by weight.
    pub files_per_peer: usize,
    /// Size of the file pool to draw from (paper: 3000).
    pub file_pool: usize,
    /// Optional weighted-cluster redistribution of the share budget; `None`
    /// reproduces the paper's uniform placement exactly.
    pub cluster_weights: Option<ClusterWeights>,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            peers: 1000,
            files_per_peer: crate::PAPER_FILES_PER_PEER,
            file_pool: crate::PAPER_FILE_POOL,
            cluster_weights: None,
        }
    }
}

/// The initial assignment of files to peers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitialPlacement {
    /// `shared[p]` = the files peer `p` initially shares (sorted, distinct).
    shared: Vec<Vec<FileId>>,
}

impl InitialPlacement {
    /// Generates a placement according to `config`, drawing from `rng`
    /// (typically the `StreamId::FilePlacement` stream).
    ///
    /// # Panics
    /// Panics if a peer is asked to share more files than the pool contains
    /// (for weighted clusters: if the heaviest cluster's per-peer allotment
    /// exceeds the pool). The simulation configuration layer validates both
    /// bounds fallibly before substrates are built.
    pub fn generate<R: Rng + ?Sized>(config: PlacementConfig, rng: &mut R) -> Self {
        let counts: Option<Vec<usize>> = config
            .cluster_weights
            .as_ref()
            .map(|w| w.share_counts(config.peers, config.files_per_peer));
        let max_count = counts
            .as_ref()
            .map(|c| c.iter().copied().max().unwrap_or(0))
            .unwrap_or(config.files_per_peer);
        assert!(
            max_count <= config.file_pool,
            "cannot share more distinct files than the pool contains"
        );
        let all_files: Vec<FileId> = (0..config.file_pool as u32).map(FileId).collect();
        let shared = (0..config.peers)
            .map(|peer| {
                let count = counts.as_ref().map_or(config.files_per_peer, |c| c[peer]);
                let mut files: Vec<FileId> = all_files
                    .choose_multiple(rng, count)
                    .copied()
                    .collect();
                files.sort_unstable();
                files
            })
            .collect();
        InitialPlacement { shared }
    }

    /// Builds a placement from explicit per-peer file lists (tests, examples).
    pub fn from_lists(shared: Vec<Vec<FileId>>) -> Self {
        InitialPlacement {
            shared: shared
                .into_iter()
                .map(|mut files| {
                    files.sort_unstable();
                    files.dedup();
                    files
                })
                .collect(),
        }
    }

    /// Number of peers covered by the placement.
    pub fn peers(&self) -> usize {
        self.shared.len()
    }

    /// Files initially shared by peer `p`.
    pub fn files_of(&self, peer: usize) -> &[FileId] {
        &self.shared[peer]
    }

    /// Iterator over `(peer index, shared files)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[FileId])> {
        self.shared.iter().enumerate().map(|(i, v)| (i, v.as_slice()))
    }

    /// Number of initial replicas of `file` across all peers.
    pub fn replica_count(&self, file: FileId) -> usize {
        self.shared
            .iter()
            .filter(|files| files.binary_search(&file).is_ok())
            .count()
    }

    /// Total number of (peer, file) share relationships.
    pub fn total_shared(&self) -> usize {
        self.shared.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_defaults_give_three_distinct_files_per_peer() {
        let p = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(1));
        assert_eq!(p.peers(), 1000);
        assert_eq!(p.total_shared(), 3000);
        for (peer, files) in p.iter() {
            assert_eq!(files.len(), 3, "peer {peer} should share 3 files");
            let mut dedup = files.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "peer {peer} files must be distinct");
            for f in files {
                assert!(f.index() < 3000);
            }
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let a = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(3));
        let b = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(1));
        let b = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn replica_counts_add_up() {
        let cfg = PlacementConfig {
            peers: 200,
            files_per_peer: 3,
            file_pool: 50,
            cluster_weights: None,
        };
        let p = InitialPlacement::generate(cfg, &mut StdRng::seed_from_u64(4));
        let total: usize = (0..50).map(|f| p.replica_count(FileId(f))).sum();
        assert_eq!(total, p.total_shared());
        // With 600 shares over 50 files, every file is very likely replicated.
        let unreplicated = (0..50).filter(|&f| p.replica_count(FileId(f)) == 0).count();
        assert!(unreplicated <= 2);
    }

    #[test]
    fn from_lists_normalises_input() {
        let p = InitialPlacement::from_lists(vec![vec![FileId(3), FileId(1), FileId(3)]]);
        assert_eq!(p.files_of(0), &[FileId(1), FileId(3)]);
    }

    #[test]
    #[should_panic(expected = "more distinct files")]
    fn oversized_share_request_is_rejected() {
        let cfg = PlacementConfig {
            peers: 2,
            files_per_peer: 10,
            file_pool: 5,
            cluster_weights: None,
        };
        let _ = InitialPlacement::generate(cfg, &mut StdRng::seed_from_u64(0));
    }

    // ------------------------------------------------------- cluster weights

    #[test]
    fn cluster_weights_validate_shape_and_population() {
        assert_eq!(ClusterWeights::new(vec![]).unwrap_err(), ClusterWeightsError::Empty);
        assert!(matches!(
            ClusterWeights::new(vec![1.0, 0.0]).unwrap_err(),
            ClusterWeightsError::InvalidWeight { index: 1, .. }
        ));
        assert!(matches!(
            ClusterWeights::new(vec![f64::NAN]).unwrap_err(),
            ClusterWeightsError::InvalidWeight { index: 0, .. }
        ));
        let w = ClusterWeights::new(vec![3.0, 1.0]).unwrap();
        assert!(w.validate_for(2).is_ok());
        assert_eq!(
            w.validate_for(1).unwrap_err(),
            ClusterWeightsError::MoreClustersThanPeers { clusters: 2, peers: 1 }
        );
    }

    #[test]
    fn peer_ranges_partition_the_population() {
        let w = ClusterWeights::new(vec![1.0, 1.0, 1.0]).unwrap();
        for peers in [3usize, 7, 30, 100] {
            let mut covered = 0usize;
            for c in 0..w.clusters() {
                let range = w.peer_range(c, peers);
                assert_eq!(range.start, covered, "ranges must be contiguous");
                assert!(!range.is_empty(), "k <= n keeps every cluster non-empty");
                for peer in range.clone() {
                    assert_eq!(w.cluster_of(peer, peers), c, "peer {peer} of {peers}");
                }
                covered = range.end;
            }
            assert_eq!(covered, peers, "ranges must cover every peer");
        }
    }

    #[test]
    fn apportionment_is_exact_and_proportional() {
        let w = ClusterWeights::new(vec![8.0, 1.0, 1.0]).unwrap();
        let counts = w.apportion(1000);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert_eq!(counts, vec![800, 100, 100]);
        // Remainders distribute deterministically.
        let odd = w.apportion(7);
        assert_eq!(odd.iter().sum::<usize>(), 7);
        assert!(odd[0] >= 5, "the heavy cluster takes the bulk: {odd:?}");
    }

    #[test]
    fn weighted_share_counts_conserve_the_budget() {
        let w = ClusterWeights::new(vec![6.0, 1.0, 1.0]).unwrap();
        let counts = w.share_counts(90, 3);
        assert_eq!(counts.len(), 90);
        assert_eq!(counts.iter().sum::<usize>(), 270, "total budget conserved");
        let hot: usize = counts[..30].iter().sum();
        assert!(
            (195..=210).contains(&hot),
            "hot cluster holds ~75% of the copies, got {hot}"
        );
        // Within a cluster the split is even to within one file.
        for cluster in 0..3 {
            let range = w.peer_range(cluster, 90);
            let slice = &counts[range];
            let min = slice.iter().min().unwrap();
            let max = slice.iter().max().unwrap();
            assert!(max - min <= 1, "cluster {cluster}: uneven split {slice:?}");
        }
        assert_eq!(w.max_share_count(90, 3), *counts.iter().max().unwrap());
    }

    #[test]
    fn weighted_placement_concentrates_replicas() {
        let weights = ClusterWeights::new(vec![6.0, 1.0, 1.0]).unwrap();
        let cfg = PlacementConfig {
            peers: 90,
            files_per_peer: 3,
            file_pool: 300,
            cluster_weights: Some(weights),
        };
        let p = InitialPlacement::generate(cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(p.total_shared(), 270, "weighting conserves the total budget");
        let hot: usize = (0..30).map(|peer| p.files_of(peer).len()).sum();
        assert!(hot >= 195, "hot cluster must hold most copies, got {hot}");
        for (peer, files) in p.iter() {
            let mut dedup = files.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), files.len(), "peer {peer} files must be distinct");
        }
    }

    #[test]
    fn cluster_sampling_tracks_the_weights() {
        let w = ClusterWeights::new(vec![8.0, 1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample_cluster(&mut rng)] += 1;
        }
        let share = counts[0] as f64 / 10_000.0;
        assert!((0.77..0.83).contains(&share), "cluster 0 share {share}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }
}
