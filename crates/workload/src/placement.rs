//! Initial placement of shared files on peers.
//!
//! §5.1: *"each peer initially shares 3 files, randomly chosen from a pool of
//! 3000"*. The placement is the system's starting replica distribution; natural
//! replication (requestors keeping downloaded files) then grows it during the
//! run, which is exactly the effect Locaware exploits.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::catalog::FileId;

/// Configuration of the initial placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Number of peers.
    pub peers: usize,
    /// Number of files each peer initially shares (paper: 3).
    pub files_per_peer: usize,
    /// Size of the file pool to draw from (paper: 3000).
    pub file_pool: usize,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            peers: 1000,
            files_per_peer: crate::PAPER_FILES_PER_PEER,
            file_pool: crate::PAPER_FILE_POOL,
        }
    }
}

/// The initial assignment of files to peers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitialPlacement {
    /// `shared[p]` = the files peer `p` initially shares (sorted, distinct).
    shared: Vec<Vec<FileId>>,
}

impl InitialPlacement {
    /// Generates a placement according to `config`, drawing from `rng`
    /// (typically the `StreamId::FilePlacement` stream).
    ///
    /// # Panics
    /// Panics if a peer is asked to share more files than the pool contains.
    pub fn generate<R: Rng + ?Sized>(config: PlacementConfig, rng: &mut R) -> Self {
        assert!(
            config.files_per_peer <= config.file_pool,
            "cannot share more distinct files than the pool contains"
        );
        let all_files: Vec<FileId> = (0..config.file_pool as u32).map(FileId).collect();
        let shared = (0..config.peers)
            .map(|_| {
                let mut files: Vec<FileId> = all_files
                    .choose_multiple(rng, config.files_per_peer)
                    .copied()
                    .collect();
                files.sort_unstable();
                files
            })
            .collect();
        InitialPlacement { shared }
    }

    /// Builds a placement from explicit per-peer file lists (tests, examples).
    pub fn from_lists(shared: Vec<Vec<FileId>>) -> Self {
        InitialPlacement {
            shared: shared
                .into_iter()
                .map(|mut files| {
                    files.sort_unstable();
                    files.dedup();
                    files
                })
                .collect(),
        }
    }

    /// Number of peers covered by the placement.
    pub fn peers(&self) -> usize {
        self.shared.len()
    }

    /// Files initially shared by peer `p`.
    pub fn files_of(&self, peer: usize) -> &[FileId] {
        &self.shared[peer]
    }

    /// Iterator over `(peer index, shared files)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[FileId])> {
        self.shared.iter().enumerate().map(|(i, v)| (i, v.as_slice()))
    }

    /// Number of initial replicas of `file` across all peers.
    pub fn replica_count(&self, file: FileId) -> usize {
        self.shared
            .iter()
            .filter(|files| files.binary_search(&file).is_ok())
            .count()
    }

    /// Total number of (peer, file) share relationships.
    pub fn total_shared(&self) -> usize {
        self.shared.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_defaults_give_three_distinct_files_per_peer() {
        let p = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(1));
        assert_eq!(p.peers(), 1000);
        assert_eq!(p.total_shared(), 3000);
        for (peer, files) in p.iter() {
            assert_eq!(files.len(), 3, "peer {peer} should share 3 files");
            let mut dedup = files.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "peer {peer} files must be distinct");
            for f in files {
                assert!(f.index() < 3000);
            }
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let a = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(3));
        let b = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(1));
        let b = InitialPlacement::generate(PlacementConfig::default(), &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn replica_counts_add_up() {
        let cfg = PlacementConfig {
            peers: 200,
            files_per_peer: 3,
            file_pool: 50,
        };
        let p = InitialPlacement::generate(cfg, &mut StdRng::seed_from_u64(4));
        let total: usize = (0..50).map(|f| p.replica_count(FileId(f))).sum();
        assert_eq!(total, p.total_shared());
        // With 600 shares over 50 files, every file is very likely replicated.
        let unreplicated = (0..50).filter(|&f| p.replica_count(FileId(f)) == 0).count();
        assert!(unreplicated <= 2);
    }

    #[test]
    fn from_lists_normalises_input() {
        let p = InitialPlacement::from_lists(vec![vec![FileId(3), FileId(1), FileId(3)]]);
        assert_eq!(p.files_of(0), &[FileId(1), FileId(3)]);
    }

    #[test]
    #[should_panic(expected = "more distinct files")]
    fn oversized_share_request_is_rejected() {
        let cfg = PlacementConfig {
            peers: 2,
            files_per_peer: 10,
            file_pool: 5,
        };
        let _ = InitialPlacement::generate(cfg, &mut StdRng::seed_from_u64(0));
    }
}
