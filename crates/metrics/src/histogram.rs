//! Fixed-bucket histograms.
//!
//! Used for distributional views that single averages hide: the distribution
//! of download distances (is Locaware shaving the tail or the whole curve?),
//! hop counts to the first hit, and providers offered per response.

use serde::{Deserialize, Serialize};

/// A histogram over `[min, max)` with equally sized buckets plus an overflow
/// bucket for values ≥ `max`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal buckets covering `[min, max)`.
    ///
    /// # Panics
    /// Panics if `buckets` is zero or the range is empty/invalid.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(
            max > min && min.is_finite() && max.is_finite(),
            "histogram range must be a finite, non-empty interval"
        );
        Histogram {
            min,
            max,
            counts: vec![0; buckets],
            overflow: 0,
            underflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// A histogram shaped for one-way latencies of the paper's underlay
    /// (10–500 ms) in 10 ms buckets.
    pub fn for_latencies_ms() -> Self {
        Histogram::new(0.0, 500.0, 50)
    }

    /// Number of regular buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Width of one bucket.
    pub fn bucket_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.total += 1;
        self.sum += value;
        if value < self.min {
            self.underflow += 1;
        } else if value >= self.max {
            self.overflow += 1;
        } else {
            let index = ((value - self.min) / self.bucket_width()) as usize;
            let index = index.min(self.counts.len() - 1);
            self.counts[index] += 1;
        }
    }

    /// Records every value of a slice.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> f64 {
        self.min + i as f64 * self.bucket_width()
    }

    /// Approximate quantile (0 ≤ q ≤ 1) from the bucketed counts, taking the
    /// upper edge of the bucket where the cumulative count crosses `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let threshold = (q * self.total as f64).ceil() as u64;
        let mut cumulative = self.underflow;
        if cumulative >= threshold {
            return self.min;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= threshold {
                return self.bucket_start(i) + self.bucket_width();
            }
        }
        self.max
    }

    /// Renders an ASCII bar chart (one line per non-empty bucket).
    pub fn render(&self, max_bar_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as f64 / peak as f64) * max_bar_width as f64).ceil() as usize);
            out.push_str(&format!(
                "{:>8.1} - {:>8.1} | {:>8} {}\n",
                self.bucket_start(i),
                self.bucket_start(i) + self.bucket_width(),
                c,
                bar
            ));
        }
        if self.underflow > 0 {
            out.push_str(&format!("{:>21} | {:>8}\n", "< range", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>21} | {:>8}\n", ">= range", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fall_into_the_right_buckets() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(5.0); // bucket 0
        h.record(15.0); // bucket 1
        h.record(99.9); // bucket 9
        h.record(100.0); // overflow
        h.record(-1.0); // underflow
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn mean_and_quantiles_are_sensible() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.mean() - 50.0).abs() < 0.51);
        let median = h.quantile(0.5);
        assert!((45.0..=55.0).contains(&median), "median estimate {median}");
        let p95 = h.quantile(0.95);
        assert!((90.0..=100.0).contains(&p95), "p95 estimate {p95}");
        assert_eq!(h.quantile(0.0), 0.0, "the 0-quantile is the range minimum");
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn latency_preset_covers_the_paper_range() {
        let mut h = Histogram::for_latencies_ms();
        h.record_all(&[10.0, 255.0, 499.9]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.underflow(), 0);
        assert!((h.bucket_width() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn render_draws_bars_for_non_empty_buckets() {
        let mut h = Histogram::new(0.0, 30.0, 3);
        for _ in 0..4 {
            h.record(5.0);
        }
        h.record(25.0);
        let text = h.render(20);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_is_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty interval")]
    fn inverted_range_is_rejected() {
        let _ = Histogram::new(10.0, 0.0, 4);
    }
}
