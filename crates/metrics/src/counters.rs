//! Generic named counters.
//!
//! The simulation counts messages by kind (query forwards, responses, Bloom
//! updates, …) and events by category. [`CounterSet`] is a small generic
//! counter map that stays deterministic in its reporting order (keys are sorted
//! on export) and cheap to merge across repetitions.

use std::collections::BTreeMap;
use std::fmt::Debug;

use serde::{Deserialize, Serialize};

/// A set of named `u64` counters keyed by an ordered key type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSet<K: Ord> {
    counts: BTreeMap<K, u64>,
}

impl<K: Ord> Default for CounterSet<K> {
    fn default() -> Self {
        CounterSet {
            counts: BTreeMap::new(),
        }
    }
}

impl<K: Ord + Clone + Debug> CounterSet<K> {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to the counter for `key`.
    pub fn add(&mut self, key: K, amount: u64) {
        *self.counts.entry(key).or_insert(0) += amount;
    }

    /// Increments the counter for `key` by one.
    pub fn increment(&mut self, key: K) {
        self.add(key, 1);
    }

    /// The current value for `key` (0 if never touched).
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterator over `(key, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CounterSet<K>) {
        for (k, v) in other.iter() {
            self.add(k.clone(), v);
        }
    }

    /// Resets every counter.
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let mut c: CounterSet<&'static str> = CounterSet::new();
        assert!(c.is_empty());
        c.increment("query");
        c.increment("query");
        c.add("response", 5);
        assert_eq!(c.get(&"query"), 2);
        assert_eq!(c.get(&"response"), 5);
        assert_eq!(c.get(&"never"), 0);
        assert_eq!(c.total(), 7);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut c: CounterSet<String> = CounterSet::new();
        c.increment("zeta".to_string());
        c.increment("alpha".to_string());
        c.increment("mid".to_string());
        let keys: Vec<&String> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: CounterSet<u32> = CounterSet::new();
        a.add(1, 10);
        a.add(2, 1);
        let mut b: CounterSet<u32> = CounterSet::new();
        b.add(1, 5);
        b.add(3, 7);
        a.merge(&b);
        assert_eq!(a.get(&1), 15);
        assert_eq!(a.get(&2), 1);
        assert_eq!(a.get(&3), 7);
        assert_eq!(a.total(), 23);
    }

    #[test]
    fn clear_resets() {
        let mut c: CounterSet<u8> = CounterSet::new();
        c.increment(1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
    }
}
