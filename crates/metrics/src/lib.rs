//! # locaware-metrics — measurement and reporting
//!
//! The Locaware evaluation (§5) reports three metrics as a function of the
//! number of queries issued:
//!
//! 1. **Download distance** (Figure 2) — the average latency between the
//!    requestor and the provider it chooses for download,
//! 2. **Search traffic** (Figure 3) — "the total number of messages produced by
//!    a query in the P2P network",
//! 3. **Success rate** (Figure 4) — "the rate of queries successfully satisfied
//!    to all submitted queries".
//!
//! This crate holds the measurement plumbing shared by the simulation engine,
//! the experiment harness and the tests:
//!
//! * [`query_record`] — one record per issued query with everything the three
//!   figures need (plus diagnostics such as hop counts and locality matches),
//! * [`counters`] — generic named counters used for per-message-kind traffic
//!   accounting,
//! * [`aggregate`] — means, percentiles and confidence intervals,
//! * [`series`] — (x, y) series keyed by protocol label, the exact shape of the
//!   paper's figures,
//! * [`report`] — fixed-width text tables and CSV output used by the
//!   experiment binaries and EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod counters;
pub mod histogram;
pub mod query_record;
pub mod report;
pub mod series;

pub use aggregate::{mean, percentile, std_dev, Summary};
pub use counters::CounterSet;
pub use histogram::Histogram;
pub use query_record::{QueryOutcome, QueryRecord, RunMetrics};
pub use report::{format_table, to_csv, Table};
pub use series::{Figure, SeriesPoint};
