//! Basic statistical aggregation used by the figures and the tests.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (n − 1 denominator); 0.0 for fewer than 2 values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// The `p`-th percentile (0 ≤ p ≤ 100) using nearest-rank on a sorted copy.
/// Returns 0.0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile input must not contain NaN"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

/// A compact numeric summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample. All fields are 0 for an empty sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count: values.len(),
            mean: mean(values),
            std_dev: std_dev(values),
            min,
            median: percentile(values, 50.0),
            p95: percentile(values, 95.0),
            max,
        }
    }

    /// Half-width of the 95 % confidence interval of the mean (normal
    /// approximation, 1.96 σ/√n).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_of_known_sample() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample std dev of this classic example is ~2.138.
        assert!((std_dev(&v) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn percentiles_on_sorted_data() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 50.0) - 50.0).abs() <= 1.0);
        assert!((percentile(&v, 95.0) - 95.0).abs() <= 1.0);
        // Percentile is order-independent.
        let mut shuffled = v.clone();
        shuffled.reverse();
        assert_eq!(percentile(&shuffled, 95.0), percentile(&v, 95.0));
    }

    #[test]
    fn summary_is_internally_consistent() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        let s = Summary::of(&v);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 50.0);
        assert_eq!(s.median, 30.0);
        assert!((s.mean - 30.0).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
        assert!(s.min <= s.median && s.median <= s.max);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -10.0), 1.0);
        assert_eq!(percentile(&v, 1000.0), 3.0);
    }
}
