//! Figure series: metric values as a function of the number of queries, one
//! curve per protocol.
//!
//! Every figure in the paper plots one metric on the y-axis against "number of
//! queries" on the x-axis, with one curve per compared approach (Locaware,
//! Flooding, Dicas, Dicas-Keys). [`Figure`] is exactly that shape, and knows
//! how to render itself as an aligned text table or CSV so the experiment
//! binaries can print the same rows the paper plots.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One (x, y) point of a curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Number of queries issued (the x-axis of every figure).
    pub queries: u64,
    /// The metric value at that point.
    pub value: f64,
}

/// A figure: a named metric with one curve per protocol label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title, e.g. `"Figure 2: download distance (ms)"`.
    pub title: String,
    /// Name of the y-axis metric, e.g. `"avg download distance (ms)"`.
    pub metric: String,
    /// Curves keyed by protocol label, each a list of points in x order.
    curves: BTreeMap<String, Vec<SeriesPoint>>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>, metric: impl Into<String>) -> Self {
        Figure {
            title: title.into(),
            metric: metric.into(),
            curves: BTreeMap::new(),
        }
    }

    /// Creates an empty *degradation* figure: the metric as a function of a
    /// fault level instead of the query count. The x-axis reuses
    /// [`SeriesPoint::queries`] to carry the level in percent (0–100) — e.g.
    /// message-loss rate — so every lookup, reduction and rendering helper
    /// works unchanged; the title records the reinterpretation.
    pub fn degradation(fault_axis: &str, metric: impl Into<String>) -> Self {
        let metric = metric.into();
        Figure {
            title: format!("Degradation: {metric} vs {fault_axis} (%)"),
            metric,
            curves: BTreeMap::new(),
        }
    }

    /// Appends a point to the curve of `label`, keeping x order.
    pub fn push(&mut self, label: impl Into<String>, point: SeriesPoint) {
        let curve = self.curves.entry(label.into()).or_default();
        curve.push(point);
        curve.sort_by_key(|p| p.queries);
    }

    /// The labels present, in sorted order.
    pub fn labels(&self) -> Vec<&str> {
        self.curves.keys().map(|s| s.as_str()).collect()
    }

    /// The curve for `label`, if present.
    pub fn curve(&self, label: &str) -> Option<&[SeriesPoint]> {
        self.curves.get(label).map(|v| v.as_slice())
    }

    /// All distinct x values across curves, sorted.
    pub fn x_values(&self) -> Vec<u64> {
        let mut xs: Vec<u64> = self
            .curves
            .values()
            .flat_map(|c| c.iter().map(|p| p.queries))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        xs
    }

    /// The y value of `label` at exactly `queries`, if recorded.
    pub fn value_at(&self, label: &str, queries: u64) -> Option<f64> {
        self.curves
            .get(label)?
            .iter()
            .find(|p| p.queries == queries)
            .map(|p| p.value)
    }

    /// The mean y value of a curve across all its points.
    pub fn curve_mean(&self, label: &str) -> Option<f64> {
        let curve = self.curves.get(label)?;
        if curve.is_empty() {
            return None;
        }
        Some(curve.iter().map(|p| p.value).sum::<f64>() / curve.len() as f64)
    }

    /// Relative improvement of `a` over `b` averaged across common x values:
    /// `mean((b - a) / b)`. Positive means `a` is lower (better for costs).
    pub fn relative_reduction(&self, a: &str, b: &str) -> Option<f64> {
        let xs = self.x_values();
        let mut ratios = Vec::new();
        for x in xs {
            if let (Some(va), Some(vb)) = (self.value_at(a, x), self.value_at(b, x)) {
                if vb != 0.0 {
                    ratios.push((vb - va) / vb);
                }
            }
        }
        if ratios.is_empty() {
            None
        } else {
            Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
        }
    }

    /// Renders the figure as an aligned text table: one row per x value, one
    /// column per protocol.
    pub fn to_table(&self) -> String {
        let labels = self.labels();
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("# metric: {}\n", self.metric));
        out.push_str(&format!("{:>10}", "queries"));
        for l in &labels {
            out.push_str(&format!(" {:>16}", l));
        }
        out.push('\n');
        for x in self.x_values() {
            out.push_str(&format!("{x:>10}"));
            for l in &labels {
                match self.value_at(l, x) {
                    Some(v) => out.push_str(&format!(" {v:>16.4}")),
                    None => out.push_str(&format!(" {:>16}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the figure as CSV with a `queries` column followed by one column
    /// per protocol.
    pub fn to_csv(&self) -> String {
        let labels = self.labels();
        let mut out = String::new();
        out.push_str("queries");
        for l in &labels {
            out.push(',');
            out.push_str(l);
        }
        out.push('\n');
        for x in self.x_values() {
            out.push_str(&x.to_string());
            for l in &labels {
                out.push(',');
                if let Some(v) = self.value_at(l, x) { out.push_str(&format!("{v:.6}")) }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut fig = Figure::new("Figure 3: search traffic", "messages per query");
        for (q, flood, loca) in [(1000u64, 800.0, 15.0), (2000, 810.0, 14.0), (3000, 805.0, 13.0)] {
            fig.push("flooding", SeriesPoint { queries: q, value: flood });
            fig.push("locaware", SeriesPoint { queries: q, value: loca });
        }
        fig
    }

    #[test]
    fn points_are_kept_in_x_order() {
        let mut fig = Figure::new("t", "m");
        fig.push("a", SeriesPoint { queries: 300, value: 3.0 });
        fig.push("a", SeriesPoint { queries: 100, value: 1.0 });
        fig.push("a", SeriesPoint { queries: 200, value: 2.0 });
        let xs: Vec<u64> = fig.curve("a").unwrap().iter().map(|p| p.queries).collect();
        assert_eq!(xs, vec![100, 200, 300]);
        assert_eq!(fig.x_values(), vec![100, 200, 300]);
    }

    #[test]
    fn value_lookup_and_means() {
        let fig = sample_figure();
        assert_eq!(fig.value_at("flooding", 2000), Some(810.0));
        assert_eq!(fig.value_at("flooding", 9999), None);
        assert_eq!(fig.value_at("nope", 1000), None);
        assert!((fig.curve_mean("locaware").unwrap() - 14.0).abs() < 1e-12);
        assert_eq!(fig.curve_mean("nope"), None);
    }

    #[test]
    fn relative_reduction_matches_the_paper_style_claim() {
        let fig = sample_figure();
        // Locaware cuts ~98% of flooding traffic in this synthetic sample.
        let r = fig.relative_reduction("locaware", "flooding").unwrap();
        assert!(r > 0.97 && r < 1.0, "reduction {r}");
        assert_eq!(fig.relative_reduction("locaware", "absent"), None);
    }

    #[test]
    fn table_and_csv_render_every_point() {
        let fig = sample_figure();
        let table = fig.to_table();
        assert!(table.contains("Figure 3"));
        assert!(table.contains("flooding"));
        assert!(table.contains("locaware"));
        assert!(table.lines().count() >= 3 + 3);
        let csv = fig.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "queries,flooding,locaware");
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("2000,810.000000,14.000000"));
    }

    #[test]
    fn degradation_figures_reuse_the_series_machinery() {
        let mut fig = Figure::degradation("message loss", "success rate");
        assert!(fig.title.contains("message loss"));
        assert!(fig.title.contains("success rate"));
        for (loss_pct, flood, loca) in [(0u64, 0.95, 0.97), (5, 0.80, 0.90), (10, 0.60, 0.82)] {
            fig.push("flooding", SeriesPoint { queries: loss_pct, value: flood });
            fig.push("locaware", SeriesPoint { queries: loss_pct, value: loca });
        }
        assert_eq!(fig.x_values(), vec![0, 5, 10]);
        assert_eq!(fig.value_at("locaware", 5), Some(0.90));
        // Success is a benefit, not a cost: locaware retaining more of it
        // shows up as a *negative* reduction relative to flooding.
        assert!(fig.relative_reduction("locaware", "flooding").unwrap() < 0.0);
    }

    #[test]
    fn labels_are_sorted() {
        let mut fig = Figure::new("t", "m");
        fig.push("zeta", SeriesPoint { queries: 1, value: 0.0 });
        fig.push("alpha", SeriesPoint { queries: 1, value: 0.0 });
        assert_eq!(fig.labels(), vec!["alpha", "zeta"]);
    }
}
