//! Plain-text tables and CSV output.
//!
//! The experiment binaries print their results both as aligned tables (for the
//! terminal and EXPERIMENTS.md) and as CSV (for external plotting). [`Table`]
//! is a tiny column-aligned table builder used for anything that is not a
//! per-figure series (parameter listings, summary comparisons, ablations).

use serde::{Deserialize, Serialize};

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty cells;
    /// longer rows are truncated to the header width.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        format_table(&self.headers, &self.rows)
    }

    /// Renders the table as CSV.
    pub fn render_csv(&self) -> String {
        to_csv(&self.headers, &self.rows)
    }
}

/// Formats headers and rows as an aligned text table.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(widths.len()) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(headers, &widths));
    out.push('\n');
    let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&render_row(&separator, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats headers and rows as CSV, quoting cells that contain commas.
pub fn to_csv(headers: &[String], rows: &[Vec<String>]) -> String {
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["protocol", "success rate", "messages"]);
        t.push_row(["locaware", "0.82", "14.2"]);
        t.push_row(["flooding", "0.97", "803.1"]);
        t
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1"]);
        t.push_row(["1", "2", "3"]);
        assert_eq!(t.rows()[0], vec!["1".to_string(), String::new()]);
        assert_eq!(t.rows()[1], vec!["1".to_string(), "2".to_string()]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rendering_aligns_columns() {
        let rendered = sample().render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("protocol"));
        assert!(lines[1].starts_with("--------"));
        // Columns align: "success rate" column starts at the same offset everywhere.
        let offset = lines[0].find("success rate").unwrap();
        assert_eq!(lines[2].find("0.82").unwrap(), offset);
        assert_eq!(lines[3].find("0.97").unwrap(), offset);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["name", "note"]);
        t.push_row(["a,b", "say \"hi\""]);
        let csv = t.render_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(["x", "y"]);
        assert!(t.is_empty());
        let rendered = t.render();
        assert_eq!(rendered.lines().count(), 2);
        assert_eq!(t.render_csv().lines().count(), 1);
    }
}
