//! Per-query measurement records and their aggregation over a run.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::aggregate::Summary;

/// How a query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// At least one response reached the requestor (the file was located).
    Satisfied,
    /// No response reached the requestor before the run ended.
    Unsatisfied,
}

/// Everything measured about one issued query.
///
/// Durations are stored as milliseconds so this crate stays independent of the
/// simulation-time type; the engine converts when it records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Ordinal of the query within the run (0-based issue order).
    pub index: u64,
    /// The issuing peer.
    pub requestor: u32,
    /// Whether the query was satisfied.
    pub outcome: QueryOutcome,
    /// Total number of overlay messages this query caused (forwarded query
    /// copies plus response hops) — the paper's "search traffic" unit.
    pub messages: u64,
    /// One-way latency in milliseconds from the requestor to the provider it
    /// selected for download (the paper's "download distance"), if satisfied.
    pub download_distance_ms: Option<f64>,
    /// True if the selected provider shares the requestor's locId.
    pub locality_match: bool,
    /// Number of distinct providers offered to the requestor across responses.
    pub providers_offered: usize,
    /// Overlay hops from the requestor to the peer that produced the first hit.
    pub hops_to_hit: Option<u32>,
    /// True if the first hit came from a response index (cache) rather than a
    /// peer's own file store.
    pub answered_from_cache: bool,
    /// Milliseconds from issue until the query's *last* in-flight message was
    /// consumed — the exact end of its lifecycle, not an upper bound. `None`
    /// only when the run was truncated (event budget) before the query
    /// finished travelling.
    pub completion_time_ms: Option<f64>,
}

impl QueryRecord {
    /// True if the query was satisfied.
    pub fn is_success(&self) -> bool {
        self.outcome == QueryOutcome::Satisfied
    }
}

/// Aggregated metrics over a run (or a prefix of one).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    records: Vec<QueryRecord>,
}

impl RunMetrics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds directly from records.
    pub fn from_records(records: Vec<QueryRecord>) -> Self {
        RunMetrics { records }
    }

    /// Adds one record.
    pub fn push(&mut self, record: QueryRecord) {
        self.records.push(record);
    }

    /// All records, in issue order.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Number of queries recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no queries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Figure 4 metric: satisfied queries / all queries, in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.is_success()).count() as f64 / self.records.len() as f64
    }

    /// Figure 3 metric: average number of messages per query.
    pub fn avg_messages_per_query(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.messages as f64).sum::<f64>() / self.records.len() as f64
    }

    /// Figure 2 metric: average download distance in milliseconds over
    /// *satisfied* queries (unsatisfied queries download nothing).
    pub fn avg_download_distance_ms(&self) -> f64 {
        let distances: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.download_distance_ms)
            .collect();
        crate::aggregate::mean(&distances)
    }

    /// Summary statistics of the download distances.
    pub fn download_distance_summary(&self) -> Summary {
        let distances: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.download_distance_ms)
            .collect();
        Summary::of(&distances)
    }

    /// Fraction of satisfied queries whose chosen provider shares the
    /// requestor's locId.
    pub fn locality_match_rate(&self) -> f64 {
        let satisfied: Vec<&QueryRecord> =
            self.records.iter().filter(|r| r.is_success()).collect();
        if satisfied.is_empty() {
            return 0.0;
        }
        satisfied.iter().filter(|r| r.locality_match).count() as f64 / satisfied.len() as f64
    }

    /// Fraction of satisfied queries answered from a response index rather than
    /// a file store.
    pub fn cache_hit_share(&self) -> f64 {
        let satisfied: Vec<&QueryRecord> =
            self.records.iter().filter(|r| r.is_success()).collect();
        if satisfied.is_empty() {
            return 0.0;
        }
        satisfied.iter().filter(|r| r.answered_from_cache).count() as f64 / satisfied.len() as f64
    }

    /// Average query completion time in milliseconds — issue to the
    /// consumption of the query's last in-flight message — over queries whose
    /// lifecycle finished within the run.
    pub fn avg_completion_time_ms(&self) -> f64 {
        let times: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.completion_time_ms)
            .collect();
        crate::aggregate::mean(&times)
    }

    /// Average number of providers offered per satisfied query.
    pub fn avg_providers_offered(&self) -> f64 {
        let offered: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.is_success())
            .map(|r| r.providers_offered as f64)
            .collect();
        crate::aggregate::mean(&offered)
    }

    /// Metrics restricted to the first `n` queries (used to trace how metrics
    /// evolve "with the number of queries", the x-axis of every figure).
    pub fn prefix(&self, n: usize) -> RunMetrics {
        RunMetrics {
            records: self.records.iter().take(n).cloned().collect(),
        }
    }

    /// Metrics over the trailing window of `n` queries (used for the
    /// "improvement over time" analysis of Figure 2).
    pub fn tail_window(&self, n: usize) -> RunMetrics {
        let start = self.records.len().saturating_sub(n);
        RunMetrics {
            records: self.records[start..].to_vec(),
        }
    }

    /// Merges another run's records into this one (in issue order of each).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.records.extend(other.records.iter().cloned());
    }
}

/// A thread-safe sink used when sweep points run in parallel worker threads.
#[derive(Debug, Clone, Default)]
pub struct SharedMetrics {
    inner: Arc<Mutex<RunMetrics>>,
}

impl SharedMetrics {
    /// Creates an empty shared sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query.
    pub fn push(&self, record: QueryRecord) {
        self.inner.lock().push(record);
    }

    /// Takes a snapshot of the current contents.
    pub fn snapshot(&self) -> RunMetrics {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: u64, success: bool, messages: u64, dist: Option<f64>) -> QueryRecord {
        QueryRecord {
            index,
            requestor: 0,
            outcome: if success {
                QueryOutcome::Satisfied
            } else {
                QueryOutcome::Unsatisfied
            },
            messages,
            download_distance_ms: dist,
            locality_match: dist.map(|d| d < 100.0).unwrap_or(false),
            providers_offered: if success { 2 } else { 0 },
            hops_to_hit: if success { Some(3) } else { None },
            answered_from_cache: success && index.is_multiple_of(2),
            completion_time_ms: Some(40.0 + index as f64),
        }
    }

    #[test]
    fn success_rate_counts_satisfied_fraction() {
        let m = RunMetrics::from_records(vec![
            record(0, true, 10, Some(50.0)),
            record(1, false, 20, None),
            record(2, true, 10, Some(150.0)),
            record(3, true, 10, Some(250.0)),
        ]);
        assert!((m.success_rate() - 0.75).abs() < 1e-12);
        assert!((m.avg_messages_per_query() - 12.5).abs() < 1e-12);
        assert!((m.avg_download_distance_ms() - 150.0).abs() < 1e-12);
        assert!((m.avg_completion_time_ms() - 41.5).abs() < 1e-12);
    }

    #[test]
    fn completion_time_skips_truncated_queries() {
        let mut truncated = record(1, false, 2, None);
        truncated.completion_time_ms = None;
        let m = RunMetrics::from_records(vec![record(0, true, 5, Some(50.0)), truncated]);
        assert!((m.avg_completion_time_ms() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::new();
        assert_eq!(m.success_rate(), 0.0);
        assert_eq!(m.avg_messages_per_query(), 0.0);
        assert_eq!(m.avg_download_distance_ms(), 0.0);
        assert_eq!(m.locality_match_rate(), 0.0);
        assert_eq!(m.cache_hit_share(), 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn download_distance_ignores_unsatisfied_queries() {
        let m = RunMetrics::from_records(vec![
            record(0, true, 5, Some(100.0)),
            record(1, false, 50, None),
        ]);
        assert_eq!(m.avg_download_distance_ms(), 100.0);
        let s = m.download_distance_summary();
        assert_eq!(s.count, 1);
    }

    #[test]
    fn locality_and_cache_rates_are_over_satisfied_queries_only() {
        let m = RunMetrics::from_records(vec![
            record(0, true, 5, Some(50.0)),   // locality match, cache (idx 0 even)
            record(1, true, 5, Some(400.0)),  // no locality match, no cache
            record(2, false, 5, None),
        ]);
        assert!((m.locality_match_rate() - 0.5).abs() < 1e-12);
        assert!((m.cache_hit_share() - 0.5).abs() < 1e-12);
        assert!((m.avg_providers_offered() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_and_tail_windows() {
        let m = RunMetrics::from_records((0..10).map(|i| record(i, i >= 5, 1, None)).collect());
        assert_eq!(m.prefix(5).success_rate(), 0.0);
        assert_eq!(m.tail_window(5).success_rate(), 1.0);
        assert_eq!(m.prefix(100).len(), 10);
        assert_eq!(m.tail_window(100).len(), 10);
    }

    #[test]
    fn merge_concatenates_records() {
        let mut a = RunMetrics::from_records(vec![record(0, true, 1, Some(10.0))]);
        let b = RunMetrics::from_records(vec![record(1, false, 2, None)]);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.success_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_sink_collects_across_clones() {
        let sink = SharedMetrics::new();
        let clone = sink.clone();
        sink.push(record(0, true, 1, Some(5.0)));
        clone.push(record(1, true, 1, Some(7.0)));
        assert_eq!(sink.snapshot().len(), 2);
    }
}
