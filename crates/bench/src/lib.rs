//! # locaware-bench — experiment harness for the paper's figures
//!
//! The Locaware evaluation (§5.2) reports three figures, each plotting a metric
//! against the number of queries for four approaches (Locaware, Flooding,
//! Dicas, Dicas-Keys):
//!
//! * **Figure 2** — average download distance,
//! * **Figure 3** — search traffic (messages per query),
//! * **Figure 4** — success rate.
//!
//! [`Sweep`] runs the full grid (protocol × query count × repetition) over
//! identical substrates and produces all three figures in one pass, since every
//! run measures all three metrics anyway. The experiment binaries
//! (`fig2`, `fig3`, `fig4`, `run_all`) print one figure each (or all), both as
//! an aligned table and as CSV, and the Criterion benchmarks reuse the same
//! harness at a reduced scale.
//!
//! `Sweep` is a thin figure-producing front end over the core experiment API
//! ([`locaware::experiment`]): it assembles an [`ExperimentPlan`] and hands
//! it to a [`Runner`], which builds the substrate of each
//! (scenario, repetition) point exactly once, shares it immutably across all
//! protocols and query counts, and steals grid tasks from a shared queue on
//! scoped worker threads. Repetitions use distinct derived seeds and the
//! reported value is the mean across repetitions; each grid point is fully
//! deterministic (and bit-identical for every engine shard count, so
//! `SimulationConfig::shards` is purely a performance knob here too).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use locaware::{
    ExperimentPlan, ExperimentPoint, Figure, ProtocolKind, Runner, Scenario, SeriesPoint,
    SimulationConfig, SimulationReport,
};
use locaware_metrics::Table;

/// Which metric a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Figure 2: average download distance in milliseconds.
    DownloadDistance,
    /// Figure 3: average messages per query.
    SearchTraffic,
    /// Figure 4: fraction of satisfied queries.
    SuccessRate,
}

impl MetricKind {
    /// The metric's value in a finished report.
    pub fn extract(self, report: &SimulationReport) -> f64 {
        match self {
            MetricKind::DownloadDistance => report.avg_download_distance_ms(),
            MetricKind::SearchTraffic => report.avg_messages_per_query(),
            MetricKind::SuccessRate => report.success_rate(),
        }
    }

    /// Human-readable axis label.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::DownloadDistance => "avg download distance (ms)",
            MetricKind::SearchTraffic => "messages per query",
            MetricKind::SuccessRate => "success rate",
        }
    }

    /// The figure number in the paper.
    pub fn figure_number(self) -> u32 {
        match self {
            MetricKind::DownloadDistance => 2,
            MetricKind::SearchTraffic => 3,
            MetricKind::SuccessRate => 4,
        }
    }

    /// Figure title, e.g. `"Figure 2: comparison of download distance"`.
    pub fn title(self) -> String {
        let name = match self {
            MetricKind::DownloadDistance => "download distance",
            MetricKind::SearchTraffic => "search traffic",
            MetricKind::SuccessRate => "success rate",
        };
        format!("Figure {}: comparison of {}", self.figure_number(), name)
    }
}

/// The full experiment grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// Base configuration (the paper's defaults unless scaled down).
    pub config: SimulationConfig,
    /// Protocols to compare (defaults to the paper's four).
    pub protocols: Vec<ProtocolKind>,
    /// Query counts forming the x-axis.
    pub query_counts: Vec<usize>,
    /// Independent repetitions (distinct seeds) averaged per point.
    pub repetitions: usize,
    /// Worker threads for independent grid points.
    pub threads: usize,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::paper_scale()
    }
}

impl Sweep {
    /// The paper-scale sweep: 1000 peers, query counts from 500 to 5000.
    pub fn paper_scale() -> Self {
        Sweep {
            config: SimulationConfig::paper_defaults(),
            protocols: ProtocolKind::PAPER_SET.to_vec(),
            query_counts: vec![500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000],
            repetitions: 1,
            threads: default_threads(),
        }
    }

    /// A scaled-down sweep that finishes in seconds; used by the Criterion
    /// benchmarks, the examples and CI-style smoke runs.
    pub fn quick() -> Self {
        Sweep {
            config: SimulationConfig::small(200),
            protocols: ProtocolKind::PAPER_SET.to_vec(),
            query_counts: vec![200, 400, 600, 800],
            repetitions: 1,
            threads: default_threads(),
        }
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The sweep expressed as a core [`ExperimentPlan`]: one scenario wrapping
    /// the base configuration, the sweep's protocols, query counts and
    /// repetitions.
    ///
    /// # Panics
    /// Panics if the base configuration does not validate; sweep configs come
    /// from presets or the CLI parser, both of which produce consistent ones.
    pub fn plan(&self) -> ExperimentPlan {
        let scenario = Scenario::from_config("sweep", self.config.clone())
            .expect("sweep configuration must validate");
        ExperimentPlan::new()
            .scenario(scenario)
            .protocols(self.protocols.iter().copied())
            .query_counts(self.query_counts.iter().copied())
            .repetitions(self.repetitions)
    }

    /// Runs the whole grid and collects the three figures.
    ///
    /// Execution is delegated to the core [`Runner`]: the substrate of each
    /// repetition is built exactly once and shared across every protocol and
    /// query count, so all curves of one repetition are measured over the
    /// identical system.
    ///
    /// # Panics
    /// Panics if the sweep has no protocols, no query counts or zero
    /// repetitions (an empty grid is a programming error in the caller).
    pub fn run(&self) -> SweepOutcome {
        let outcome = Runner::new()
            .with_threads(self.threads)
            .run(&self.plan())
            .expect("sweep grid must list protocols, query counts and repetitions");
        SweepOutcome::from_points(outcome.points.iter().map(PointResult::from_point).collect())
    }
}

fn default_threads() -> usize {
    Runner::default_thread_count()
}

/// One (protocol, query count, repetition) measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointResult {
    /// The protocol evaluated.
    pub protocol: ProtocolKind,
    /// Number of queries issued.
    pub queries: usize,
    /// Repetition index.
    pub repetition: usize,
    /// Figure 2 metric.
    pub download_distance_ms: f64,
    /// Figure 3 metric.
    pub messages_per_query: f64,
    /// Figure 4 metric.
    pub success_rate: f64,
    /// Diagnostic: locality match rate.
    pub locality_match_rate: f64,
    /// Diagnostic: cache hit share.
    pub cache_hit_share: f64,
}

/// The aggregated outcome of a sweep: all three figures plus the raw points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Raw per-point measurements (every repetition).
    pub points: Vec<PointResult>,
}

impl PointResult {
    /// Extracts the figure metrics from one experiment grid point.
    fn from_point(point: &ExperimentPoint) -> Self {
        PointResult {
            protocol: point.protocol,
            queries: point.queries,
            repetition: point.repetition,
            download_distance_ms: point.report.avg_download_distance_ms(),
            messages_per_query: point.report.avg_messages_per_query(),
            success_rate: point.report.success_rate(),
            locality_match_rate: point.report.locality_match_rate(),
            cache_hit_share: point.report.cache_hit_share(),
        }
    }
}

impl SweepOutcome {
    fn from_points(mut points: Vec<PointResult>) -> Self {
        points.sort_by_key(|p| (p.queries, p.protocol.label().to_string(), p.repetition));
        SweepOutcome { points }
    }

    /// Builds the figure for `metric`, averaging repetitions per point.
    pub fn figure(&self, metric: MetricKind) -> Figure {
        let mut grouped: BTreeMap<(String, u64), Vec<f64>> = BTreeMap::new();
        for p in &self.points {
            let value = match metric {
                MetricKind::DownloadDistance => p.download_distance_ms,
                MetricKind::SearchTraffic => p.messages_per_query,
                MetricKind::SuccessRate => p.success_rate,
            };
            grouped
                .entry((p.protocol.label().to_string(), p.queries as u64))
                .or_default()
                .push(value);
        }
        let mut figure = Figure::new(metric.title(), metric.label());
        for ((label, queries), values) in grouped {
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            figure.push(label, SeriesPoint { queries, value: mean });
        }
        figure
    }

    /// All three figures.
    pub fn figures(&self) -> [Figure; 3] {
        [
            self.figure(MetricKind::DownloadDistance),
            self.figure(MetricKind::SearchTraffic),
            self.figure(MetricKind::SuccessRate),
        ]
    }

    /// A paper-style headline comparison: mean metric per protocol across the
    /// whole sweep, plus the headline ratios the paper quotes.
    pub fn headline_table(&self) -> Table {
        let mut table = Table::new([
            "protocol",
            "avg download distance (ms)",
            "messages / query",
            "success rate",
            "locality match",
            "cache hit share",
        ]);
        let mut by_protocol: BTreeMap<String, Vec<&PointResult>> = BTreeMap::new();
        for p in &self.points {
            by_protocol.entry(p.protocol.label().to_string()).or_default().push(p);
        }
        for (label, points) in by_protocol {
            let n = points.len() as f64;
            let dd = points.iter().map(|p| p.download_distance_ms).sum::<f64>() / n;
            let mq = points.iter().map(|p| p.messages_per_query).sum::<f64>() / n;
            let sr = points.iter().map(|p| p.success_rate).sum::<f64>() / n;
            let lm = points.iter().map(|p| p.locality_match_rate).sum::<f64>() / n;
            let ch = points.iter().map(|p| p.cache_hit_share).sum::<f64>() / n;
            table.push_row([
                label,
                format!("{dd:.2}"),
                format!("{mq:.2}"),
                format!("{sr:.4}"),
                format!("{lm:.4}"),
                format!("{ch:.4}"),
            ]);
        }
        table
    }

    /// The paper's headline claims, computed from this sweep:
    /// (download-distance reduction vs best baseline, traffic reduction vs
    /// flooding, success-rate gain vs Dicas, success-rate gain vs Dicas-Keys).
    pub fn paper_claims(&self) -> PaperClaims {
        let fig2 = self.figure(MetricKind::DownloadDistance);
        let fig3 = self.figure(MetricKind::SearchTraffic);
        let fig4 = self.figure(MetricKind::SuccessRate);

        // The paper compares Locaware's download distance against "the other
        // approaches" collectively; average the three baselines at each x
        // before computing the reduction so a single baseline's early-run
        // artefacts (e.g. Dicas' few, nearby-only successes) do not dominate.
        let baselines = ["flooding", "dicas", "dicas-keys"];
        let mut reductions = Vec::new();
        for x in fig2.x_values() {
            let baseline_values: Vec<f64> = baselines
                .iter()
                .filter_map(|b| fig2.value_at(b, x))
                .collect();
            if baseline_values.is_empty() {
                continue;
            }
            let baseline_mean = baseline_values.iter().sum::<f64>() / baseline_values.len() as f64;
            if let Some(locaware) = fig2.value_at("locaware", x) {
                if baseline_mean > 0.0 {
                    reductions.push((baseline_mean - locaware) / baseline_mean);
                }
            }
        }
        let distance_reduction = if reductions.is_empty() {
            f64::NAN
        } else {
            reductions.iter().sum::<f64>() / reductions.len() as f64
        };
        let traffic_reduction = fig3.relative_reduction("locaware", "flooding").unwrap_or(f64::NAN);
        let success_gain_vs_dicas = relative_gain(&fig4, "locaware", "dicas");
        let success_gain_vs_dicas_keys = relative_gain(&fig4, "locaware", "dicas-keys");

        PaperClaims {
            distance_reduction_vs_baselines: distance_reduction,
            traffic_reduction_vs_flooding: traffic_reduction,
            success_gain_vs_dicas,
            success_gain_vs_dicas_keys,
        }
    }
}

/// Relative gain of curve `a` over curve `b` averaged over common x values:
/// `mean((a - b) / b)`. Positive means `a` is higher (better for success rate).
fn relative_gain(figure: &Figure, a: &str, b: &str) -> f64 {
    let mut gains = Vec::new();
    for x in figure.x_values() {
        if let (Some(va), Some(vb)) = (figure.value_at(a, x), figure.value_at(b, x)) {
            if vb != 0.0 {
                gains.push((va - vb) / vb);
            }
        }
    }
    if gains.is_empty() {
        f64::NAN
    } else {
        gains.iter().sum::<f64>() / gains.len() as f64
    }
}

/// The headline quantities §5.2 quotes, recomputed from a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperClaims {
    /// Paper: "decreased by about 14% compared to the other approaches"
    /// (computed against the mean of the three baselines).
    pub distance_reduction_vs_baselines: f64,
    /// Paper: "outperforms flooding by 98% in terms of search traffic reduction".
    pub traffic_reduction_vs_flooding: f64,
    /// Paper: "increases hit ratio by 23% wrt. Dicas".
    pub success_gain_vs_dicas: f64,
    /// Paper: "and 33% wrt. Dicas-keys".
    pub success_gain_vs_dicas_keys: f64,
}

impl PaperClaims {
    /// Renders the claims next to the paper's numbers.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["claim", "paper", "this reproduction"]);
        t.push_row([
            "download distance reduction (Locaware vs other approaches)".to_string(),
            "~14%".to_string(),
            format!("{:.1}%", self.distance_reduction_vs_baselines * 100.0),
        ]);
        t.push_row([
            "search traffic reduction vs flooding".to_string(),
            "~98%".to_string(),
            format!("{:.1}%", self.traffic_reduction_vs_flooding * 100.0),
        ]);
        t.push_row([
            "success rate gain vs Dicas".to_string(),
            "+23%".to_string(),
            format!("{:+.1}%", self.success_gain_vs_dicas * 100.0),
        ]);
        t.push_row([
            "success rate gain vs Dicas-Keys".to_string(),
            "+33%".to_string(),
            format!("{:+.1}%", self.success_gain_vs_dicas_keys * 100.0),
        ]);
        t
    }
}

/// Parses the common command-line options of the experiment binaries.
///
/// Supported flags: `--quick` (scaled-down run), `--scenario NAME` (a named
/// preset: `paper-defaults`, `small`, `flash-crowd`, `churn-storm`,
/// `regional-hotspot`), `--peers N`, `--queries a,b,c`, `--reps N`,
/// `--seed N`, `--threads N`, `--csv` (print CSV instead of a table).
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// The sweep to run.
    pub sweep: Sweep,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

/// The usage line shared by the experiment binaries.
pub const CLI_USAGE: &str = "[--quick] [--scenario NAME] [--peers N] [--queries a,b,c] \
                             [--reps N] [--seed N] [--threads N] [--csv]";

impl CliOptions {
    /// Parses `std::env::args`-style arguments (excluding the program name).
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut quick = false;
        let mut csv = false;
        let mut scenario: Option<String> = None;
        let mut peers: Option<usize> = None;
        let mut queries: Option<Vec<usize>> = None;
        let mut reps: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut threads: Option<usize> = None;

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--csv" => csv = true,
                "--scenario" => {
                    scenario = Some(next_value(&args, &mut i)?);
                }
                "--peers" => {
                    let value = next_value(&args, &mut i)?;
                    peers = Some(value.parse().map_err(|_| format!("bad --peers {value}"))?);
                }
                "--queries" => {
                    let value = next_value(&args, &mut i)?;
                    let counts: Result<Vec<usize>, _> =
                        value.split(',').map(|s| s.trim().parse::<usize>()).collect();
                    queries = Some(counts.map_err(|_| format!("bad --queries {value}"))?);
                }
                "--reps" => {
                    let value = next_value(&args, &mut i)?;
                    reps = Some(value.parse().map_err(|_| format!("bad --reps {value}"))?);
                }
                "--seed" => {
                    let value = next_value(&args, &mut i)?;
                    seed = Some(value.parse().map_err(|_| format!("bad --seed {value}"))?);
                }
                "--threads" => {
                    let value = next_value(&args, &mut i)?;
                    threads = Some(value.parse().map_err(|_| format!("bad --threads {value}"))?);
                }
                other => return Err(format!("unknown option {other}")),
            }
            i += 1;
        }

        let mut sweep = if quick { Sweep::quick() } else { Sweep::paper_scale() };
        if let Some(name) = scenario {
            let scale = peers.unwrap_or(sweep.config.peers);
            let preset = Scenario::preset(&name, scale).ok_or_else(|| {
                format!(
                    "unknown scenario {name}; presets: {}",
                    Scenario::PRESET_NAMES.join(", ")
                )
            })?;
            sweep.config = preset.config().clone();
        } else if let Some(peers) = peers {
            sweep.config = SimulationConfig {
                seed: sweep.config.seed,
                ..SimulationConfig::small(peers)
            };
        }
        if let Some(counts) = queries {
            sweep.query_counts = counts;
        }
        if let Some(reps) = reps {
            sweep.repetitions = reps;
        }
        if let Some(seed) = seed {
            sweep.config.seed = seed;
        }
        if let Some(threads) = threads {
            sweep.threads = threads;
        }
        if sweep.query_counts.is_empty() || sweep.repetitions == 0 {
            return Err("sweep must have at least one query count and one repetition".into());
        }
        Ok(CliOptions { sweep, csv })
    }
}

fn next_value(args: &[String], i: &mut usize) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
}

pub mod trajectory {
    //! Reading the committed `BENCH_prN.json` trajectory points.
    //!
    //! Every performance PR lands a `BENCH_prN.json` at the repository root.
    //! Since PR 4 each file carries a standardised `"trajectory"` object —
    //! flat `name → milliseconds/seconds` pairs for the fixed reference
    //! workloads — so consecutive files are directly comparable. The
    //! `bench_diff` binary diffs the last two files' trajectories and fails
    //! CI on a >10% regression.
    //!
    //! The offline build has no `serde_json` (the vendored `serde` shims
    //! expand derives to nothing), so this module includes a minimal JSON
    //! reader: objects, arrays, strings (no escapes beyond `\"`, `\\`, `\/`,
    //! `\n`, `\t`), numbers, booleans and null — ample for the bench files we
    //! write ourselves.

    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number, as `f64`.
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, keys sorted.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// The object entry at `key`, if this is an object holding it.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(map) => map.get(key),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        let value = parse_value(&bytes, &mut pos)?;
        skip_whitespace(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at offset {pos}"));
        }
        Ok(value)
    }

    /// The flat `"trajectory"` table of a bench file: metric name → value.
    /// Non-numeric entries (e.g. a `"note"`) are skipped.
    pub fn of_bench_file(document: &Value) -> BTreeMap<String, f64> {
        let mut table = BTreeMap::new();
        if let Some(Value::Object(entries)) = document.get("trajectory") {
            for (name, value) in entries {
                if let Some(number) = value.as_number() {
                    table.insert(name.clone(), number);
                }
            }
        }
        table
    }

    fn skip_whitespace(chars: &[char], pos: &mut usize) {
        while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
            *pos += 1;
        }
    }

    fn parse_value(chars: &[char], pos: &mut usize) -> Result<Value, String> {
        skip_whitespace(chars, pos);
        match chars.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some('{') => {
                *pos += 1;
                let mut map = BTreeMap::new();
                skip_whitespace(chars, pos);
                if chars.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    skip_whitespace(chars, pos);
                    let Value::String(key) = parse_value(chars, pos)? else {
                        return Err(format!("object key must be a string at offset {pos}"));
                    };
                    skip_whitespace(chars, pos);
                    if chars.get(*pos) != Some(&':') {
                        return Err(format!("expected ':' at offset {pos}"));
                    }
                    *pos += 1;
                    let value = parse_value(chars, pos)?;
                    map.insert(key, value);
                    skip_whitespace(chars, pos);
                    match chars.get(*pos) {
                        Some(',') => *pos += 1,
                        Some('}') => {
                            *pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                    }
                }
            }
            Some('[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_whitespace(chars, pos);
                if chars.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(chars, pos)?);
                    skip_whitespace(chars, pos);
                    match chars.get(*pos) {
                        Some(',') => *pos += 1,
                        Some(']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                    }
                }
            }
            Some('"') => {
                *pos += 1;
                let mut s = String::new();
                loop {
                    match chars.get(*pos) {
                        None => return Err("unterminated string".to_string()),
                        Some('"') => {
                            *pos += 1;
                            return Ok(Value::String(s));
                        }
                        Some('\\') => {
                            *pos += 1;
                            match chars.get(*pos) {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('/') => s.push('/'),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                other => {
                                    return Err(format!("unsupported escape {other:?}"));
                                }
                            }
                            *pos += 1;
                        }
                        Some(&c) => {
                            s.push(c);
                            *pos += 1;
                        }
                    }
                }
            }
            Some('t') if chars[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some('f') if chars[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some('n') if chars[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while chars
                    .get(*pos)
                    .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
                {
                    *pos += 1;
                }
                let literal: String = chars[start..*pos].iter().collect();
                literal
                    .parse::<f64>()
                    .map(Value::Number)
                    .map_err(|_| format!("invalid number {literal:?} at offset {start}"))
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_a_bench_file_shape() {
            let text = r#"{
                "pr": 4,
                "note": "hello \"world\"",
                "trajectory": {
                    "locaware_ms": 67.5,
                    "flooding_ms": 340.4,
                    "note": "not a number",
                    "suite_s": 0.37
                },
                "nested": {"list": [1, -2.5, 3e2, true, null]}
            }"#;
            let document = parse(text).expect("valid JSON");
            let table = of_bench_file(&document);
            assert_eq!(table.len(), 3, "non-numeric entries are skipped");
            assert_eq!(table["locaware_ms"], 67.5);
            assert_eq!(table["flooding_ms"], 340.4);
            assert_eq!(table["suite_s"], 0.37);
            assert_eq!(
                document.get("nested").and_then(|n| n.get("list")),
                Some(&Value::Array(vec![
                    Value::Number(1.0),
                    Value::Number(-2.5),
                    Value::Number(300.0),
                    Value::Bool(true),
                    Value::Null,
                ]))
            );
        }

        #[test]
        fn files_without_a_trajectory_yield_an_empty_table() {
            let document = parse(r#"{"pr": 3}"#).unwrap();
            assert!(of_bench_file(&document).is_empty());
        }

        #[test]
        fn malformed_documents_are_rejected() {
            assert!(parse("{").is_err());
            assert!(parse(r#"{"a" 1}"#).is_err());
            assert!(parse("[1,]").is_err());
            assert!(parse("12 34").is_err());
            assert!(parse(r#"{"a": 00x}"#).is_err());
        }
    }
}

/// Runs a sweep and prints one figure (used by the `fig2`/`fig3`/`fig4` binaries).
pub fn run_figure_binary(metric: MetricKind, args: impl IntoIterator<Item = String>) -> String {
    let options = match CliOptions::parse(args) {
        Ok(o) => o,
        Err(problem) => {
            return format!("error: {problem}\nusage: {CLI_USAGE}\n");
        }
    };
    let outcome = options.sweep.run();
    let figure = outcome.figure(metric);
    let mut out = String::new();
    if options.csv {
        out.push_str(&figure.to_csv());
    } else {
        out.push_str(&figure.to_table());
        out.push('\n');
        out.push_str(&outcome.paper_claims().table().render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> Sweep {
        Sweep {
            config: SimulationConfig::small(60),
            protocols: ProtocolKind::PAPER_SET.to_vec(),
            query_counts: vec![30, 60],
            repetitions: 1,
            threads: 2,
        }
        .with_seed(11)
    }

    #[test]
    fn sweep_produces_every_grid_point() {
        let outcome = tiny_sweep().run();
        assert_eq!(outcome.points.len(), 4 * 2);
        let fig3 = outcome.figure(MetricKind::SearchTraffic);
        assert_eq!(fig3.labels().len(), 4);
        assert_eq!(fig3.x_values(), vec![30, 60]);
        for label in fig3.labels() {
            for x in fig3.x_values() {
                assert!(fig3.value_at(label, x).is_some(), "{label} missing x={x}");
            }
        }
    }

    #[test]
    fn flooding_dominates_search_traffic() {
        let outcome = tiny_sweep().run();
        let fig3 = outcome.figure(MetricKind::SearchTraffic);
        for x in fig3.x_values() {
            let flooding = fig3.value_at("flooding", x).unwrap();
            let locaware = fig3.value_at("locaware", x).unwrap();
            assert!(
                flooding > locaware * 2.0,
                "flooding must produce far more traffic ({flooding} vs {locaware})"
            );
        }
    }

    #[test]
    fn metric_kind_accessors() {
        assert_eq!(MetricKind::DownloadDistance.figure_number(), 2);
        assert_eq!(MetricKind::SearchTraffic.figure_number(), 3);
        assert_eq!(MetricKind::SuccessRate.figure_number(), 4);
        assert!(MetricKind::SuccessRate.title().contains("Figure 4"));
    }

    #[test]
    fn cli_parsing_round_trips() {
        let options = CliOptions::parse([
            "--quick", "--queries", "10,20", "--reps", "2", "--seed", "99", "--threads", "3",
            "--csv",
        ])
        .unwrap();
        assert!(options.csv);
        assert_eq!(options.sweep.query_counts, vec![10, 20]);
        assert_eq!(options.sweep.repetitions, 2);
        assert_eq!(options.sweep.config.seed, 99);
        assert_eq!(options.sweep.threads, 3);

        assert!(CliOptions::parse(["--bogus"]).is_err());
        assert!(CliOptions::parse(["--queries"]).is_err());
        assert!(CliOptions::parse(["--queries", "abc"]).is_err());
    }

    #[test]
    fn cli_scenario_presets_apply_regardless_of_flag_order() {
        let options =
            CliOptions::parse(["--quick", "--peers", "80", "--scenario", "flash-crowd"]).unwrap();
        let expected = Scenario::flash_crowd(80);
        assert_eq!(&options.sweep.config, expected.config());

        // --seed still overrides the preset's own seed.
        let seeded =
            CliOptions::parse(["--quick", "--scenario", "churn-storm", "--seed", "7"]).unwrap();
        assert_eq!(seeded.sweep.config.seed, 7);
        assert!(!seeded.sweep.config.churn.is_disabled());

        let err = CliOptions::parse(["--scenario", "nope"]).unwrap_err();
        assert!(err.contains("presets"), "{err}");
    }

    #[test]
    fn sweeps_delegate_to_the_experiment_plan() {
        let sweep = tiny_sweep();
        let plan = sweep.plan();
        assert_eq!(plan.substrate_count(), 1);
        assert_eq!(plan.point_count(), 4 * 2);
        assert_eq!(plan.scenario_list()[0].seed(), 11);
    }

    #[test]
    fn headline_table_and_claims_render() {
        let outcome = tiny_sweep().run();
        let table = outcome.headline_table();
        assert_eq!(table.len(), 4);
        let claims = outcome.paper_claims();
        assert!(claims.traffic_reduction_vs_flooding > 0.5);
        let rendered = claims.table().render();
        assert!(rendered.contains("~98%"));
    }
}
