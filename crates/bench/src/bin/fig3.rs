//! Regenerates **Figure 3** of the paper: search traffic (messages per query)
//! vs. number of queries for Locaware, Flooding, Dicas and Dicas-Keys.
//!
//! ```text
//! cargo run -p locaware-bench --bin fig3 --release              # paper scale
//! cargo run -p locaware-bench --bin fig3 --release -- --quick   # smoke run
//! cargo run -p locaware-bench --bin fig3 --release -- --csv     # CSV output
//! ```

use locaware_bench::{run_figure_binary, MetricKind};

fn main() {
    let output = run_figure_binary(MetricKind::SearchTraffic, std::env::args().skip(1));
    print!("{output}");
}
