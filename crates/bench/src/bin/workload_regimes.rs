//! Regime-workload benchmark: wall-clock and headline metrics for the
//! non-homogeneous workload presets, with bit-identity of every run verified
//! along the way.
//!
//! This is the measurement behind `BENCH_prN.json`'s `workload_regimes`
//! section: each preset (the steady `small` baseline plus the rebuilt
//! `flash-crowd`, `churn-storm` and `regional-hotspot` regimes) runs
//! Locaware and Flooding over one shared substrate per preset, so the table
//! shows what each regime costs to simulate and how the protocols behave
//! under it (burst windows stress the event queue, weighted clusters skew
//! per-shard load, churn adds barrier transitions).
//!
//! ```text
//! cargo run --release -p locaware-bench --bin workload_regimes -- \
//!     [--peers N] [--queries N] [--repeats N] [--scenarios a,b,c]
//! ```

// Timing is this binary's job: the wall-clock ban (clippy.toml disallowed-methods,
// mirroring lint rule D002) exempts crates/bench explicitly.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use locaware::{ProtocolKind, Scenario};

struct Options {
    peers: usize,
    queries: usize,
    repeats: usize,
    scenarios: Vec<String>,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut options = Options {
            peers: 300,
            queries: 500,
            repeats: 1,
            scenarios: vec![
                "small".to_string(),
                "flash-crowd".to_string(),
                "churn-storm".to_string(),
                "regional-hotspot".to_string(),
            ],
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--peers" => options.peers = parse_number(&value("--peers")?)?,
                "--queries" => options.queries = parse_number(&value("--queries")?)?,
                "--repeats" => options.repeats = parse_number(&value("--repeats")?)?.max(1),
                "--scenarios" => {
                    options.scenarios = value("--scenarios")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect();
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(options)
    }
}

fn parse_number(s: &str) -> Result<usize, String> {
    s.trim().parse().map_err(|_| format!("not a number: {s}"))
}

fn main() {
    let options = match Options::parse() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("workload_regimes: {message}");
            std::process::exit(2);
        }
    };

    println!(
        "# workload_regimes: peers={} queries={} repeats={}",
        options.peers, options.queries, options.repeats
    );

    for name in &options.scenarios {
        let Some(scenario) = Scenario::preset(name, options.peers) else {
            eprintln!(
                "workload_regimes: unknown scenario {name}; presets: {}",
                Scenario::PRESET_NAMES.join(", ")
            );
            std::process::exit(2);
        };
        let substrate = scenario.substrate();
        for protocol in [ProtocolKind::Locaware, ProtocolKind::Flooding] {
            // One untimed warm-up run that also sets the reference print
            // ([`SimulationReport::fingerprint`], the determinism digest).
            let report = substrate.run(protocol, options.queries);
            let print = report.fingerprint();
            let started = Instant::now();
            for _ in 0..options.repeats {
                let repeat = substrate.run(protocol, options.queries);
                assert_eq!(
                    repeat.fingerprint(),
                    print,
                    "{name}/{protocol}: unstable repeat"
                );
            }
            let ms = started.elapsed().as_secs_f64() * 1000.0 / options.repeats as f64;
            println!(
                "{name} {protocol} wall_ms={ms:.1} events={} success={:.3} msgs_per_query={:.1} \
                 locality_match={:.3} sim_span_s={:.0} fingerprint={print:#018x}",
                report.dispatched_events,
                report.success_rate(),
                report.avg_messages_per_query(),
                report.locality_match_rate(),
                report.simulated_end_time_secs,
            );
        }
    }
}
