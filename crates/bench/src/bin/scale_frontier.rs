//! Scale-frontier measurement: substrate build wall clock, run wall clock,
//! and peak RSS at peers ∈ {1k, 10k, 100k}.
//!
//! This is the measurement behind the README's "Scale frontier" table and
//! `BENCH_prN.json`'s build-time trajectory keys. Build timings cover
//! `Simulation::try_build` end to end (BRITE topology, landmark locIds,
//! overlay generation, catalog, placement, link-latency cache); run timings
//! cover `Simulation::run` for a fixed small query count so the number
//! reflects per-event cost at scale rather than workload size.
//!
//! ```text
//! cargo run --release -p locaware-bench --bin scale_frontier -- \
//!     [--peers N,N,..] [--queries N] [--run-max-peers N] [--protocol NAME]
//! ```
//!
//! Peak RSS comes from `VmHWM` in `/proc/self/status`. Between scales the
//! peak is reset via `/proc/self/clear_refs` (writing `5` resets the
//! high-water mark on Linux) so each row reports that scale's own peak, not
//! a cumulative maximum; if the reset is unavailable the row is marked
//! cumulative.

// Timing is this binary's job: the wall-clock ban (clippy.toml disallowed-methods,
// mirroring lint rule D002) exempts crates/bench explicitly.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use locaware::{ProtocolKind, Scenario};

struct Options {
    peers: Vec<usize>,
    queries: usize,
    /// Scales above this only build the substrate (a 10⁵-peer *run* is a
    /// weekly-workflow job, not a smoke test).
    run_max_peers: usize,
    protocol: ProtocolKind,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut options = Options {
            peers: vec![1_000, 10_000, 100_000],
            queries: 200,
            run_max_peers: 10_000,
            protocol: ProtocolKind::Locaware,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--peers" => {
                    options.peers = value("--peers")?
                        .split(',')
                        .map(parse_number)
                        .collect::<Result<_, _>>()?;
                }
                "--queries" => options.queries = parse_number(&value("--queries")?)?,
                "--run-max-peers" => {
                    options.run_max_peers = parse_number(&value("--run-max-peers")?)?;
                }
                "--protocol" => {
                    let label = value("--protocol")?;
                    options.protocol = ProtocolKind::from_label(&label)
                        .ok_or_else(|| format!("unknown protocol {label}"))?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if options.peers.is_empty() {
            return Err("--peers needs at least one value".to_string());
        }
        Ok(options)
    }
}

fn parse_number(s: &str) -> Result<usize, String> {
    s.trim().parse().map_err(|_| format!("not a number: {s}"))
}

/// Peak resident set size in kB (`VmHWM` from `/proc/self/status`), or
/// `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Resets the RSS high-water mark so the next [`peak_rss_kb`] reading is
/// scoped to work done after this call. Returns false when the kernel
/// interface is unavailable (the reading is then cumulative).
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

fn main() {
    let options = match Options::parse() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("scale_frontier: {message}");
            std::process::exit(2);
        }
    };

    println!(
        "# scale_frontier: peers={:?} queries={} run_max_peers={} protocol={}",
        options.peers, options.queries, options.run_max_peers, options.protocol
    );

    for &peers in &options.peers {
        let scoped = reset_peak_rss();
        let started = Instant::now();
        let scenario = Scenario::large_10k(peers);
        let substrate = scenario.substrate();
        let build_ms = started.elapsed().as_secs_f64() * 1000.0;

        let run = if peers <= options.run_max_peers {
            let started = Instant::now();
            let report = substrate.run(options.protocol, options.queries);
            let run_ms = started.elapsed().as_secs_f64() * 1000.0;
            Some((run_ms, report.dispatched_events))
        } else {
            None
        };

        let rss_kb = peak_rss_kb().unwrap_or(0);
        let per_peer_bytes = rss_kb.saturating_mul(1024) / peers.max(1) as u64;
        let rss_note = if scoped { "" } else { " (cumulative)" };
        match run {
            Some((run_ms, events)) => println!(
                "peers={peers} build_ms={build_ms:.1} run_ms={run_ms:.1} events={events} \
                 peak_rss_mb={:.1}{rss_note} per_peer_bytes={per_peer_bytes}",
                rss_kb as f64 / 1024.0
            ),
            None => println!(
                "peers={peers} build_ms={build_ms:.1} run_ms=skipped \
                 peak_rss_mb={:.1}{rss_note} per_peer_bytes={per_peer_bytes}",
                rss_kb as f64 / 1024.0
            ),
        }
    }
}
