//! Runs the full evaluation once and prints all three figures (2, 3 and 4),
//! the per-protocol headline table and the paper-claim comparison.
//!
//! This is the binary behind `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run -p locaware-bench --bin run_all --release               # paper scale
//! cargo run -p locaware-bench --bin run_all --release -- --quick    # smoke run
//! cargo run -p locaware-bench --bin run_all --release -- --quick --scenario flash-crowd
//! ```
//!
//! The sweep executes through the core experiment API
//! ([`locaware::ExperimentPlan`] + [`locaware::Runner`]), so each
//! repetition's substrate is built once and shared by every protocol and
//! query count; `--scenario` selects any named [`locaware::Scenario`] preset.

use locaware_bench::{CliOptions, MetricKind, CLI_USAGE};

fn main() {
    let options = match CliOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(problem) => {
            eprintln!("error: {problem}");
            eprintln!("usage: run_all {CLI_USAGE}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "# running sweep: {} peers, query counts {:?}, {} repetition(s), protocols {:?}",
        options.sweep.config.peers,
        options.sweep.query_counts,
        options.sweep.repetitions,
        options
            .sweep
            .protocols
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
    );

    let outcome = options.sweep.run();

    for metric in [
        MetricKind::DownloadDistance,
        MetricKind::SearchTraffic,
        MetricKind::SuccessRate,
    ] {
        let figure = outcome.figure(metric);
        if options.csv {
            println!("# {}", metric.title());
            print!("{}", figure.to_csv());
            println!();
        } else {
            print!("{}", figure.to_table());
            println!();
        }
    }

    println!("# Per-protocol averages over the whole sweep");
    print!("{}", outcome.headline_table().render());
    println!();
    println!("# Paper headline claims vs. this reproduction");
    print!("{}", outcome.paper_claims().table().render());
}
