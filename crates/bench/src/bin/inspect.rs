//! Runs a single protocol once and dumps the full report: summary metrics,
//! message counters by kind and routing-decision counts. Useful for debugging
//! and for the ablation analysis in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p locaware-bench --bin inspect --release -- locaware 1000 3000
//! cargo run -p locaware-bench --bin inspect --release -- dicas-keys 200 500
//! cargo run -p locaware-bench --bin inspect --release -- locaware flash-crowd 200 500
//! ```
//!
//! Arguments: `<protocol> [scenario] [peers] [queries] [seed]` — `scenario`
//! is any [`Scenario`] preset name and defaults to the paper's setup
//! (`paper-defaults` at 1000 peers, `small` otherwise). The run goes through
//! the experiment layer: a one-point [`ExperimentPlan`] executed by a
//! [`Runner`].

use locaware::{ExperimentPlan, ProtocolKind, Runner, Scenario};

fn usage() -> ! {
    let labels: Vec<&str> = ProtocolKind::all().iter().map(|k| k.label()).collect();
    eprintln!("usage: inspect <protocol> [scenario] [peers] [queries] [seed]");
    eprintln!("protocols: {}", labels.join(" "));
    eprintln!("scenarios: {}", Scenario::PRESET_NAMES.join(" "));
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(protocol) = args.first().and_then(|a| ProtocolKind::from_label(a)) else {
        usage();
    };
    // Optional scenario name in second position; remaining args are numeric.
    let scenario_name = match args.get(1) {
        Some(a) if a.parse::<u64>().is_err() => Some(args.remove(1)),
        _ => None,
    };
    let peers: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1000);
    let queries: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1000);
    let seed: Option<u64> = args.get(3).and_then(|a| a.parse().ok());

    let scenario = match scenario_name {
        Some(name) => match Scenario::preset(&name, peers) {
            Some(scenario) => scenario,
            None => {
                eprintln!("unknown scenario {name}");
                usage();
            }
        },
        None if peers == 1000 => Scenario::paper_defaults(),
        None => Scenario::small(peers),
    };
    let scenario = match seed {
        Some(seed) => scenario.with_seed(seed),
        None => scenario,
    };

    eprintln!(
        "# scenario {}: {} peers, seed {}",
        scenario.name(),
        scenario.config().peers,
        scenario.seed()
    );
    eprintln!("# running {} with {queries} queries", protocol.label());
    let plan = ExperimentPlan::new()
        .scenario(scenario.clone())
        .protocol(protocol)
        .query_count(queries);
    let outcome = Runner::new().run(&plan).expect("one-point plan is complete");
    let report = outcome
        .report(scenario.name(), protocol, queries, 0)
        .expect("the single grid point must have run");

    println!("{}", report.summary_table().render());
    println!("# message counters");
    for (kind, count) in report.message_counters.iter() {
        println!("  {kind:<16} {count}");
    }
    println!("# routing decisions");
    for (decision, count) in report.routing_decisions.iter() {
        println!("  {decision:<16} {count}");
    }
    println!("# simulated time: {:.1}s, events: {}", report.simulated_end_time_secs, report.dispatched_events);

    // Success over the last quarter of the run vs the first quarter: shows the
    // warm-up effect the paper's Figure 2 discussion highlights.
    let n = report.metrics.len();
    if n >= 8 {
        let first = report.metrics.prefix(n / 4);
        let last = report.metrics.tail_window(n / 4);
        println!(
            "# warm-up: first-quarter success {:.3} / distance {:.1}ms  ->  last-quarter success {:.3} / distance {:.1}ms",
            first.success_rate(),
            first.avg_download_distance_ms(),
            last.success_rate(),
            last.avg_download_distance_ms()
        );
    }
}
