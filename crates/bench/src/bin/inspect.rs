//! Runs a single protocol once and dumps the full report: summary metrics,
//! message counters by kind and routing-decision counts. Useful for debugging
//! and for the ablation analysis in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p locaware-bench --bin inspect --release -- locaware 1000 3000
//! cargo run -p locaware-bench --bin inspect --release -- dicas-keys 200 500
//! ```
//!
//! Arguments: `<protocol> [peers] [queries] [seed]`.

use locaware::{ProtocolKind, Simulation, SimulationConfig};

fn parse_protocol(name: &str) -> Option<ProtocolKind> {
    Some(match name {
        "flooding" => ProtocolKind::Flooding,
        "dicas" => ProtocolKind::Dicas,
        "dicas-keys" => ProtocolKind::DicasKeys,
        "locaware" => ProtocolKind::Locaware,
        "locaware-no-locality" => ProtocolKind::LocawareNoLocality,
        "locaware-no-bloom" => ProtocolKind::LocawareNoBloom,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(protocol) = args.first().and_then(|a| parse_protocol(a)) else {
        eprintln!("usage: inspect <protocol> [peers] [queries] [seed]");
        eprintln!("protocols: flooding dicas dicas-keys locaware locaware-no-locality locaware-no-bloom");
        std::process::exit(2);
    };
    let peers: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1000);
    let queries: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(0x10ca_aa2e);

    let mut config = if peers == 1000 {
        SimulationConfig::paper_defaults()
    } else {
        SimulationConfig::small(peers)
    };
    config.seed = seed;

    eprintln!("# building substrate: {peers} peers, seed {seed}");
    let simulation = Simulation::build(config);
    eprintln!("# running {} with {queries} queries", protocol.label());
    let report = simulation.run(protocol, queries);

    println!("{}", report.summary_table().render());
    println!("# message counters");
    for (kind, count) in report.message_counters.iter() {
        println!("  {kind:<16} {count}");
    }
    println!("# routing decisions");
    for (decision, count) in report.routing_decisions.iter() {
        println!("  {decision:<16} {count}");
    }
    println!("# simulated time: {:.1}s, events: {}", report.simulated_end_time_secs, report.dispatched_events);

    // Success over the last quarter of the run vs the first quarter: shows the
    // warm-up effect the paper's Figure 2 discussion highlights.
    let n = report.metrics.len();
    if n >= 8 {
        let first = report.metrics.prefix(n / 4);
        let last = report.metrics.tail_window(n / 4);
        println!(
            "# warm-up: first-quarter success {:.3} / distance {:.1}ms  ->  last-quarter success {:.3} / distance {:.1}ms",
            first.success_rate(),
            first.avg_download_distance_ms(),
            last.success_rate(),
            last.avg_download_distance_ms()
        );
    }
}
