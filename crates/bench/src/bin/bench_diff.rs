//! Bench-trajectory regression gate.
//!
//! Compares the standardised `"trajectory"` sections of two `BENCH_prN.json`
//! files (every entry is a wall-clock measurement of a fixed reference
//! workload — lower is better) and exits non-zero when any shared metric
//! regressed by more than 10%. Closes the ROADMAP item "a script that diffs
//! consecutive BENCH files and fails on regression"; CI runs it on every PR.
//!
//! ```text
//! # Diff the two most recent BENCH_pr*.json in the repository root:
//! cargo run --release -p locaware-bench --bin bench_diff
//! # Or name the two files explicitly (old first):
//! cargo run --release -p locaware-bench --bin bench_diff -- BENCH_pr3.json BENCH_pr4.json
//! ```
//!
//! Metrics present in only one file are reported but never fail the gate
//! (new benchmarks appear, retired ones disappear); an empty intersection is
//! an error, because a gate that compares nothing would pass silently.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use locaware_bench::trajectory;

/// Regression tolerance: fail when `new > old * (1 + TOLERANCE)`.
const TOLERANCE: f64 = 0.10;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path) = match args.as_slice() {
        [] => match discover_latest_pair() {
            Ok(pair) => pair,
            Err(message) => {
                eprintln!("bench_diff: {message}");
                return ExitCode::from(2);
            }
        },
        [old, new] => (PathBuf::from(old), PathBuf::from(new)),
        _ => {
            eprintln!("usage: bench_diff [OLD.json NEW.json]");
            return ExitCode::from(2);
        }
    };

    let old = match load_trajectory(&old_path) {
        Ok(table) => table,
        Err(message) => {
            eprintln!("bench_diff: {}: {message}", old_path.display());
            return ExitCode::from(2);
        }
    };
    let new = match load_trajectory(&new_path) {
        Ok(table) => table,
        Err(message) => {
            eprintln!("bench_diff: {}: {message}", new_path.display());
            return ExitCode::from(2);
        }
    };

    println!(
        "bench_diff: {} -> {} (tolerance {:.0}%)",
        old_path.display(),
        new_path.display(),
        TOLERANCE * 100.0
    );

    let mut compared = 0usize;
    let mut regressions = 0usize;
    for (name, &old_value) in &old {
        let Some(&new_value) = new.get(name) else {
            println!("  {name}: retired (was {old_value:.2})");
            continue;
        };
        compared += 1;
        let ratio = if old_value > 0.0 {
            new_value / old_value
        } else {
            1.0
        };
        // A zero baseline carries no information to regress against (any
        // positive measurement would be "infinitely" slower); report it
        // without judging.
        let verdict = if old_value <= 0.0 {
            "ok (zero baseline)"
        } else if new_value > old_value * (1.0 + TOLERANCE) {
            regressions += 1;
            "REGRESSION"
        } else if new_value < old_value * (1.0 - TOLERANCE) {
            "improved"
        } else {
            "ok"
        };
        println!("  {name}: {old_value:.2} -> {new_value:.2} ({ratio:.2}x) {verdict}");
    }
    for (name, new_value) in &new {
        if !old.contains_key(name) {
            println!("  {name}: new metric ({new_value:.2})");
        }
    }

    if compared == 0 {
        eprintln!("bench_diff: no shared trajectory metrics — the gate would compare nothing");
        return ExitCode::from(2);
    }
    if regressions > 0 {
        eprintln!("bench_diff: {regressions} of {compared} shared metrics regressed > 10%");
        return ExitCode::FAILURE;
    }
    println!("bench_diff: {compared} shared metrics within tolerance");
    ExitCode::SUCCESS
}

fn load_trajectory(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let document = trajectory::parse(&text)?;
    let table = trajectory::of_bench_file(&document);
    if table.is_empty() {
        return Err("no numeric \"trajectory\" section".to_string());
    }
    Ok(table)
}

/// The two highest-numbered `BENCH_pr*.json` files in the current directory
/// (the repository root when run through `cargo run`), oldest of the pair
/// first.
fn discover_latest_pair() -> Result<(PathBuf, PathBuf), String> {
    let mut numbered: Vec<(u32, PathBuf)> = std::fs::read_dir(".")
        .map_err(|e| e.to_string())?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let number: u32 = name.strip_prefix("BENCH_pr")?.strip_suffix(".json")?.parse().ok()?;
            Some((number, path))
        })
        .collect();
    numbered.sort();
    match numbered.as_slice() {
        [] | [_] => Err(format!(
            "need at least two BENCH_pr*.json files in {} to diff",
            std::env::current_dir()
                .map(|d| d.display().to_string())
                .unwrap_or_else(|_| ".".to_string())
        )),
        [.., (_, old), (_, new)] => Ok((old.clone(), new.clone())),
    }
}
