//! Regenerates **Figure 2** of the paper: average download distance vs. number
//! of queries for Locaware, Flooding, Dicas and Dicas-Keys.
//!
//! ```text
//! cargo run -p locaware-bench --bin fig2 --release              # paper scale
//! cargo run -p locaware-bench --bin fig2 --release -- --quick   # smoke run
//! cargo run -p locaware-bench --bin fig2 --release -- --csv     # CSV output
//! cargo run -p locaware-bench --bin fig2 --release -- --quick --scenario regional-hotspot
//! ```
//!
//! Runs through the core experiment API (`ExperimentPlan` + `Runner`): one
//! substrate per repetition, shared by all four protocol curves, so the
//! figure's comparison is over the identical system by construction.

use locaware_bench::{run_figure_binary, MetricKind};

fn main() {
    let output = run_figure_binary(MetricKind::DownloadDistance, std::env::args().skip(1));
    print!("{output}");
}
