//! Degradation sweep: how each protocol family's success rate and traffic
//! hold up as the network gets lossier, plus the crash-stop vs graceful
//! churn comparison. This is the measurement behind EXPERIMENTS.md's
//! robustness section.
//!
//! For every loss rate the resilience machinery stays armed with the same
//! policies (query retransmit 3 s × 2.0 backoff × 2 retries, DHT step
//! timeout 2 s), so the curves isolate the loss axis instead of conflating
//! it with "did the protocol fight back". Every point runs at shard counts
//! 1 and 4 and asserts fingerprint equality — the sweep doubles as a
//! fault-plan shard-invariance check on sizes CI does not cover.
//!
//! ```text
//! cargo run --release -p locaware-bench --bin degradation -- \
//!     [--peers N] [--queries N] [--losses 0,1,5,10]
//! ```

use locaware::{ProtocolKind, Scenario, SimulationReport};
use locaware_metrics::{Figure, SeriesPoint};
use locaware_workload::{FaultConfig, TimeoutPolicy};

/// The four families EXPERIMENTS.md compares under degradation.
const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Flooding,
    ProtocolKind::Locaware,
    ProtocolKind::DhtIndex,
    ProtocolKind::Hybrid,
];

struct Options {
    peers: usize,
    queries: usize,
    losses_pct: Vec<u64>,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut options = Options {
            peers: 120,
            queries: 300,
            losses_pct: vec![0, 1, 5, 10],
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--peers" => options.peers = parse_number(&value("--peers")?)?,
                "--queries" => options.queries = parse_number(&value("--queries")?)?,
                "--losses" => {
                    options.losses_pct = value("--losses")?
                        .split(',')
                        .map(|s| parse_number(s).map(|n| n as u64))
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(options)
    }
}

fn parse_number(s: &str) -> Result<usize, String> {
    s.trim().parse().map_err(|_| format!("not a number: {s}"))
}

/// The armed-resilience fault plan at a given loss rate.
fn faults_at(loss: f64) -> FaultConfig {
    let mut faults = FaultConfig::disabled();
    faults.message_loss = loss;
    faults.query_timeout = TimeoutPolicy {
        initial_secs: 3.0,
        backoff: 2.0,
        max_retries: 2,
    };
    faults.dht_step_timeout_secs = 2.0;
    faults
}

/// Runs one configured scenario at 1 and 4 shards, asserts bit-identity and
/// returns the single-shard report.
fn run_both_shardings(
    label: &str,
    scenario: &Scenario,
    protocol: ProtocolKind,
    queries: usize,
) -> SimulationReport {
    let shard = |shards: usize| {
        let mut config = scenario.config().clone();
        config.shards = shards;
        Scenario::from_config(scenario.name().to_string(), config)
            .expect("shard count does not affect validity")
            .substrate()
            .run(protocol, queries)
    };
    let single = shard(1);
    let sharded = shard(4);
    assert_eq!(
        single.fingerprint(),
        sharded.fingerprint(),
        "{label}/{protocol}: 4 shards must reproduce the single-shard run"
    );
    single
}

fn main() {
    let options = match Options::parse() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("degradation: {message}");
            std::process::exit(2);
        }
    };

    println!(
        "# degradation: peers={} queries={} losses(%)={:?}",
        options.peers, options.queries, options.losses_pct
    );

    // ---- success / traffic vs loss rate --------------------------------
    let mut success = Figure::degradation("message loss", "success rate");
    let mut traffic = Figure::degradation("message loss", "messages per query");
    for &loss_pct in &options.losses_pct {
        let scenario = Scenario::builder("degradation")
            .peers(options.peers)
            .seed(0xDE_64AD)
            .faults(faults_at(loss_pct as f64 / 100.0))
            .build()
            .expect("loss rates up to 100% validate");
        for protocol in PROTOCOLS {
            let report =
                run_both_shardings("degradation", &scenario, protocol, options.queries);
            let stats = report.faults.expect("armed plan reports statistics");
            println!(
                "loss={loss_pct}% {protocol} success={:.3} msgs_per_query={:.1} lost={} \
                 timeouts={} retransmits={} step_timeouts={}",
                report.success_rate(),
                report.avg_messages_per_query(),
                stats.messages_lost,
                stats.query_timeouts,
                stats.query_retransmits,
                stats.dht_step_timeouts,
            );
            success.push(
                protocol.label(),
                SeriesPoint { queries: loss_pct, value: report.success_rate() },
            );
            traffic.push(
                protocol.label(),
                SeriesPoint { queries: loss_pct, value: report.avg_messages_per_query() },
            );
        }
    }
    println!("\n{}", success.to_table());
    println!("{}", traffic.to_table());

    // ---- crash-stop vs graceful churn ----------------------------------
    println!("# churn-storm: graceful vs crash-stop departures");
    let storm = Scenario::churn_storm(options.peers);
    let crashy = {
        let mut faults = FaultConfig::disabled();
        faults.crash_stop = true;
        faults.dht_step_timeout_secs = 2.0;
        let mut config = storm.config().clone();
        config.faults = faults;
        Scenario::from_config("churn-storm-crash", config)
            .expect("crash-stop does not affect validity")
    };
    assert!(!storm.config().churn.is_disabled(), "the storm must churn");
    for protocol in PROTOCOLS {
        let graceful = run_both_shardings("graceful", &storm, protocol, options.queries);
        let crashed = run_both_shardings("crash-stop", &crashy, protocol, options.queries);
        let stats = crashed.faults.expect("crash-stop arms the plan");
        println!(
            "{protocol} graceful_success={:.3} crash_success={:.3} \
             graceful_msgs={:.1} crash_msgs={:.1} crash_departures={} step_timeouts={}",
            graceful.success_rate(),
            crashed.success_rate(),
            graceful.avg_messages_per_query(),
            crashed.avg_messages_per_query(),
            stats.crash_departures,
            stats.dht_step_timeouts,
        );
    }
}
