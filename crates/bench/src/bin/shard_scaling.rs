//! Shard-scaling benchmark: wall-clock per protocol run at shard counts
//! {1, 2, 4, 8}, with bit-identity of the reports verified along the way.
//!
//! This is the measurement behind `BENCH_prN.json`'s `shard_scaling` section
//! and the README's "Sharded engine" table. Substrate construction is
//! excluded (it is built once per shard count and shared across protocols,
//! exactly like the experiment layer does); timings cover `Simulation::run`
//! end to end.
//!
//! ```text
//! cargo run --release -p locaware-bench --bin shard_scaling -- \
//!     [--peers N] [--queries N] [--scenario NAME] [--repeats N]
//! ```
//!
//! The default workload is `flash-crowd` (a 25× arrival-rate burst window):
//! dense event regions are where intra-run parallelism matters — and where
//! the paper's beyond-10³-peer ambitions live. Sparse workloads (the paper's
//! 0.83 q/s default) fit in one window per query burst and gain little,
//! which the numbers show honestly.

// Timing is this binary's job: the wall-clock ban (clippy.toml disallowed-methods,
// mirroring lint rule D002) exempts crates/bench explicitly.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use locaware::{ProtocolKind, Scenario, SimulationReport};

struct Options {
    peers: usize,
    queries: usize,
    scenario: String,
    repeats: usize,
    shard_counts: Vec<usize>,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut options = Options {
            peers: 1000,
            queries: 2000,
            scenario: "flash-crowd".to_string(),
            repeats: 1,
            shard_counts: vec![1, 2, 4, 8],
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--peers" => options.peers = parse_number(&value("--peers")?)?,
                "--queries" => options.queries = parse_number(&value("--queries")?)?,
                "--repeats" => options.repeats = parse_number(&value("--repeats")?)?.max(1),
                "--scenario" => options.scenario = value("--scenario")?,
                "--shards" => {
                    options.shard_counts = value("--shards")?
                        .split(',')
                        .map(parse_number)
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(options)
    }
}

fn parse_number(s: &str) -> Result<usize, String> {
    s.trim().parse().map_err(|_| format!("not a number: {s}"))
}

/// The determinism fingerprint ([`SimulationReport::fingerprint`]): a cheap
/// stable digest over the fields the determinism suite compares
/// byte-for-byte.
fn fingerprint(report: &SimulationReport) -> u64 {
    report.fingerprint()
}

fn main() {
    let options = match Options::parse() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("shard_scaling: {message}");
            std::process::exit(2);
        }
    };

    let protocols = [ProtocolKind::Locaware, ProtocolKind::Flooding];
    println!(
        "# shard_scaling: scenario={} peers={} queries={} repeats={}",
        options.scenario, options.peers, options.queries, options.repeats
    );

    for protocol in protocols {
        let mut baseline_ms = None;
        let mut baseline_print = None;
        for &shards in &options.shard_counts {
            let Some(scenario) = Scenario::preset(&options.scenario, options.peers) else {
                eprintln!("shard_scaling: unknown scenario {}", options.scenario);
                std::process::exit(2);
            };
            let mut config = scenario.config().clone();
            config.shards = shards;
            let scenario = Scenario::from_config(format!("{}-s{shards}", options.scenario), config)
                .expect("shard count does not affect validity");
            let substrate = scenario.substrate();

            // One untimed warm-up run, then the timed repeats.
            let report = substrate.run(protocol, options.queries);
            let print = fingerprint(&report);
            match baseline_print {
                None => baseline_print = Some(print),
                Some(expected) => assert_eq!(
                    print, expected,
                    "{protocol}: {shards} shards diverged from the baseline report"
                ),
            }
            let started = Instant::now();
            for _ in 0..options.repeats {
                let repeat = substrate.run(protocol, options.queries);
                assert_eq!(fingerprint(&repeat), print, "{protocol}: unstable repeat");
            }
            let ms = started.elapsed().as_secs_f64() * 1000.0 / options.repeats as f64;
            let speedup = match baseline_ms {
                None => {
                    baseline_ms = Some(ms);
                    1.0
                }
                Some(base) => base / ms,
            };
            println!(
                "{protocol} shards={shards} wall_ms={ms:.1} speedup_vs_1={speedup:.2} events={} fingerprint={print:#018x}",
                report.dispatched_events
            );
        }
    }
}
