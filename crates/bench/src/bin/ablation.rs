//! Ablation study: which Locaware mechanism buys which share of the gains.
//!
//! Runs the full protocol, its two ablated variants and the two Dicas
//! baselines over one substrate and prints the three paper metrics per
//! variant, plus a response-index capacity sweep for the full protocol.
//!
//! ```text
//! cargo run -p locaware-bench --bin ablation --release              # paper scale
//! cargo run -p locaware-bench --bin ablation --release -- --quick   # smoke run
//! ```
//!
//! Both studies are [`ExperimentPlan`]s executed by the shared [`Runner`]:
//! the mechanism ablation is five protocols over one scenario (one substrate
//! build in total), and the capacity sweep is five scenarios — one per
//! response-index capacity — each measured with the full protocol.

use locaware::{ExperimentPlan, ProtocolKind, Runner, Scenario};
use locaware_metrics::Table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (peers, queries) = if quick { (200usize, 600usize) } else { (1000, 3000) };
    let base = if peers == 1000 {
        Scenario::paper_defaults()
    } else {
        Scenario::small(peers)
    }
    .with_seed(0x10ca_aa2e)
    .with_name("ablation");

    eprintln!("# ablation: {peers} peers, {queries} queries");

    let variants = [
        ProtocolKind::Locaware,
        ProtocolKind::LocawareNoLocality,
        ProtocolKind::LocawareNoBloom,
        ProtocolKind::DicasKeys,
        ProtocolKind::Dicas,
    ];
    let plan = ExperimentPlan::new()
        .scenario(base.clone())
        .protocols(variants)
        .query_count(queries);
    let outcome = Runner::new().run(&plan).expect("ablation plan is complete");
    assert_eq!(
        outcome.substrates_built, 1,
        "all five variants must share one substrate"
    );

    let mut table = Table::new([
        "variant",
        "success rate",
        "messages / query",
        "download distance (ms)",
        "locality match",
        "cache hit share",
    ]);
    for kind in variants {
        let report = outcome
            .report(base.name(), kind, queries, 0)
            .expect("every variant ran");
        table.push_row([
            kind.label().to_string(),
            format!("{:.4}", report.success_rate()),
            format!("{:.2}", report.avg_messages_per_query()),
            format!("{:.2}", report.avg_download_distance_ms()),
            format!("{:.4}", report.locality_match_rate()),
            format!("{:.4}", report.cache_hit_share()),
        ]);
    }
    println!("# Mechanism ablation");
    println!("{}", table.render());

    // Response-index capacity sweep: how small can the 50-filename cache get
    // before the protocol degrades? One scenario per capacity, same seed, so
    // the only varying quantity is the cache size.
    let capacities = [5usize, 10, 25, 50, 100];
    let capacity_plan = ExperimentPlan::new()
        .scenarios(capacities.iter().map(|&capacity| {
            base.clone()
                .with_name(format!("ri-{capacity}"))
                .tweak_capacity(capacity)
        }))
        .protocol(ProtocolKind::Locaware)
        .query_count(queries);
    let capacity_outcome = Runner::new()
        .run(&capacity_plan)
        .expect("capacity plan is complete");

    let mut capacity_table = Table::new([
        "RI capacity (filenames)",
        "success rate",
        "download distance (ms)",
        "cache hit share",
    ]);
    for capacity in capacities {
        let report = capacity_outcome
            .report(&format!("ri-{capacity}"), ProtocolKind::Locaware, queries, 0)
            .expect("every capacity ran");
        capacity_table.push_row([
            capacity.to_string(),
            format!("{:.4}", report.success_rate()),
            format!("{:.2}", report.avg_download_distance_ms()),
            format!("{:.4}", report.cache_hit_share()),
        ]);
    }
    println!("# Response-index capacity sweep (Locaware)");
    println!("{}", capacity_table.render());
}

/// Local helper: clone a scenario with a different response-index capacity.
trait TweakCapacity {
    fn tweak_capacity(self, capacity: usize) -> Scenario;
}

impl TweakCapacity for Scenario {
    fn tweak_capacity(self, capacity: usize) -> Scenario {
        let name = self.name().to_string();
        let mut config = self.config().clone();
        config.response_index_capacity = capacity;
        Scenario::from_config(name, config).expect("capacity tweak keeps the config valid")
    }
}
