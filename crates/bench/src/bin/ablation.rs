//! Ablation study: which Locaware mechanism buys which share of the gains.
//!
//! Runs the full protocol, its two ablated variants and the two Dicas
//! baselines over one substrate and prints the three paper metrics per
//! variant, plus a response-index capacity sweep for the full protocol.
//!
//! ```text
//! cargo run -p locaware-bench --bin ablation --release              # paper scale
//! cargo run -p locaware-bench --bin ablation --release -- --quick   # smoke run
//! ```

use locaware::{ProtocolKind, Simulation, SimulationConfig};
use locaware_metrics::Table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (peers, queries) = if quick { (200usize, 600usize) } else { (1000, 3000) };
    let mut config = if peers == 1000 {
        SimulationConfig::paper_defaults()
    } else {
        SimulationConfig::small(peers)
    };
    config.seed = 0x10ca_aa2e;

    eprintln!("# ablation: {peers} peers, {queries} queries");
    let simulation = Simulation::build(config.clone());

    let variants = [
        ProtocolKind::Locaware,
        ProtocolKind::LocawareNoLocality,
        ProtocolKind::LocawareNoBloom,
        ProtocolKind::DicasKeys,
        ProtocolKind::Dicas,
    ];
    let mut table = Table::new([
        "variant",
        "success rate",
        "messages / query",
        "download distance (ms)",
        "locality match",
        "cache hit share",
    ]);
    for kind in variants {
        let report = simulation.run(kind, queries);
        table.push_row([
            kind.label().to_string(),
            format!("{:.4}", report.success_rate()),
            format!("{:.2}", report.avg_messages_per_query()),
            format!("{:.2}", report.avg_download_distance_ms()),
            format!("{:.4}", report.locality_match_rate()),
            format!("{:.4}", report.cache_hit_share()),
        ]);
    }
    println!("# Mechanism ablation");
    println!("{}", table.render());

    // Response-index capacity sweep: how small can the 50-filename cache get
    // before the protocol degrades?
    let mut capacity_table = Table::new([
        "RI capacity (filenames)",
        "success rate",
        "download distance (ms)",
        "cache hit share",
    ]);
    for capacity in [5usize, 10, 25, 50, 100] {
        let mut swept = config.clone();
        swept.response_index_capacity = capacity;
        let simulation = Simulation::build(swept);
        let report = simulation.run(ProtocolKind::Locaware, queries);
        capacity_table.push_row([
            capacity.to_string(),
            format!("{:.4}", report.success_rate()),
            format!("{:.2}", report.avg_download_distance_ms()),
            format!("{:.4}", report.cache_hit_share()),
        ]);
    }
    println!("# Response-index capacity sweep (Locaware)");
    println!("{}", capacity_table.render());
}
