//! Regenerates **Figure 4** of the paper: success rate vs. number of queries
//! for Locaware, Flooding, Dicas and Dicas-Keys.
//!
//! ```text
//! cargo run -p locaware-bench --bin fig4 --release              # paper scale
//! cargo run -p locaware-bench --bin fig4 --release -- --quick   # smoke run
//! cargo run -p locaware-bench --bin fig4 --release -- --csv     # CSV output
//! cargo run -p locaware-bench --bin fig4 --release -- --quick --scenario regional-hotspot
//! ```
//!
//! Runs through the core experiment API (`ExperimentPlan` + `Runner`): one
//! substrate per repetition, shared by all four protocol curves, so the
//! figure's comparison is over the identical system by construction.

use locaware_bench::{run_figure_binary, MetricKind};

fn main() {
    let output = run_figure_binary(MetricKind::SuccessRate, std::env::args().skip(1));
    print!("{output}");
}
