//! Regenerates **Figure 4** of the paper: success rate vs. number of queries
//! for Locaware, Flooding, Dicas and Dicas-Keys.
//!
//! ```text
//! cargo run -p locaware-bench --bin fig4 --release              # paper scale
//! cargo run -p locaware-bench --bin fig4 --release -- --quick   # smoke run
//! cargo run -p locaware-bench --bin fig4 --release -- --csv     # CSV output
//! ```

use locaware_bench::{run_figure_binary, MetricKind};

fn main() {
    let output = run_figure_binary(MetricKind::SuccessRate, std::env::args().skip(1));
    print!("{output}");
}
