//! Ablation benchmark: which Locaware ingredient buys which share of the gains.
//!
//! Runs the full Locaware protocol against its two ablated variants (no
//! location-aware selection / no Bloom routing) and against Dicas-Keys, on the
//! same substrate, and reports both the metric values (printed once) and the
//! run time of each variant. This quantifies the design choices DESIGN.md calls
//! out: locality-aware selection drives the Figure 2 gain, Bloom routing drives
//! the Figure 4 gain.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use locaware::{ProtocolKind, Scenario, Simulation};

const QUERIES: usize = 400;

const VARIANTS: [ProtocolKind; 4] = [
    ProtocolKind::Locaware,
    ProtocolKind::LocawareNoLocality,
    ProtocolKind::LocawareNoBloom,
    ProtocolKind::DicasKeys,
];

fn substrate() -> Simulation {
    Scenario::small(200).with_seed(6).substrate()
}

fn bench_ablation(c: &mut Criterion) {
    let simulation = substrate();

    // Print the ablation table once so `cargo bench` output documents the
    // metric differences alongside the timings.
    eprintln!("# ablation at 200 peers / {QUERIES} queries");
    eprintln!(
        "{:<22} {:>14} {:>14} {:>14}",
        "variant", "distance (ms)", "msgs/query", "success"
    );
    let mut full_distance = f64::NAN;
    let mut no_locality_distance = f64::NAN;
    for kind in VARIANTS {
        let report = simulation.run(kind, QUERIES);
        eprintln!(
            "{:<22} {:>14.2} {:>14.2} {:>14.4}",
            kind.label(),
            report.avg_download_distance_ms(),
            report.avg_messages_per_query(),
            report.success_rate()
        );
        match kind {
            ProtocolKind::Locaware => full_distance = report.avg_download_distance_ms(),
            ProtocolKind::LocawareNoLocality => {
                no_locality_distance = report.avg_download_distance_ms()
            }
            _ => {}
        }
    }
    assert!(
        full_distance <= no_locality_distance,
        "locality-aware selection must not increase download distance \
         ({full_distance:.1}ms vs {no_locality_distance:.1}ms)"
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for kind in VARIANTS {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let report = simulation.run(kind, QUERIES);
                black_box((
                    report.avg_download_distance_ms(),
                    report.success_rate(),
                    report.avg_messages_per_query(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
