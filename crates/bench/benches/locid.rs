//! Microbenchmarks of the location subsystem (§4.1.1): landmark RTT
//! measurement, locId (Lehmer) encoding, and the RTT-probing provider fallback
//! of §5.1.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use locaware_net::brite::PlacementModel;
use locaware_net::{closest_by_rtt, BriteConfig, BriteGenerator, LandmarkSet, LocId, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_locid_encoding(c: &mut Criterion) {
    let orderings: Vec<Vec<usize>> = vec![
        vec![0, 1, 2, 3],
        vec![3, 1, 0, 2],
        vec![2, 3, 1, 0],
        vec![1, 0, 3, 2],
    ];
    c.bench_function("locid/lehmer_encode_4_landmarks", |b| {
        b.iter(|| {
            for o in &orderings {
                black_box(LocId::from_ordering(o));
            }
        })
    });
}

fn bench_landmark_assignment(c: &mut Criterion) {
    let generator = BriteGenerator::new(BriteConfig {
        nodes: 1000,
        placement: PlacementModel::Clustered {
            clusters: 24,
            sigma: 0.03,
        },
        ..BriteConfig::default()
    });
    let topology = generator.generate(&mut StdRng::seed_from_u64(1));
    let landmarks = LandmarkSet::spread(4);
    c.bench_function("locid/assign_all_1000_peers", |b| {
        b.iter(|| black_box(landmarks.assign_all(&topology).len()))
    });
}

fn bench_rtt_probe(c: &mut Criterion) {
    let generator = BriteGenerator::new(BriteConfig {
        nodes: 1000,
        ..BriteConfig::default()
    });
    let topology = generator.generate(&mut StdRng::seed_from_u64(2));
    let candidates: Vec<NodeId> = (1..6).map(NodeId).collect();
    c.bench_function("locid/rtt_probe_5_providers", |b| {
        b.iter(|| black_box(closest_by_rtt(&topology, NodeId(0), &candidates)))
    });
}

criterion_group!(
    benches,
    bench_locid_encoding,
    bench_landmark_assignment,
    bench_rtt_probe
);
criterion_main!(benches);
