//! Figure 3 benchmark: end-to-end runs measuring the *search traffic*
//! experiment at a reduced scale for each protocol.
//!
//! Asserts the figure's shape (index-caching protocols cut the bulk of
//! flooding's messages) and times one run per protocol. The paper-scale series
//! is produced by `cargo run -p locaware-bench --bin fig3 --release`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use locaware::{ProtocolKind, Scenario, Simulation};

const QUERIES: usize = 300;

fn substrate() -> Simulation {
    Scenario::small(200).with_seed(3).substrate()
}

fn bench_search_traffic(c: &mut Criterion) {
    let simulation = substrate();

    let locaware = simulation.run(ProtocolKind::Locaware, QUERIES);
    let flooding = simulation.run(ProtocolKind::Flooding, QUERIES);
    assert!(
        locaware.avg_messages_per_query() * 2.0 < flooding.avg_messages_per_query(),
        "Figure 3 shape violated: locaware {:.1} vs flooding {:.1} messages/query",
        locaware.avg_messages_per_query(),
        flooding.avg_messages_per_query()
    );

    let mut group = c.benchmark_group("fig3_search_traffic");
    group.sample_size(10);
    for kind in ProtocolKind::PAPER_SET {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let report = simulation.run(kind, QUERIES);
                black_box(report.avg_messages_per_query())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_traffic);
criterion_main!(benches);
