//! Figure 2 benchmark: end-to-end runs measuring the *download distance*
//! experiment at a reduced scale for each protocol.
//!
//! The benchmark times one full simulation run per protocol and, as a side
//! effect of the measured runs, asserts the figure's shape (Locaware's average
//! download distance is the lowest of the four curves). The full paper-scale
//! series is produced by `cargo run -p locaware-bench --bin fig2 --release`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use locaware::{ProtocolKind, Scenario, Simulation};

const QUERIES: usize = 300;

fn substrate() -> Simulation {
    Scenario::small(200).with_seed(2).substrate()
}

fn bench_download_distance(c: &mut Criterion) {
    let simulation = substrate();

    // Shape check once, outside the timed loop.
    let locaware = simulation.run(ProtocolKind::Locaware, QUERIES);
    let flooding = simulation.run(ProtocolKind::Flooding, QUERIES);
    assert!(
        locaware.avg_download_distance_ms() < flooding.avg_download_distance_ms(),
        "Figure 2 shape violated: locaware {:.1}ms vs flooding {:.1}ms",
        locaware.avg_download_distance_ms(),
        flooding.avg_download_distance_ms()
    );

    let mut group = c.benchmark_group("fig2_download_distance");
    group.sample_size(10);
    for kind in ProtocolKind::PAPER_SET {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let report = simulation.run(kind, QUERIES);
                black_box(report.avg_download_distance_ms())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_download_distance);
criterion_main!(benches);
