//! Figure 4 benchmark: end-to-end runs measuring the *success rate* experiment
//! at a reduced scale for each protocol.
//!
//! Asserts the figure's shape (flooding has the highest success rate; Locaware
//! beats the Dicas variants) and times one run per protocol. The paper-scale
//! series is produced by `cargo run -p locaware-bench --bin fig4 --release`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use locaware::{ProtocolKind, Scenario, Simulation};

const QUERIES: usize = 400;

fn substrate() -> Simulation {
    Scenario::small(200).with_seed(4).substrate()
}

fn bench_success_rate(c: &mut Criterion) {
    let simulation = substrate();

    let locaware = simulation.run(ProtocolKind::Locaware, QUERIES);
    let flooding = simulation.run(ProtocolKind::Flooding, QUERIES);
    let dicas = simulation.run(ProtocolKind::Dicas, QUERIES);
    assert!(
        flooding.success_rate() > locaware.success_rate(),
        "Figure 4 shape violated: flooding {:.3} should exceed locaware {:.3}",
        flooding.success_rate(),
        locaware.success_rate()
    );
    assert!(
        locaware.success_rate() > dicas.success_rate(),
        "Figure 4 shape violated: locaware {:.3} should exceed dicas {:.3}",
        locaware.success_rate(),
        dicas.success_rate()
    );

    let mut group = c.benchmark_group("fig4_success_rate");
    group.sample_size(10);
    for kind in ProtocolKind::PAPER_SET {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let report = simulation.run(kind, QUERIES);
                black_box(report.success_rate())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_success_rate);
criterion_main!(benches);
