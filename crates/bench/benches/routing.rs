//! Microbenchmarks of the per-hop routing decision of each protocol.
//!
//! Builds a paper-scale substrate once and measures how long one forwarding
//! decision takes at a hub peer for flooding, Dicas, Dicas-Keys and Locaware —
//! the per-message cost a deployed peer would pay.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use locaware::protocol::{build_protocol, PeerView, QueryBuffer};
use locaware::{
    GroupScheme, LocId, PeerId, PeerState, ProtocolKind, QueryId, Scenario, Simulation,
};
use locaware_bloom::BloomParams;
use locaware_workload::KeywordId;

struct RoutingFixture {
    simulation: Simulation,
    peers: Vec<PeerState>,
    scheme: GroupScheme,
}

fn fixture() -> RoutingFixture {
    let scenario = Scenario::small(300).with_seed(5);
    let config = scenario.config().clone();
    let simulation = scenario.substrate();
    let scheme = GroupScheme::new(config.group_count);
    let bloom_params = BloomParams::new(config.bloom_bits, config.bloom_hashes);

    let peers: Vec<PeerState> = (0..config.peers)
        .map(|i| {
            let id = PeerId(i as u32);
            let mut state = PeerState::new(
                id,
                simulation.loc_ids()[i],
                simulation.group_ids()[i],
                bloom_params,
                config.response_index_capacity,
                config.max_providers_per_file,
                simulation.catalog().keyword_hashes().clone(),
            );
            for &file in &simulation.initial_shares()[i] {
                state.share_file(file);
            }
            for &n in simulation.overlay().neighbors(id) {
                state.record_neighbor(n, simulation.group_ids()[n.index()]);
            }
            // Give every peer some cached content so Bloom/Gid matching has
            // something to work with.
            let file = locaware::FileId((i as u32 * 7) % simulation.catalog().len() as u32);
            let keywords = simulation.catalog().filename(file).keywords().to_vec();
            state.cache_index(file, &keywords, [(PeerId((i as u32 + 1) % 300), LocId(0))]);
            state
        })
        .collect();

    RoutingFixture {
        simulation,
        peers,
        scheme,
    }
}

fn bench_forward_decision(c: &mut Criterion) {
    let fx = fixture();
    let config = fx.simulation.config().clone();
    let query = QueryBuffer::new(
        QueryId(1),
        PeerId(10),
        fx.simulation.loc_ids()[10],
        fx.simulation
            .catalog()
            .filename(locaware::FileId(0))
            .keywords()
            .to_vec(),
        Some(locaware::FileId(0)),
    );

    let mut group = c.benchmark_group("routing/forward_decision");
    for kind in [
        ProtocolKind::Flooding,
        ProtocolKind::Dicas,
        ProtocolKind::DicasKeys,
        ProtocolKind::Locaware,
    ] {
        let protocol = build_protocol(kind, &config);
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let view = PeerView {
                    state: &fx.peers[0],
                    graph: fx.simulation.overlay(),
                    scheme: &fx.scheme,
                    catalog: fx.simulation.catalog(),
                };
                black_box(protocol.forward_targets(&view, &query.context(), Some(PeerId(1))))
            })
        });
    }
    group.finish();
}

fn bench_local_match(c: &mut Criterion) {
    let fx = fixture();
    let config = fx.simulation.config().clone();
    let keywords: Vec<KeywordId> = fx
        .simulation
        .catalog()
        .filename(locaware::FileId(0))
        .keywords()
        .to_vec();
    let query = QueryBuffer::new(
        QueryId(2),
        PeerId(10),
        fx.simulation.loc_ids()[10],
        keywords,
        None,
    );
    let protocol = build_protocol(ProtocolKind::Locaware, &config);
    c.bench_function("routing/local_match_locaware", |b| {
        b.iter(|| {
            let view = PeerView {
                state: &fx.peers[0],
                graph: fx.simulation.overlay(),
                scheme: &fx.scheme,
                catalog: fx.simulation.catalog(),
            };
            black_box(protocol.local_match(&view, &query.context()))
        })
    });
}

criterion_group!(benches, bench_forward_decision, bench_local_match);
criterion_main!(benches);
