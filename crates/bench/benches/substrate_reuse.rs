//! Quantifies the experiment runner's substrate-sharing win.
//!
//! The historical sweep rebuilt the full substrate (underlay, locIds,
//! overlay, catalog, placement, groups) for every protocol at every grid
//! point; the [`Runner`] builds it once per (scenario, repetition) and shares
//! it immutably. This benchmark measures both strategies on the identical
//! four-protocol grid point, so the delta is exactly the redundant build work
//! the runner eliminates, and `substrate_build` isolates the cost of one
//! build for reference.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use locaware::{ExperimentPlan, ProtocolKind, Runner, Scenario};

// A build-heavy grid point: substrate cost grows ~quadratically with the
// peer count (all-pairs latencies feed provider selection) while run cost
// scales with the query count, so 400 peers × 60 queries keeps the benchmark
// fast yet makes the redundant-build share clearly visible — the same ratio
// regime as a paper-scale sweep point.
const PEERS: usize = 400;
const QUERIES: usize = 60;

fn scenario() -> Scenario {
    Scenario::small(PEERS).with_seed(8)
}

fn bench_substrate_reuse(c: &mut Criterion) {
    // Sanity: the two strategies must produce identical measurements, or the
    // comparison below is between different experiments.
    let shared = scenario().substrate();
    for protocol in ProtocolKind::PAPER_SET {
        let rebuilt = scenario().substrate().run(protocol, QUERIES);
        let reused = shared.run(protocol, QUERIES);
        assert_eq!(
            rebuilt.success_rate(),
            reused.success_rate(),
            "{protocol}: sharing a substrate must not change the physics"
        );
    }

    let mut group = c.benchmark_group("substrate_reuse");
    group.sample_size(10);

    // One substrate build, no protocol run: the fixed cost at stake.
    group.bench_function("substrate_build", |b| {
        b.iter(|| black_box(scenario().substrate().overlay().len()))
    });

    // Strategy A (historical): rebuild the substrate for every protocol.
    group.bench_function("rebuild_per_protocol", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for protocol in ProtocolKind::PAPER_SET {
                let simulation = scenario().substrate();
                total += simulation.run(protocol, QUERIES).avg_messages_per_query();
            }
            black_box(total)
        })
    });

    // Strategy B (runner): one build shared by all four protocols.
    group.bench_function("shared_substrate", |b| {
        b.iter(|| {
            let simulation = scenario().substrate();
            let mut total = 0.0;
            for protocol in ProtocolKind::PAPER_SET {
                total += simulation.run(protocol, QUERIES).avg_messages_per_query();
            }
            black_box(total)
        })
    });

    // The real thing: the full Runner path, including its scheduling, still
    // builds exactly once for a multi-protocol point.
    group.bench_function("runner_grid_point", |b| {
        b.iter(|| {
            let builds = Arc::new(AtomicUsize::new(0));
            let plan = ExperimentPlan::new()
                .scenario(scenario())
                .protocols(ProtocolKind::PAPER_SET)
                .query_count(QUERIES);
            let outcome = Runner::new()
                .with_threads(1)
                .with_build_counter(Arc::clone(&builds))
                .run(&plan)
                .expect("benchmark plan is complete");
            assert_eq!(builds.load(Ordering::Relaxed), 1);
            black_box(outcome.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_substrate_reuse);
criterion_main!(benches);
