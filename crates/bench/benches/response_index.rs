//! Microbenchmarks of the response index (the `RI` of §3.2/§4.1).
//!
//! Measures insertion with provider refresh, keyword lookup at the paper's
//! 50-filename capacity, and the eviction path when the index is full.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use locaware::{FileId, KeywordId, LocId, PeerId, ResponseIndex};

fn filled_index() -> ResponseIndex {
    let mut index = ResponseIndex::new(50, 5);
    for f in 0..50u32 {
        let keywords: Vec<KeywordId> = (0..3).map(|k| KeywordId(f * 3 + k)).collect();
        for p in 0..5u32 {
            index.insert(FileId(f), &keywords, [(PeerId(1000 + p), LocId(p % 24))]);
        }
    }
    index
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("response_index/fill_50_files_5_providers", |b| {
        b.iter(|| black_box(filled_index().len()))
    });
}

fn bench_lookup(c: &mut Criterion) {
    let index = filled_index();
    let present = [KeywordId(30), KeywordId(31)];
    let absent = [KeywordId(30), KeywordId(999)];
    c.bench_function("response_index/lookup_hit", |b| {
        b.iter(|| black_box(index.lookup_by_keywords(&present)))
    });
    c.bench_function("response_index/lookup_miss", |b| {
        b.iter(|| black_box(index.lookup_by_keywords(&absent)))
    });
}

fn bench_eviction(c: &mut Criterion) {
    c.bench_function("response_index/insert_with_eviction", |b| {
        let mut index = filled_index();
        let mut next = 1000u32;
        b.iter(|| {
            let keywords = [KeywordId(next), KeywordId(next + 1), KeywordId(next + 2)];
            let evicted = index.insert(FileId(next), &keywords, [(PeerId(7), LocId(0))]);
            next += 1;
            black_box(evicted.len())
        })
    });
}

fn bench_provider_refresh(c: &mut Criterion) {
    c.bench_function("response_index/provider_refresh", |b| {
        let mut index = filled_index();
        let keywords = [KeywordId(0), KeywordId(1), KeywordId(2)];
        b.iter(|| {
            let evicted = index.insert(FileId(0), &keywords, [(PeerId(1000), LocId(3))]);
            black_box(evicted.len())
        })
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_lookup,
    bench_eviction,
    bench_provider_refresh
);
criterion_main!(benches);
