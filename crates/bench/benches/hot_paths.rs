//! Before/after microbenchmarks of the PR 3 hot-path optimizations.
//!
//! Every pair measures the *old* code shape against the *new* one inside a
//! single binary, so the comparison shares a compiler, machine and load:
//!
//! * `bloom_routing/*` — the §4.2 neighbour-scan: re-hashing every query
//!   keyword per neighbour ([`BloomFilter::contains_all`] over canonical
//!   strings, the pre-PR3 routing path) vs probing with interned hashes
//!   ([`BloomFilter::contains_all_hashes`]).
//! * `response_index/*` — the optimized [`ResponseIndex`] (recency set +
//!   keyword postings) vs the pre-PR3 reference implementation preserved as
//!   [`locaware::index::naive::NaiveResponseIndex`], at the paper's
//!   50-filename capacity and at a 400-filename "scaled" capacity.
//! * `engine/*` — one end-to-end protocol run over a 300-peer substrate, the
//!   number the whole pass is in service of.
//!
//! `BENCH_pr3.json` at the repo root records one measured trajectory point of
//! these numbers (see README § Performance for methodology).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use locaware::index::naive::NaiveResponseIndex;
use locaware::{FileId, KeywordId, LocId, PeerId, ProtocolKind, ResponseIndex, Scenario};
use locaware_bloom::{BloomFilter, ElementHashes};

// ---------------------------------------------------------------- bloom routing

/// Paper shape: 50 neighbour-held filters, each summarising 50 filenames × 3
/// keywords, probed with a 3-keyword query (the per-hop §4.2 scan of a
/// 50-neighbour hub).
fn neighbour_filters() -> Vec<BloomFilter> {
    (0..50)
        .map(|n| {
            let mut f = BloomFilter::paper_default();
            for i in 0..150 {
                f.insert(&KeywordId(n * 1000 + i).canonical());
            }
            f
        })
        .collect()
}

fn bench_bloom_routing(c: &mut Criterion) {
    let filters = neighbour_filters();
    let query: Vec<KeywordId> = (0..3).map(|i| KeywordId(1000 + i)).collect();
    let hashes: Vec<ElementHashes> = query
        .iter()
        .map(|kw| ElementHashes::of_str(&kw.canonical()))
        .collect();

    let mut group = c.benchmark_group("bloom_routing");
    // Before: the pre-PR3 path hashed each keyword's canonical spelling for
    // every neighbour filter probed.
    group.bench_function("scan_50_neighbours/rehash_per_neighbour", |b| {
        b.iter(|| {
            let canonical: Vec<String> = query.iter().map(|k| k.canonical()).collect();
            filters
                .iter()
                .filter(|f| canonical.iter().all(|kw| f.contains(kw)))
                .count()
        })
    });
    // After: keywords are hashed once (interned at the catalog) and each
    // neighbour costs only the k word probes.
    group.bench_function("scan_50_neighbours/prehashed", |b| {
        b.iter(|| {
            filters
                .iter()
                .filter(|f| f.contains_all_hashes(&hashes))
                .count()
        })
    });
    group.finish();
}

// --------------------------------------------------------------- response index

trait IndexUnderTest {
    fn insert_(
        &mut self,
        file: FileId,
        keywords: &[KeywordId],
        provider: (PeerId, LocId),
    ) -> usize;
    fn lookup_(&self, query: &[KeywordId]) -> usize;
}

impl IndexUnderTest for ResponseIndex {
    fn insert_(&mut self, file: FileId, keywords: &[KeywordId], provider: (PeerId, LocId)) -> usize {
        self.insert(file, keywords, [provider]).len()
    }
    fn lookup_(&self, query: &[KeywordId]) -> usize {
        self.lookup_by_keywords(query).len()
    }
}

impl IndexUnderTest for NaiveResponseIndex {
    fn insert_(&mut self, file: FileId, keywords: &[KeywordId], provider: (PeerId, LocId)) -> usize {
        self.insert(file, keywords, [provider]).len()
    }
    fn lookup_(&self, query: &[KeywordId]) -> usize {
        self.lookup_by_keywords(query).len()
    }
}

/// Fills an index to capacity with 3-keyword filenames and 5 providers each.
fn fill<I: IndexUnderTest>(index: &mut I, capacity: u32) {
    for f in 0..capacity {
        let keywords: Vec<KeywordId> = (0..3).map(|k| KeywordId(f * 3 + k)).collect();
        for p in 0..5u32 {
            index.insert_(FileId(f), &keywords, (PeerId(10_000 + p), LocId(p % 24)));
        }
    }
}

fn bench_response_index(c: &mut Criterion) {
    for capacity in [50u32, 400] {
        let mut group = c.benchmark_group(format!("response_index/capacity_{capacity}"));

        let mut optimized = ResponseIndex::new(capacity as usize, 5);
        fill(&mut optimized, capacity);
        let mut naive = NaiveResponseIndex::new(capacity as usize, 5);
        fill(&mut naive, capacity);

        let hit = [KeywordId(30), KeywordId(31)];
        let miss = [KeywordId(30), KeywordId(3 * capacity + 999)];

        group.bench_with_input(BenchmarkId::new("lookup_hit", "naive"), &naive, |b, idx| {
            b.iter(|| black_box(idx.lookup_(&hit)))
        });
        group.bench_with_input(
            BenchmarkId::new("lookup_hit", "optimized"),
            &optimized,
            |b, idx| b.iter(|| black_box(idx.lookup_(&hit))),
        );
        group.bench_with_input(BenchmarkId::new("lookup_miss", "naive"), &naive, |b, idx| {
            b.iter(|| black_box(idx.lookup_(&miss)))
        });
        group.bench_with_input(
            BenchmarkId::new("lookup_miss", "optimized"),
            &optimized,
            |b, idx| b.iter(|| black_box(idx.lookup_(&miss))),
        );

        // Eviction-victim selection in isolation: the O(n) min-scan the
        // recency set replaces.
        group.bench_with_input(
            BenchmarkId::new("evict_victim", "naive"),
            &naive,
            |b, idx| b.iter(|| black_box(idx.eviction_candidate())),
        );
        group.bench_with_input(
            BenchmarkId::new("evict_victim", "optimized"),
            &optimized,
            |b, idx| b.iter(|| black_box(idx.eviction_candidate())),
        );

        // Insert-at-capacity: every insert evicts the least-recent filename.
        let mut next = 1_000_000u32;
        group.bench_function(BenchmarkId::new("insert_evict", "naive"), |b| {
            b.iter(|| {
                let keywords = [KeywordId(next), KeywordId(next + 1), KeywordId(next + 2)];
                let evicted = naive.insert_(FileId(next), &keywords, (PeerId(7), LocId(0)));
                next += 1;
                black_box(evicted)
            })
        });
        let mut next = 2_000_000u32;
        group.bench_function(BenchmarkId::new("insert_evict", "optimized"), |b| {
            b.iter(|| {
                let keywords = [KeywordId(next), KeywordId(next + 1), KeywordId(next + 2)];
                let evicted = optimized.insert_(FileId(next), &keywords, (PeerId(7), LocId(0)));
                next += 1;
                black_box(evicted)
            })
        });
        group.finish();
    }
}

// ----------------------------------------------------------------- engine tick

fn bench_engine(c: &mut Criterion) {
    let substrate = Scenario::small(300).with_seed(42).substrate();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for kind in [ProtocolKind::Locaware, ProtocolKind::Flooding] {
        group.bench_function(BenchmarkId::new("run_500_queries_300_peers", kind.label()), |b| {
            b.iter(|| black_box(substrate.run(kind, 500).dispatched_events))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bloom_routing, bench_response_index, bench_engine);
criterion_main!(benches);
