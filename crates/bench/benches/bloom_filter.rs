//! Microbenchmarks of the Bloom-filter substrate (§4.2 of the paper).
//!
//! Measures the three operations on the query path — keyword insertion,
//! all-keywords membership tests (the neighbour-selection test), and
//! changed-bit delta computation/application (the footnote-1 update scheme) —
//! at the paper's 1200-bit / 150-keyword operating point.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use locaware_bloom::{BloomDelta, BloomFilter, BloomParams, CountingBloomFilter};

fn keywords(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("keyword-{i}")).collect()
}

fn bench_insert(c: &mut Criterion) {
    let kws = keywords(150);
    c.bench_function("bloom/insert_150_keywords_1200_bits", |b| {
        b.iter(|| {
            let mut filter = BloomFilter::new(BloomParams::new(1200, 5));
            for kw in &kws {
                filter.insert(black_box(kw));
            }
            black_box(filter.count_ones())
        })
    });
}

fn bench_membership(c: &mut Criterion) {
    let kws = keywords(150);
    let mut filter = BloomFilter::new(BloomParams::new(1200, 5));
    for kw in &kws {
        filter.insert(kw);
    }
    let mut group = c.benchmark_group("bloom/contains_all");
    for query_len in [1usize, 2, 3] {
        let query: Vec<&str> = kws.iter().take(query_len).map(|s| s.as_str()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(query_len), &query, |b, q| {
            b.iter(|| black_box(filter.contains_all(q.iter().copied())))
        });
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let kws = keywords(150);
    let mut old = BloomFilter::new(BloomParams::new(1200, 5));
    for kw in &kws {
        old.insert(kw);
    }
    let mut new = old.clone();
    new.insert("a-fresh-filename-keyword");
    new.insert("another-fresh-keyword");
    new.insert("third-fresh-keyword");

    c.bench_function("bloom/delta_between_snapshots", |b| {
        b.iter(|| black_box(BloomDelta::between(&old, &new)))
    });

    let delta = BloomDelta::between(&old, &new);
    c.bench_function("bloom/delta_apply", |b| {
        b.iter(|| {
            let mut target = old.clone();
            delta.apply(&mut target);
            black_box(target.count_ones())
        })
    });
}

fn bench_counting(c: &mut Criterion) {
    let kws = keywords(150);
    c.bench_function("bloom/counting_insert_remove_cycle", |b| {
        b.iter(|| {
            let mut filter = CountingBloomFilter::new(BloomParams::new(1200, 5));
            for kw in &kws {
                filter.insert(kw);
            }
            for kw in &kws {
                filter.remove(kw);
            }
            black_box(filter.is_empty())
        })
    });
}

criterion_group!(benches, bench_insert, bench_membership, bench_delta, bench_counting);
criterion_main!(benches);
