//! Group ids and the `hash(·) mod M` matching rule.
//!
//! §3.2 (inherited from Dicas): *"each peer n randomly chooses a group Id noted
//! Gid_n (Gid_n ∈ [0 .. M − 1] with M a system parameter). Gid_n matches a
//! filename f if Gid_n = hash(f) mod M."* Group ids restrict which peers along a
//! response path cache an index, avoiding redundant copies among neighbours,
//! and they double as a routing hint (forward towards peers whose Gid matches).
//!
//! Dicas-Keys applies the same rule to individual query keywords instead of the
//! whole filename, which is what produces its duplicated cache entries.

use rand::Rng;
use serde::{Deserialize, Serialize};

use locaware_workload::{FileId, KeywordId};

/// A peer's group id in `[0, M)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The raw value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The group-assignment scheme: the modulus `M` plus the hash rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupScheme {
    modulus: u32,
}

impl GroupScheme {
    /// Creates a scheme with modulus `M`.
    ///
    /// # Panics
    /// Panics if `modulus` is zero.
    pub fn new(modulus: u32) -> Self {
        assert!(modulus > 0, "group modulus M must be positive");
        GroupScheme { modulus }
    }

    /// The modulus `M`.
    pub fn modulus(&self) -> u32 {
        self.modulus
    }

    /// Draws a uniformly random group id for a joining peer.
    pub fn random_gid<R: Rng + ?Sized>(&self, rng: &mut R) -> GroupId {
        GroupId(rng.gen_range(0..self.modulus))
    }

    /// Assigns every peer in `0..peers` a random group id.
    pub fn assign_all<R: Rng + ?Sized>(&self, peers: usize, rng: &mut R) -> Vec<GroupId> {
        (0..peers).map(|_| self.random_gid(rng)).collect()
    }

    /// The group a filename hashes to (`hash(f) mod M`).
    pub fn group_of_file(&self, file: FileId) -> GroupId {
        GroupId((stable_hash(u64::from(file.0) ^ 0xF11E) % u64::from(self.modulus)) as u32)
    }

    /// The group a keyword hashes to (`hash(kw) mod M`, the Dicas-Keys rule).
    pub fn group_of_keyword(&self, keyword: KeywordId) -> GroupId {
        GroupId((stable_hash(u64::from(keyword.0) ^ 0x5E1D) % u64::from(self.modulus)) as u32)
    }

    /// True if `gid` matches the filename (the caching rule of §3.2).
    pub fn gid_matches_file(&self, gid: GroupId, file: FileId) -> bool {
        gid == self.group_of_file(file)
    }

    /// True if `gid` matches at least one of the keywords (the Dicas-Keys
    /// caching/routing rule, and Locaware's Gid fallback "matched Gid wrt q").
    pub fn gid_matches_any_keyword(&self, gid: GroupId, keywords: &[KeywordId]) -> bool {
        keywords.iter().any(|&kw| gid == self.group_of_keyword(kw))
    }
}

/// SplitMix64 — a stable, platform-independent 64-bit mix used for the
/// `hash(·) mod M` rule so that every peer computes identical groups.
fn stable_hash(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gids_are_within_the_modulus() {
        let scheme = GroupScheme::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        for gid in scheme.assign_all(1000, &mut rng) {
            assert!(gid.value() < 4);
        }
        for f in 0..500u32 {
            assert!(scheme.group_of_file(FileId(f)).value() < 4);
        }
        for k in 0..500u32 {
            assert!(scheme.group_of_keyword(KeywordId(k)).value() < 4);
        }
    }

    #[test]
    fn file_groups_are_deterministic_and_balanced() {
        let scheme = GroupScheme::new(4);
        assert_eq!(
            scheme.group_of_file(FileId(123)),
            scheme.group_of_file(FileId(123))
        );
        let mut counts = [0usize; 4];
        for f in 0..4000u32 {
            counts[scheme.group_of_file(FileId(f)).value() as usize] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                (800..=1200).contains(&c),
                "group {g} has {c} of 4000 files; expected ≈1000"
            );
        }
    }

    #[test]
    fn random_assignment_is_roughly_uniform() {
        let scheme = GroupScheme::new(8);
        let gids = scheme.assign_all(8000, &mut StdRng::seed_from_u64(2));
        let mut counts = [0usize; 8];
        for g in gids {
            counts[g.value() as usize] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "unbalanced assignment: {counts:?}");
        }
    }

    #[test]
    fn matching_rules() {
        let scheme = GroupScheme::new(4);
        let file = FileId(77);
        let gid = scheme.group_of_file(file);
        assert!(scheme.gid_matches_file(gid, file));
        let other = GroupId((gid.value() + 1) % 4);
        assert!(!scheme.gid_matches_file(other, file));

        let kws = [KeywordId(1), KeywordId(2), KeywordId(3)];
        let matching_gid = scheme.group_of_keyword(KeywordId(2));
        assert!(scheme.gid_matches_any_keyword(matching_gid, &kws));
        // A gid matching none of the three keywords (exists since M=4 > 3 used groups at most).
        let used: std::collections::HashSet<u32> =
            kws.iter().map(|&k| scheme.group_of_keyword(k).value()).collect();
        if let Some(unused) = (0..4).find(|g| !used.contains(g)) {
            assert!(!scheme.gid_matches_any_keyword(GroupId(unused), &kws));
        }
        assert!(!scheme.gid_matches_any_keyword(GroupId(0), &[]));
    }

    #[test]
    fn file_and_keyword_hashes_are_independent() {
        // The same raw id should not be forced into the same group when
        // interpreted as a file vs. as a keyword.
        let scheme = GroupScheme::new(64);
        let differing = (0..1000u32)
            .filter(|&i| scheme.group_of_file(FileId(i)) != scheme.group_of_keyword(KeywordId(i)))
            .count();
        assert!(differing > 900, "hash domains should be separated, {differing}");
    }

    #[test]
    fn modulus_one_puts_everything_in_group_zero() {
        let scheme = GroupScheme::new(1);
        assert_eq!(scheme.group_of_file(FileId(9)), GroupId(0));
        assert_eq!(scheme.random_gid(&mut StdRng::seed_from_u64(3)), GroupId(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_modulus_is_rejected() {
        let _ = GroupScheme::new(0);
    }
}
