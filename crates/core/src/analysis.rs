//! Post-run analysis helpers.
//!
//! [`RunAnalysis`] turns the per-query records of a [`SimulationReport`] into
//! the distributional and temporal views used by the `inspect` binary, the
//! examples and EXPERIMENTS.md:
//!
//! * **warm-up series** — how success rate and download distance evolve as the
//!   run progresses (Figure 2's "Locaware shows improvement with the increase
//!   of queries" is exactly this view),
//! * **download-distance histogram** — whether the savings come from the tail
//!   (avoiding the farthest providers) or shift the whole distribution,
//! * **hop histogram** — how deep into the overlay queries travel before the
//!   first hit,
//! * **locality/caching breakdown** — what fraction of satisfied queries were
//!   served from the requestor's locality and from caches.

use serde::{Deserialize, Serialize};

use locaware_metrics::{Histogram, RunMetrics, Table};

use crate::results::SimulationReport;

/// One window of the warm-up series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmupPoint {
    /// Index of the window (0 = earliest queries).
    pub window: usize,
    /// First query index covered by the window.
    pub start_query: usize,
    /// Number of queries in the window.
    pub queries: usize,
    /// Success rate within the window.
    pub success_rate: f64,
    /// Average download distance within the window (satisfied queries only).
    pub download_distance_ms: f64,
    /// Locality-match rate within the window.
    pub locality_match_rate: f64,
}

/// Distributional and temporal views over one run.
#[derive(Debug, Clone)]
pub struct RunAnalysis {
    metrics: RunMetrics,
}

impl RunAnalysis {
    /// Analyses the records of a report.
    pub fn of(report: &SimulationReport) -> Self {
        RunAnalysis {
            metrics: report.metrics.clone(),
        }
    }

    /// Analyses a bare metrics collection.
    pub fn of_metrics(metrics: RunMetrics) -> Self {
        RunAnalysis { metrics }
    }

    /// Splits the run into `windows` equal windows (in query-issue order) and
    /// reports each window's metrics. Returns fewer windows when the run is
    /// shorter than `windows` queries.
    pub fn warmup_series(&self, windows: usize) -> Vec<WarmupPoint> {
        let total = self.metrics.len();
        if total == 0 || windows == 0 {
            return Vec::new();
        }
        let windows = windows.min(total);
        let per_window = total / windows;
        let mut out = Vec::with_capacity(windows);
        for w in 0..windows {
            let start = w * per_window;
            let end = if w == windows - 1 { total } else { start + per_window };
            let slice = RunMetrics::from_records(self.metrics.records()[start..end].to_vec());
            out.push(WarmupPoint {
                window: w,
                start_query: start,
                queries: end - start,
                success_rate: slice.success_rate(),
                download_distance_ms: slice.avg_download_distance_ms(),
                locality_match_rate: slice.locality_match_rate(),
            });
        }
        out
    }

    /// Histogram of download distances over satisfied queries, in the paper's
    /// 0–500 ms latency range.
    pub fn distance_histogram(&self) -> Histogram {
        let mut histogram = Histogram::for_latencies_ms();
        for record in self.metrics.records() {
            if let Some(d) = record.download_distance_ms {
                histogram.record(d);
            }
        }
        histogram
    }

    /// Histogram of overlay hops from the requestor to the first hit.
    pub fn hops_histogram(&self, ttl: u32) -> Histogram {
        let mut histogram = Histogram::new(0.0, f64::from(ttl) + 1.0, (ttl + 1) as usize);
        for record in self.metrics.records() {
            if let Some(hops) = record.hops_to_hit {
                histogram.record(f64::from(hops));
            }
        }
        histogram
    }

    /// A compact breakdown table of where satisfied queries were served from.
    pub fn breakdown_table(&self) -> Table {
        let satisfied: Vec<_> = self
            .metrics
            .records()
            .iter()
            .filter(|r| r.is_success())
            .collect();
        let total = self.metrics.len();
        let n = satisfied.len();
        let from_cache = satisfied.iter().filter(|r| r.answered_from_cache).count();
        let local = satisfied.iter().filter(|r| r.locality_match).count();
        let multi_provider = satisfied.iter().filter(|r| r.providers_offered > 1).count();
        let pct = |count: usize, of: usize| {
            if of == 0 {
                "n/a".to_string()
            } else {
                format!("{:.1}%", 100.0 * count as f64 / of as f64)
            }
        };
        let mut table = Table::new(["breakdown", "count", "share"]);
        table.push_row(["queries issued".to_string(), total.to_string(), "100.0%".to_string()]);
        table.push_row(["satisfied".to_string(), n.to_string(), pct(n, total)]);
        table.push_row([
            "answered from a response index".to_string(),
            from_cache.to_string(),
            pct(from_cache, n),
        ]);
        table.push_row([
            "served from the requestor's locality".to_string(),
            local.to_string(),
            pct(local, n),
        ]);
        table.push_row([
            "offered more than one provider".to_string(),
            multi_provider.to_string(),
            pct(multi_provider, n),
        ]);
        table
    }

    /// Relative change of a metric between the first and last warm-up window:
    /// negative means the metric decreased over the run (e.g. download distance
    /// shrinking as replication spreads).
    pub fn warmup_trend(&self, windows: usize, metric: impl Fn(&WarmupPoint) -> f64) -> Option<f64> {
        let series = self.warmup_series(windows);
        let first = series.first()?;
        let last = series.last()?;
        let base = metric(first);
        if base == 0.0 {
            return None;
        }
        Some((metric(last) - base) / base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locaware_metrics::{QueryOutcome, QueryRecord};

    fn record(index: u64, success: bool, distance: f64, hops: u32, local: bool) -> QueryRecord {
        QueryRecord {
            index,
            requestor: (index % 10) as u32,
            outcome: if success {
                QueryOutcome::Satisfied
            } else {
                QueryOutcome::Unsatisfied
            },
            messages: 10,
            download_distance_ms: success.then_some(distance),
            locality_match: success && local,
            providers_offered: if success { 3 } else { 0 },
            hops_to_hit: success.then_some(hops),
            answered_from_cache: success && index.is_multiple_of(2),
            completion_time_ms: Some(distance * 2.0),
        }
    }

    /// A run that improves over time: the second half succeeds more often and
    /// downloads from closer providers.
    fn improving_run() -> RunAnalysis {
        let mut records = Vec::new();
        for i in 0..100u64 {
            let late = i >= 50;
            let success = if late { i % 2 == 0 } else { i % 4 == 0 };
            let distance = if late { 80.0 } else { 200.0 };
            records.push(record(i, success, distance, 3, late));
        }
        RunAnalysis::of_metrics(RunMetrics::from_records(records))
    }

    #[test]
    fn warmup_series_shows_the_improvement() {
        let analysis = improving_run();
        let series = analysis.warmup_series(4);
        assert_eq!(series.len(), 4);
        assert_eq!(series.iter().map(|w| w.queries).sum::<usize>(), 100);
        assert!(series[3].success_rate > series[0].success_rate);
        assert!(series[3].download_distance_ms < series[0].download_distance_ms);

        let trend = analysis
            .warmup_trend(4, |w| w.download_distance_ms)
            .expect("non-degenerate run");
        assert!(trend < 0.0, "distance should shrink over the run, trend {trend}");
    }

    #[test]
    fn warmup_series_edge_cases() {
        let empty = RunAnalysis::of_metrics(RunMetrics::new());
        assert!(empty.warmup_series(4).is_empty());
        assert!(empty.warmup_trend(4, |w| w.success_rate).is_none());

        let tiny = RunAnalysis::of_metrics(RunMetrics::from_records(vec![record(0, true, 50.0, 1, true)]));
        let series = tiny.warmup_series(10);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].queries, 1);
    }

    #[test]
    fn histograms_cover_only_satisfied_queries() {
        let analysis = improving_run();
        let distances = analysis.distance_histogram();
        let hops = analysis.hops_histogram(7);
        let satisfied = improving_run()
            .warmup_series(1)
            .first()
            .map(|w| (w.success_rate * w.queries as f64).round() as u64)
            .unwrap();
        assert_eq!(distances.total(), satisfied);
        assert_eq!(hops.total(), satisfied);
        assert_eq!(distances.overflow(), 0);
    }

    #[test]
    fn breakdown_table_is_consistent() {
        let analysis = improving_run();
        let table = analysis.breakdown_table();
        assert_eq!(table.len(), 5);
        let rendered = table.render();
        assert!(rendered.contains("queries issued"));
        assert!(rendered.contains("satisfied"));
        assert!(rendered.contains("100"));
    }
}
