//! The response index (`RI`): Locaware's location-aware index cache.
//!
//! §3.2: *"each peer n maintains a cache of file indexes called response index
//! and noted RI_n"*, where an index of `f` contains the filename and the
//! address of a provider. §4.1 extends each entry with the provider's `locId`
//! and allows *several* providers per file. §4.1.2 fixes the replacement rule:
//! *"peer n constantly updates the list of providers of f in its RI_n as new
//! queries for f pass by n: the most recent p_f entries replace the oldest
//! ones"*, and the cache capacity is bounded by the peer's storage (the paper
//! sizes its Bloom filter for 50 filenames).
//!
//! [`ResponseIndex`] implements exactly that: a bounded map from file to a
//! bounded, recency-ordered provider list, with least-recently-updated filename
//! eviction and explicit eviction reporting so the owning peer can keep its
//! Bloom filter in sync.
//!
//! Three auxiliary structures keep the per-query and per-churn cost flat as
//! the index grows: a recency set ordered by `(last_touched, file)` makes
//! eviction an ordered first-element pop instead of an O(n) min-scan, an
//! inverted keyword → files postings map lets
//! [`ResponseIndex::lookup_by_keywords`] touch only the entries sharing a
//! query keyword instead of scanning every cached filename, and a mirrored
//! provider → files postings map lets [`ResponseIndex::remove_provider`] —
//! proactive invalidation when a provider departs — touch only the entries
//! that actually record the departed peer. (The simulation engine currently
//! invalidates *lazily*: departed providers are filtered by the online check
//! at selection time, and `remove_provider` is exercised by the churn-aware
//! callers of [`crate::peer::PeerState::forget_provider`] and by the tests;
//! the postings map is what makes wiring proactive invalidation into churn
//! departures affordable — see the ROADMAP.) All three are maintained incrementally on
//! insert/touch/evict/remove and are pure functions of the entry map, so
//! observable behaviour is identical to the naive scans (pinned by the
//! model-based property tests against [`naive::NaiveResponseIndex`]).

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use locaware_net::LocId;
use locaware_overlay::PeerId;
use locaware_workload::{FileId, KeywordId};

/// One provider entry in the index: address + location id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderRecord {
    /// The provider peer.
    pub peer: PeerId,
    /// The provider's locId.
    pub loc_id: LocId,
    /// Recency stamp (larger = more recent); used by the replacement rule.
    pub freshness: u64,
}

/// A cached filename with its known providers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The file this entry indexes.
    pub file: FileId,
    /// All keywords of the filename (needed for keyword matching and for
    /// Bloom-filter maintenance on eviction).
    pub keywords: Vec<KeywordId>,
    /// Known providers, oldest first, newest last.
    providers: Vec<ProviderRecord>,
    /// Recency stamp of the last touch of this entry (insert or provider add).
    last_touched: u64,
}

impl IndexEntry {
    /// Known providers, oldest first.
    pub fn providers(&self) -> &[ProviderRecord] {
        &self.providers
    }

    /// Number of providers currently recorded.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// True if the entry's keywords contain every keyword of `query` (the §3.1
    /// satisfaction rule applied to a cached index).
    pub fn matches(&self, query: &[KeywordId]) -> bool {
        !query.is_empty() && query.iter().all(|kw| self.keywords.contains(kw))
    }
}

/// A filename evicted from the index, reported so the owner can update its
/// Bloom filter (remove the evicted filename's keywords).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted file.
    pub file: FileId,
    /// The keywords of its filename.
    pub keywords: Vec<KeywordId>,
}

/// The bounded, location-aware response index of one peer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseIndex {
    entries: HashMap<FileId, IndexEntry>,
    /// Maximum number of distinct filenames (paper: 50).
    capacity: usize,
    /// Maximum providers kept per filename.
    max_providers: usize,
    /// Monotonic recency counter.
    clock: u64,
    /// Entries ordered by `(last_touched, file)`: the first element is always
    /// the next eviction victim. `last_touched` values are unique per touch
    /// (the clock ticks on every insert), so membership is one exact key.
    recency: BTreeSet<(u64, FileId)>,
    /// Inverted index: keyword → cached files whose filename contains it
    /// (each list sorted by file id, matching the entry's keyword *set*).
    postings: HashMap<KeywordId, PostingsList>,
    /// Inverted index: provider → cached files with a record for that
    /// provider (each list sorted by file id). Makes
    /// [`ResponseIndex::remove_provider`] and
    /// [`ResponseIndex::files_of_provider`] touch only the affected entries
    /// instead of scanning the whole cache.
    provider_postings: HashMap<PeerId, PostingsList>,
}

/// The file list of one postings-map keyword.
///
/// With a 9000-keyword pool and ~50 cached filenames of 3 keywords, almost
/// every keyword maps to exactly one file; storing that case inline avoids a
/// heap allocation per keyword on the insert/evict path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum PostingsList {
    /// A single file (no heap allocation).
    One(FileId),
    /// Two or more files, sorted by id.
    Many(Vec<FileId>),
}

impl PostingsList {
    /// The files as a sorted slice.
    fn as_slice(&self) -> &[FileId] {
        match self {
            PostingsList::One(file) => std::slice::from_ref(file),
            PostingsList::Many(files) => files,
        }
    }

    /// Adds `file`, keeping the list sorted and duplicate-free.
    fn add(&mut self, file: FileId) {
        match self {
            PostingsList::One(existing) if *existing == file => {}
            PostingsList::One(existing) => {
                let mut files = vec![*existing, file];
                files.sort_unstable();
                *self = PostingsList::Many(files);
            }
            PostingsList::Many(files) => {
                if let Err(pos) = files.binary_search(&file) {
                    files.insert(pos, file);
                }
            }
        }
    }

    /// Removes `file`; returns true when the list is now empty (the caller
    /// drops the postings key).
    fn remove(&mut self, file: FileId) -> bool {
        match self {
            PostingsList::One(existing) => *existing == file,
            PostingsList::Many(files) => {
                if let Ok(pos) = files.binary_search(&file) {
                    files.remove(pos);
                }
                if files.is_empty() {
                    return true;
                }
                if files.len() == 1 {
                    let only = files[0];
                    *self = PostingsList::One(only);
                }
                false
            }
        }
    }
}

/// Equality is over observable contents (entries and capacities); the recency
/// set and postings map are derived structures and the clock is internal, so
/// two indexes that hold the same entries compare equal.
impl PartialEq for ResponseIndex {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
            && self.capacity == other.capacity
            && self.max_providers == other.max_providers
    }
}

impl Eq for ResponseIndex {}

impl ResponseIndex {
    /// Creates an empty index.
    ///
    /// # Panics
    /// Panics if either capacity is zero.
    pub fn new(capacity: usize, max_providers: usize) -> Self {
        assert!(capacity > 0, "response index capacity must be positive");
        assert!(max_providers > 0, "provider capacity must be positive");
        ResponseIndex {
            entries: HashMap::with_capacity(capacity),
            capacity,
            max_providers,
            clock: 0,
            recency: BTreeSet::new(),
            postings: HashMap::new(),
            provider_postings: HashMap::new(),
        }
    }

    /// Number of cached filenames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of filenames this index holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum providers per filename.
    pub fn max_providers(&self) -> usize {
        self.max_providers
    }

    /// The entry for `file`, if cached.
    pub fn entry(&self, file: FileId) -> Option<&IndexEntry> {
        self.entries.get(&file)
    }

    /// True if `file` is cached.
    pub fn contains(&self, file: FileId) -> bool {
        self.entries.contains_key(&file)
    }

    /// Iterator over all entries, least-recently-touched first. Served from
    /// the recency set so the order is deterministic — the backing hash map's
    /// is not, and must never escape this module.
    pub fn entries(&self) -> impl Iterator<Item = &IndexEntry> {
        self.recency.iter().map(|&(_, file)| &self.entries[&file])
    }

    /// Every cached filename's keywords (with multiplicity across files), used
    /// to rebuild a Bloom filter from scratch. Recency order, like
    /// [`ResponseIndex::entries`].
    pub fn all_keywords(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.entries().flat_map(|e| e.keywords.iter().copied())
    }

    /// Cached files whose filename matches every keyword of `query`.
    ///
    /// Served from the inverted postings map: only the files sharing the
    /// query's rarest keyword are examined, so a miss costs one (or a few)
    /// hash lookups instead of a scan over every cached entry. Results are
    /// in file-id order, exactly as the naive full scan would produce.
    pub fn lookup_by_keywords(&self, query: &[KeywordId]) -> Vec<FileId> {
        if query.is_empty() {
            return Vec::new();
        }
        // Seed candidates from the keyword with the shortest postings list;
        // if any query keyword has no postings, nothing can match.
        let mut shortest: Option<&[FileId]> = None;
        for kw in query {
            match self.postings.get(kw) {
                None => return Vec::new(),
                Some(list) => {
                    let files = list.as_slice();
                    if shortest.is_none_or(|s| files.len() < s.len()) {
                        shortest = Some(files);
                    }
                }
            }
        }
        let candidates = shortest.unwrap_or(&[]);
        // Postings lists are kept in file-id order, so the result is too.
        candidates
            .iter()
            .copied()
            .filter(|&f| self.entries[&f].matches(query))
            .collect()
    }

    /// Records providers for `file`, creating the entry if needed. Returns any
    /// filename evicted to make room (so the caller can update its Bloom
    /// filter). `keywords` must be the full keyword list of `file`'s filename.
    ///
    /// Existing providers are refreshed (their freshness bumped and locId
    /// updated); when the provider list overflows, the oldest entries are
    /// dropped, per §4.1.2.
    pub fn insert(
        &mut self,
        file: FileId,
        keywords: &[KeywordId],
        providers: impl IntoIterator<Item = (PeerId, LocId)>,
    ) -> Vec<Eviction> {
        self.clock += 1;
        let now = self.clock;
        let mut evictions = Vec::new();

        match self.entries.get_mut(&file) {
            Some(entry) => {
                // Touch: move the entry to the most-recent end of the
                // recency order.
                let was = self.recency.remove(&(entry.last_touched, file));
                debug_assert!(was, "every entry has a recency key");
                entry.last_touched = now;
                self.recency.insert((now, file));
            }
            None => {
                if self.entries.len() >= self.capacity {
                    if let Some(evicted) = self.evict_least_recent() {
                        evictions.push(evicted);
                    }
                }
                self.entries.insert(
                    file,
                    IndexEntry {
                        file,
                        keywords: keywords.to_vec(),
                        providers: Vec::new(),
                        last_touched: now,
                    },
                );
                self.recency.insert((now, file));
                for &kw in keywords {
                    match self.postings.entry(kw) {
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            slot.insert(PostingsList::One(file));
                        }
                        std::collections::hash_map::Entry::Occupied(mut slot) => {
                            slot.get_mut().add(file);
                        }
                    }
                }
            }
        }
        let entry = self.entries.get_mut(&file).expect("entry was just ensured");

        let mut added: Vec<PeerId> = Vec::new();
        for (peer, loc_id) in providers {
            match entry.providers.iter_mut().find(|p| p.peer == peer) {
                Some(existing) => {
                    existing.loc_id = loc_id;
                    existing.freshness = now;
                }
                None => {
                    entry.providers.push(ProviderRecord {
                        peer,
                        loc_id,
                        freshness: now,
                    });
                    added.push(peer);
                }
            }
        }
        // Keep only the most recent `max_providers` entries (oldest dropped).
        let mut dropped: Vec<PeerId> = Vec::new();
        if entry.providers.len() > self.max_providers {
            entry.providers.sort_by_key(|p| p.freshness);
            let overflow = entry.providers.len() - self.max_providers;
            dropped.extend(entry.providers.drain(0..overflow).map(|p| p.peer));
        }
        // Provider postings follow the record membership: adds first, then
        // drops, so a provider added and immediately aged out in the same
        // call nets to no entry.
        for peer in added {
            match self.provider_postings.entry(peer) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(PostingsList::One(file));
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().add(file);
                }
            }
        }
        for peer in dropped {
            if let Some(list) = self.provider_postings.get_mut(&peer) {
                if list.remove(file) {
                    self.provider_postings.remove(&peer);
                }
            }
        }
        evictions
    }

    /// Removes every provider record pointing at `peer` (used under churn when
    /// a provider departs). Entries left with no providers are dropped and
    /// reported as evictions.
    ///
    /// Served from the provider → files postings map: only the entries that
    /// actually record `peer` are touched, so invalidating a departed
    /// provider costs O(affected entries) instead of a scan over the whole
    /// cache (evictions come back in file-id order, a refinement of the
    /// naive scan's unspecified map order).
    pub fn remove_provider(&mut self, peer: PeerId) -> Vec<Eviction> {
        let Some(affected) = self.provider_postings.remove(&peer) else {
            return Vec::new();
        };
        let mut evictions = Vec::new();
        for &file in affected.as_slice() {
            let entry = self
                .entries
                .get_mut(&file)
                .expect("provider postings only reference cached files");
            entry.providers.retain(|p| p.peer != peer);
            if entry.providers.is_empty() {
                if let Some(eviction) = self.remove_entry(file) {
                    evictions.push(eviction);
                }
            }
        }
        evictions
    }

    /// The cached files recording `peer` as a provider, in file-id order.
    /// O(1) map lookup into the provider postings; the naive equivalent scans
    /// every entry.
    pub fn files_of_provider(&self, peer: PeerId) -> &[FileId] {
        self.provider_postings
            .get(&peer)
            .map(PostingsList::as_slice)
            .unwrap_or(&[])
    }

    /// The filename the next capacity overflow would evict (the
    /// least-recently-touched entry), if any is cached. O(1): the recency
    /// set's first element, where the naive implementation min-scans.
    pub fn eviction_candidate(&self) -> Option<FileId> {
        self.recency.iter().next().map(|&(_, file)| file)
    }

    /// Drops everything (used when a peer leaves and rejoins: its cache is lost).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.postings.clear();
        self.provider_postings.clear();
    }

    fn evict_least_recent(&mut self) -> Option<Eviction> {
        // The recency set is ordered by (last_touched, file), so its first
        // element *is* the least-recently-touched entry the naive min-scan
        // would find.
        let &(_, victim) = self.recency.iter().next()?;
        self.remove_entry(victim)
    }

    /// Removes one entry and keeps the recency set and both postings maps in
    /// sync.
    fn remove_entry(&mut self, file: FileId) -> Option<Eviction> {
        let entry = self.entries.remove(&file)?;
        let was = self.recency.remove(&(entry.last_touched, file));
        debug_assert!(was, "every entry has a recency key");
        for &kw in &entry.keywords {
            if let Some(list) = self.postings.get_mut(&kw) {
                if list.remove(file) {
                    self.postings.remove(&kw);
                }
            }
        }
        for record in &entry.providers {
            if let Some(list) = self.provider_postings.get_mut(&record.peer) {
                if list.remove(file) {
                    self.provider_postings.remove(&record.peer);
                }
            }
        }
        Some(Eviction {
            file,
            keywords: entry.keywords,
        })
    }
}

pub mod naive {
    //! The pre-optimization reference implementation of the response index.
    //!
    //! [`NaiveResponseIndex`] keeps the exact observable semantics of
    //! [`super::ResponseIndex`] with the simplest possible data layout: one
    //! entry map, O(n) min-scan eviction and full-scan keyword lookup. It
    //! exists for two jobs: the model-based property tests assert that the
    //! optimized index and this model produce identical evictions and lookup
    //! results under arbitrary operation sequences, and `benches/hot_paths.rs`
    //! measures the optimized structures against it.

    use super::{Eviction, IndexEntry, ProviderRecord};
    use locaware_net::LocId;
    use locaware_overlay::PeerId;
    use locaware_workload::{FileId, KeywordId};
    use std::collections::HashMap;

    /// The unoptimized model: same behaviour as [`super::ResponseIndex`],
    /// naive scans everywhere.
    #[derive(Debug, Clone)]
    pub struct NaiveResponseIndex {
        entries: HashMap<FileId, IndexEntry>,
        capacity: usize,
        max_providers: usize,
        clock: u64,
    }

    impl NaiveResponseIndex {
        /// Creates an empty index (same contract as [`super::ResponseIndex::new`]).
        ///
        /// # Panics
        /// Panics if either capacity is zero.
        pub fn new(capacity: usize, max_providers: usize) -> Self {
            assert!(capacity > 0, "response index capacity must be positive");
            assert!(max_providers > 0, "provider capacity must be positive");
            NaiveResponseIndex {
                entries: HashMap::with_capacity(capacity),
                capacity,
                max_providers,
                clock: 0,
            }
        }

        /// Number of cached filenames.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// True if nothing is cached.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// True if `file` is cached.
        pub fn contains(&self, file: FileId) -> bool {
            self.entries.contains_key(&file)
        }

        /// The entry for `file`, if cached.
        pub fn entry(&self, file: FileId) -> Option<&IndexEntry> {
            self.entries.get(&file)
        }

        /// Full-scan keyword lookup (the model for
        /// [`super::ResponseIndex::lookup_by_keywords`]).
        pub fn lookup_by_keywords(&self, query: &[KeywordId]) -> Vec<FileId> {
            let mut files: Vec<FileId> = self
                .entries
                // lint:allow(hash-iter): matches are sorted to file-id order before return
                .values()
                .filter(|e| e.matches(query))
                .map(|e| e.file)
                .collect();
            files.sort_unstable();
            files
        }

        /// Insert with min-scan eviction (the model for
        /// [`super::ResponseIndex::insert`]).
        pub fn insert(
            &mut self,
            file: FileId,
            keywords: &[KeywordId],
            providers: impl IntoIterator<Item = (PeerId, LocId)>,
        ) -> Vec<Eviction> {
            self.clock += 1;
            let now = self.clock;
            let mut evictions = Vec::new();

            if !self.entries.contains_key(&file) && self.entries.len() >= self.capacity {
                if let Some(evicted) = self.evict_least_recent() {
                    evictions.push(evicted);
                }
            }

            let entry = self.entries.entry(file).or_insert_with(|| IndexEntry {
                file,
                keywords: keywords.to_vec(),
                providers: Vec::new(),
                last_touched: now,
            });
            entry.last_touched = now;

            for (peer, loc_id) in providers {
                match entry.providers.iter_mut().find(|p| p.peer == peer) {
                    Some(existing) => {
                        existing.loc_id = loc_id;
                        existing.freshness = now;
                    }
                    None => entry.providers.push(ProviderRecord {
                        peer,
                        loc_id,
                        freshness: now,
                    }),
                }
            }
            if entry.providers.len() > self.max_providers {
                entry.providers.sort_by_key(|p| p.freshness);
                let overflow = entry.providers.len() - self.max_providers;
                entry.providers.drain(0..overflow);
            }
            evictions
        }

        /// Provider removal (the model for
        /// [`super::ResponseIndex::remove_provider`]).
        pub fn remove_provider(&mut self, peer: PeerId) -> Vec<Eviction> {
            let mut evictions = Vec::new();
            let mut emptied: Vec<FileId> = self
                .entries
                // lint:allow(hash-iter): the per-entry retain commutes, and the emptied set is sorted to file-id order before evictions are emitted
                .iter_mut()
                .filter_map(|(&file, entry)| {
                    entry.providers.retain(|p| p.peer != peer);
                    if entry.providers.is_empty() {
                        Some(file)
                    } else {
                        None
                    }
                })
                .collect();
            // Deterministic model output: evictions come back in file-id
            // order (matching the optimized index's posting order), never in
            // the backing map's.
            emptied.sort_unstable();
            for file in emptied {
                if let Some(entry) = self.entries.remove(&file) {
                    evictions.push(Eviction {
                        file,
                        keywords: entry.keywords,
                    });
                }
            }
            evictions
        }

        /// Drops everything (the model for [`super::ResponseIndex::clear`]).
        pub fn clear(&mut self) {
            self.entries.clear();
        }

        /// Full-scan provider lookup (the model for
        /// [`super::ResponseIndex::files_of_provider`]).
        pub fn files_of_provider(&self, peer: PeerId) -> Vec<FileId> {
            let mut files: Vec<FileId> = self
                .entries
                // lint:allow(hash-iter): matches are sorted to file-id order before return
                .values()
                .filter(|e| e.providers().iter().any(|p| p.peer == peer))
                .map(|e| e.file)
                .collect();
            files.sort_unstable();
            files
        }

        /// The next eviction victim, by O(n) min-scan (the model for
        /// [`super::ResponseIndex::eviction_candidate`]).
        pub fn eviction_candidate(&self) -> Option<FileId> {
            self.entries
                // lint:allow(hash-iter): min over the total (last_touched, file) key — every visit order yields the same minimum
                .values()
                .min_by_key(|e| (e.last_touched, e.file))
                .map(|e| e.file)
        }

        fn evict_least_recent(&mut self) -> Option<Eviction> {
            let victim = self
                .entries
                // lint:allow(hash-iter): min over the total (last_touched, file) key — every visit order yields the same minimum
                .values()
                .min_by_key(|e| (e.last_touched, e.file))
                .map(|e| e.file)?;
            self.entries.remove(&victim).map(|entry| Eviction {
                file: victim,
                keywords: entry.keywords,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kws(ids: &[u32]) -> Vec<KeywordId> {
        ids.iter().map(|&i| KeywordId(i)).collect()
    }

    fn provider(p: u32, loc: u32) -> (PeerId, LocId) {
        (PeerId(p), LocId(loc))
    }

    #[test]
    fn insert_and_lookup_by_keywords() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[10, 20, 30]), [provider(5, 2)]);
        ri.insert(FileId(2), &kws(&[10, 40, 50]), [provider(6, 1)]);

        assert_eq!(ri.len(), 2);
        assert!(ri.contains(FileId(1)));
        assert_eq!(ri.lookup_by_keywords(&kws(&[10])), vec![FileId(1), FileId(2)]);
        assert_eq!(ri.lookup_by_keywords(&kws(&[10, 30])), vec![FileId(1)]);
        assert!(ri.lookup_by_keywords(&kws(&[99])).is_empty());
        assert!(ri.lookup_by_keywords(&[]).is_empty(), "empty queries match nothing");
    }

    #[test]
    fn providers_are_refreshed_not_duplicated() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[1, 2, 3]), [provider(5, 2)]);
        ri.insert(FileId(1), &kws(&[1, 2, 3]), [provider(5, 7)]);
        let entry = ri.entry(FileId(1)).unwrap();
        assert_eq!(entry.provider_count(), 1);
        assert_eq!(entry.providers()[0].loc_id, LocId(7), "locId refreshed to the latest");
    }

    #[test]
    fn most_recent_providers_replace_the_oldest() {
        let mut ri = ResponseIndex::new(10, 3);
        for p in 0..5u32 {
            ri.insert(FileId(1), &kws(&[1, 2, 3]), [provider(p, p)]);
        }
        let entry = ri.entry(FileId(1)).unwrap();
        assert_eq!(entry.provider_count(), 3);
        let kept: Vec<u32> = entry.providers().iter().map(|p| p.peer.0).collect();
        assert_eq!(kept, vec![2, 3, 4], "the three most recent providers survive");
    }

    #[test]
    fn filename_capacity_evicts_least_recently_touched() {
        let mut ri = ResponseIndex::new(2, 2);
        ri.insert(FileId(1), &kws(&[1]), [provider(1, 0)]);
        ri.insert(FileId(2), &kws(&[2]), [provider(2, 0)]);
        // Touch file 1 so file 2 becomes the least-recently-used entry.
        ri.insert(FileId(1), &kws(&[1]), [provider(9, 0)]);
        let evictions = ri.insert(FileId(3), &kws(&[3]), [provider(3, 0)]);
        assert_eq!(evictions.len(), 1);
        assert_eq!(evictions[0].file, FileId(2));
        assert_eq!(evictions[0].keywords, kws(&[2]));
        assert!(ri.contains(FileId(1)));
        assert!(ri.contains(FileId(3)));
        assert!(!ri.contains(FileId(2)));
        assert_eq!(ri.len(), 2);
    }

    #[test]
    fn remove_provider_drops_empty_entries() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[1, 2]), [provider(5, 0)]);
        ri.insert(FileId(2), &kws(&[3, 4]), [provider(5, 0), provider(6, 1)]);
        let evictions = ri.remove_provider(PeerId(5));
        assert_eq!(evictions.len(), 1);
        assert_eq!(evictions[0].file, FileId(1));
        assert!(!ri.contains(FileId(1)));
        assert_eq!(ri.entry(FileId(2)).unwrap().provider_count(), 1);
        assert!(ri.remove_provider(PeerId(5)).is_empty(), "already removed");
    }

    #[test]
    fn provider_postings_track_membership_exactly() {
        let mut ri = ResponseIndex::new(10, 2);
        ri.insert(FileId(2), &kws(&[1]), [provider(5, 0)]);
        ri.insert(FileId(1), &kws(&[2]), [provider(5, 0), provider(6, 0)]);
        assert_eq!(ri.files_of_provider(PeerId(5)), &[FileId(1), FileId(2)]);
        assert_eq!(ri.files_of_provider(PeerId(6)), &[FileId(1)]);
        assert!(ri.files_of_provider(PeerId(99)).is_empty());

        // Ageing provider 5 out of file 1 (max 2 providers, 5 is the oldest)
        // must update its postings.
        ri.insert(FileId(1), &kws(&[2]), [provider(7, 0)]);
        assert_eq!(ri.files_of_provider(PeerId(5)), &[FileId(2)]);
        assert_eq!(ri.files_of_provider(PeerId(7)), &[FileId(1)]);

        // Evicting an entry removes it from every surviving provider's list.
        let evictions = ri.remove_provider(PeerId(5));
        assert_eq!(evictions.len(), 1, "file 2 lost its only provider");
        assert_eq!(evictions[0].file, FileId(2));
        assert!(ri.files_of_provider(PeerId(5)).is_empty());

        ri.clear();
        assert!(ri.files_of_provider(PeerId(6)).is_empty());
    }

    #[test]
    fn all_keywords_reflects_contents() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[1, 2]), [provider(5, 0)]);
        ri.insert(FileId(2), &kws(&[2, 3]), [provider(6, 0)]);
        let mut all: Vec<u32> = ri.all_keywords().map(|k| k.0).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 2, 3]);
        ri.clear();
        assert!(ri.is_empty());
        assert_eq!(ri.all_keywords().count(), 0);
    }

    #[test]
    fn entry_matching_rule() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[1, 2, 3]), [provider(5, 0)]);
        let entry = ri.entry(FileId(1)).unwrap();
        assert!(entry.matches(&kws(&[1])));
        assert!(entry.matches(&kws(&[1, 3])));
        assert!(!entry.matches(&kws(&[1, 9])));
        assert!(!entry.matches(&[]));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = ResponseIndex::new(0, 1);
    }
}
