//! The response index (`RI`): Locaware's location-aware index cache.
//!
//! §3.2: *"each peer n maintains a cache of file indexes called response index
//! and noted RI_n"*, where an index of `f` contains the filename and the
//! address of a provider. §4.1 extends each entry with the provider's `locId`
//! and allows *several* providers per file. §4.1.2 fixes the replacement rule:
//! *"peer n constantly updates the list of providers of f in its RI_n as new
//! queries for f pass by n: the most recent p_f entries replace the oldest
//! ones"*, and the cache capacity is bounded by the peer's storage (the paper
//! sizes its Bloom filter for 50 filenames).
//!
//! [`ResponseIndex`] implements exactly that: a bounded map from file to a
//! bounded, recency-ordered provider list, with least-recently-updated filename
//! eviction and explicit eviction reporting so the owning peer can keep its
//! Bloom filter in sync.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use locaware_net::LocId;
use locaware_overlay::PeerId;
use locaware_workload::{FileId, KeywordId};

/// One provider entry in the index: address + location id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderRecord {
    /// The provider peer.
    pub peer: PeerId,
    /// The provider's locId.
    pub loc_id: LocId,
    /// Recency stamp (larger = more recent); used by the replacement rule.
    pub freshness: u64,
}

/// A cached filename with its known providers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The file this entry indexes.
    pub file: FileId,
    /// All keywords of the filename (needed for keyword matching and for
    /// Bloom-filter maintenance on eviction).
    pub keywords: Vec<KeywordId>,
    /// Known providers, oldest first, newest last.
    providers: Vec<ProviderRecord>,
    /// Recency stamp of the last touch of this entry (insert or provider add).
    last_touched: u64,
}

impl IndexEntry {
    /// Known providers, oldest first.
    pub fn providers(&self) -> &[ProviderRecord] {
        &self.providers
    }

    /// Number of providers currently recorded.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// True if the entry's keywords contain every keyword of `query` (the §3.1
    /// satisfaction rule applied to a cached index).
    pub fn matches(&self, query: &[KeywordId]) -> bool {
        !query.is_empty() && query.iter().all(|kw| self.keywords.contains(kw))
    }
}

/// A filename evicted from the index, reported so the owner can update its
/// Bloom filter (remove the evicted filename's keywords).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted file.
    pub file: FileId,
    /// The keywords of its filename.
    pub keywords: Vec<KeywordId>,
}

/// The bounded, location-aware response index of one peer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseIndex {
    entries: HashMap<FileId, IndexEntry>,
    /// Maximum number of distinct filenames (paper: 50).
    capacity: usize,
    /// Maximum providers kept per filename.
    max_providers: usize,
    /// Monotonic recency counter.
    clock: u64,
}

impl ResponseIndex {
    /// Creates an empty index.
    ///
    /// # Panics
    /// Panics if either capacity is zero.
    pub fn new(capacity: usize, max_providers: usize) -> Self {
        assert!(capacity > 0, "response index capacity must be positive");
        assert!(max_providers > 0, "provider capacity must be positive");
        ResponseIndex {
            entries: HashMap::with_capacity(capacity),
            capacity,
            max_providers,
            clock: 0,
        }
    }

    /// Number of cached filenames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of filenames this index holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum providers per filename.
    pub fn max_providers(&self) -> usize {
        self.max_providers
    }

    /// The entry for `file`, if cached.
    pub fn entry(&self, file: FileId) -> Option<&IndexEntry> {
        self.entries.get(&file)
    }

    /// True if `file` is cached.
    pub fn contains(&self, file: FileId) -> bool {
        self.entries.contains_key(&file)
    }

    /// Iterator over all entries (arbitrary order).
    pub fn entries(&self) -> impl Iterator<Item = &IndexEntry> {
        self.entries.values()
    }

    /// Every cached filename's keywords (with multiplicity across files), used
    /// to rebuild a Bloom filter from scratch.
    pub fn all_keywords(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.entries.values().flat_map(|e| e.keywords.iter().copied())
    }

    /// Cached files whose filename matches every keyword of `query`.
    pub fn lookup_by_keywords(&self, query: &[KeywordId]) -> Vec<FileId> {
        let mut files: Vec<FileId> = self
            .entries
            .values()
            .filter(|e| e.matches(query))
            .map(|e| e.file)
            .collect();
        files.sort_unstable();
        files
    }

    /// Records providers for `file`, creating the entry if needed. Returns any
    /// filename evicted to make room (so the caller can update its Bloom
    /// filter). `keywords` must be the full keyword list of `file`'s filename.
    ///
    /// Existing providers are refreshed (their freshness bumped and locId
    /// updated); when the provider list overflows, the oldest entries are
    /// dropped, per §4.1.2.
    pub fn insert(
        &mut self,
        file: FileId,
        keywords: &[KeywordId],
        providers: impl IntoIterator<Item = (PeerId, LocId)>,
    ) -> Vec<Eviction> {
        self.clock += 1;
        let now = self.clock;
        let mut evictions = Vec::new();

        if !self.entries.contains_key(&file) && self.entries.len() >= self.capacity {
            if let Some(evicted) = self.evict_least_recent() {
                evictions.push(evicted);
            }
        }

        let entry = self.entries.entry(file).or_insert_with(|| IndexEntry {
            file,
            keywords: keywords.to_vec(),
            providers: Vec::new(),
            last_touched: now,
        });
        entry.last_touched = now;

        for (peer, loc_id) in providers {
            match entry.providers.iter_mut().find(|p| p.peer == peer) {
                Some(existing) => {
                    existing.loc_id = loc_id;
                    existing.freshness = now;
                }
                None => entry.providers.push(ProviderRecord {
                    peer,
                    loc_id,
                    freshness: now,
                }),
            }
        }
        // Keep only the most recent `max_providers` entries (oldest dropped).
        if entry.providers.len() > self.max_providers {
            entry.providers.sort_by_key(|p| p.freshness);
            let overflow = entry.providers.len() - self.max_providers;
            entry.providers.drain(0..overflow);
        }
        evictions
    }

    /// Removes every provider record pointing at `peer` (used under churn when
    /// a provider departs). Entries left with no providers are dropped and
    /// reported as evictions.
    pub fn remove_provider(&mut self, peer: PeerId) -> Vec<Eviction> {
        let mut evictions = Vec::new();
        let emptied: Vec<FileId> = self
            .entries
            .iter_mut()
            .filter_map(|(&file, entry)| {
                entry.providers.retain(|p| p.peer != peer);
                if entry.providers.is_empty() {
                    Some(file)
                } else {
                    None
                }
            })
            .collect();
        for file in emptied {
            if let Some(entry) = self.entries.remove(&file) {
                evictions.push(Eviction {
                    file,
                    keywords: entry.keywords,
                });
            }
        }
        evictions
    }

    /// Drops everything (used when a peer leaves and rejoins: its cache is lost).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn evict_least_recent(&mut self) -> Option<Eviction> {
        let victim = self
            .entries
            .values()
            .min_by_key(|e| (e.last_touched, e.file))
            .map(|e| e.file)?;
        self.entries.remove(&victim).map(|entry| Eviction {
            file: victim,
            keywords: entry.keywords,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kws(ids: &[u32]) -> Vec<KeywordId> {
        ids.iter().map(|&i| KeywordId(i)).collect()
    }

    fn provider(p: u32, loc: u32) -> (PeerId, LocId) {
        (PeerId(p), LocId(loc))
    }

    #[test]
    fn insert_and_lookup_by_keywords() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[10, 20, 30]), [provider(5, 2)]);
        ri.insert(FileId(2), &kws(&[10, 40, 50]), [provider(6, 1)]);

        assert_eq!(ri.len(), 2);
        assert!(ri.contains(FileId(1)));
        assert_eq!(ri.lookup_by_keywords(&kws(&[10])), vec![FileId(1), FileId(2)]);
        assert_eq!(ri.lookup_by_keywords(&kws(&[10, 30])), vec![FileId(1)]);
        assert!(ri.lookup_by_keywords(&kws(&[99])).is_empty());
        assert!(ri.lookup_by_keywords(&[]).is_empty(), "empty queries match nothing");
    }

    #[test]
    fn providers_are_refreshed_not_duplicated() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[1, 2, 3]), [provider(5, 2)]);
        ri.insert(FileId(1), &kws(&[1, 2, 3]), [provider(5, 7)]);
        let entry = ri.entry(FileId(1)).unwrap();
        assert_eq!(entry.provider_count(), 1);
        assert_eq!(entry.providers()[0].loc_id, LocId(7), "locId refreshed to the latest");
    }

    #[test]
    fn most_recent_providers_replace_the_oldest() {
        let mut ri = ResponseIndex::new(10, 3);
        for p in 0..5u32 {
            ri.insert(FileId(1), &kws(&[1, 2, 3]), [provider(p, p)]);
        }
        let entry = ri.entry(FileId(1)).unwrap();
        assert_eq!(entry.provider_count(), 3);
        let kept: Vec<u32> = entry.providers().iter().map(|p| p.peer.0).collect();
        assert_eq!(kept, vec![2, 3, 4], "the three most recent providers survive");
    }

    #[test]
    fn filename_capacity_evicts_least_recently_touched() {
        let mut ri = ResponseIndex::new(2, 2);
        ri.insert(FileId(1), &kws(&[1]), [provider(1, 0)]);
        ri.insert(FileId(2), &kws(&[2]), [provider(2, 0)]);
        // Touch file 1 so file 2 becomes the least-recently-used entry.
        ri.insert(FileId(1), &kws(&[1]), [provider(9, 0)]);
        let evictions = ri.insert(FileId(3), &kws(&[3]), [provider(3, 0)]);
        assert_eq!(evictions.len(), 1);
        assert_eq!(evictions[0].file, FileId(2));
        assert_eq!(evictions[0].keywords, kws(&[2]));
        assert!(ri.contains(FileId(1)));
        assert!(ri.contains(FileId(3)));
        assert!(!ri.contains(FileId(2)));
        assert_eq!(ri.len(), 2);
    }

    #[test]
    fn remove_provider_drops_empty_entries() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[1, 2]), [provider(5, 0)]);
        ri.insert(FileId(2), &kws(&[3, 4]), [provider(5, 0), provider(6, 1)]);
        let evictions = ri.remove_provider(PeerId(5));
        assert_eq!(evictions.len(), 1);
        assert_eq!(evictions[0].file, FileId(1));
        assert!(!ri.contains(FileId(1)));
        assert_eq!(ri.entry(FileId(2)).unwrap().provider_count(), 1);
    }

    #[test]
    fn all_keywords_reflects_contents() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[1, 2]), [provider(5, 0)]);
        ri.insert(FileId(2), &kws(&[2, 3]), [provider(6, 0)]);
        let mut all: Vec<u32> = ri.all_keywords().map(|k| k.0).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 2, 3]);
        ri.clear();
        assert!(ri.is_empty());
        assert_eq!(ri.all_keywords().count(), 0);
    }

    #[test]
    fn entry_matching_rule() {
        let mut ri = ResponseIndex::new(10, 3);
        ri.insert(FileId(1), &kws(&[1, 2, 3]), [provider(5, 0)]);
        let entry = ri.entry(FileId(1)).unwrap();
        assert!(entry.matches(&kws(&[1])));
        assert!(entry.matches(&kws(&[1, 3])));
        assert!(!entry.matches(&kws(&[1, 9])));
        assert!(!entry.matches(&[]));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = ResponseIndex::new(0, 1);
    }
}
