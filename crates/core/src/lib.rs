//! # locaware — location-aware index caching for unstructured P2P file sharing
//!
//! A faithful, from-scratch Rust reproduction of
//!
//! > Manal El Dick, Esther Pacitti. *Locaware: Index Caching in Unstructured
//! > P2P-file Sharing Systems.* DAMAP Workshop (EDBT), March 2009.
//!
//! Unstructured (Gnutella-like) file-sharing overlays flood keyword queries,
//! which wastes bandwidth twice: once in the search itself, and again when the
//! download is served by a physically distant replica. Locaware attacks both:
//! query responses are cached as *indexes* (filename → provider addresses) at a
//! deterministic subset of peers, each index entry carries the provider's
//! physical *location id*, requestors are recorded as new providers (so natural
//! replication is visible to the index), and queries are routed by neighbour
//! Bloom filters summarising cached keywords instead of being flooded.
//!
//! ## Crate layout
//!
//! * [`config`] — every parameter of the paper's §5.1 setup, with defaults,
//! * [`experiment`] — the public experiment API: validated [`Scenario`]s,
//!   [`ExperimentPlan`] grids and the substrate-sharing parallel [`Runner`],
//! * [`group`] — group ids and the `hash(·) mod M` caching/routing rule,
//! * [`index`] — the location-aware response index (`RI`),
//! * [`peer`] — per-peer state (storage, index, Bloom filters, neighbours),
//! * [`provider`] — provider selection (same locality first, then smallest RTT),
//! * [`protocol`] — the four evaluated policies: flooding, Dicas, Dicas-Keys
//!   and Locaware (plus ablation variants),
//! * [`engine`] — the event-driven execution of one run (internal),
//! * [`simulation`] — substrate construction and the public run API,
//! * [`results`] — per-run reports feeding the figures,
//! * [`analysis`] — post-run distributional and warm-up analysis.
//!
//! ## Quick start
//!
//! ```
//! use locaware::experiment::Scenario;
//! use locaware::ProtocolKind;
//!
//! // A scaled-down scenario so the doctest runs in milliseconds; use
//! // `Scenario::paper_defaults()` for the 1000-peer setup. Scenario
//! // construction validates the configuration, so `substrate()` cannot fail.
//! let scenario = Scenario::small(60).with_seed(42);
//! let simulation = scenario.substrate();
//!
//! let report = simulation.run(ProtocolKind::Locaware, 50);
//! assert_eq!(report.queries_issued, 50);
//! println!("{}", report.summary_table().render());
//! ```
//!
//! To compare protocols — or scenarios, seeds and query counts — declare an
//! [`ExperimentPlan`] and hand it to a [`Runner`], which builds each substrate
//! exactly once and fans the grid out over worker threads:
//!
//! ```
//! use locaware::experiment::{ExperimentPlan, Runner, Scenario};
//! use locaware::ProtocolKind;
//!
//! let plan = ExperimentPlan::new()
//!     .scenario(Scenario::small(60).with_seed(42))
//!     .protocols(ProtocolKind::PAPER_SET)
//!     .query_count(50);
//! let outcome = Runner::new().run(&plan).expect("plan lists every dimension");
//! assert_eq!(outcome.substrates_built, 1); // four protocols, one substrate
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod group;
pub mod index;
pub mod peer;
pub mod protocol;
pub mod provider;
pub mod results;
pub mod simulation;

pub use analysis::{RunAnalysis, WarmupPoint};
pub use config::{ConfigError, ProtocolKind, SimulationConfig};
pub use experiment::{
    ExperimentOutcome, ExperimentPlan, ExperimentPoint, PlanError, Runner, Scenario,
    ScenarioBuilder,
};
pub use group::{GroupId, GroupScheme};
pub use index::{IndexEntry, ProviderRecord, ResponseIndex};
pub use peer::{NeighborInfo, PeerState};
pub use protocol::{
    build_protocol, LocalMatch, PeerView, Protocol, QueryBuffer, QueryContext, ResponseContext,
};
pub use provider::{select_provider, SelectedProvider, SelectionPolicy};
pub use results::SimulationReport;
pub use simulation::Simulation;

// Re-export the substrate types that appear in this crate's public API so that
// downstream users can depend on `locaware` alone.
pub use locaware_metrics::{Figure, QueryOutcome, QueryRecord, RunMetrics, SeriesPoint};
pub use locaware_net::{LinkLatencyCache, LocId, PhysicalTopology};
pub use locaware_overlay::{OverlayGraph, PeerId, ProviderEntry, QueryId};
pub use locaware_workload::{Catalog, FaultConfig, FileId, KeywordId, OutageWindow, TimeoutPolicy};
