//! Provider selection: which of the offered providers the requestor downloads
//! from.
//!
//! §4.1.2 and §5.1: a Locaware requestor prefers a provider *in its own
//! locality* (same locId); if none of the offered providers matches, *"it
//! measures its RTT to the set of available providers and chooses the one with
//! the smallest RTT"*. The compared approaches carry no location information,
//! so they pick blindly among the providers they were offered — modelled here
//! as a uniformly random pick, which keeps their expected download distance at
//! the population average (the flat curves of Figure 2).

use rand::Rng;
use serde::{Deserialize, Serialize};

use locaware_net::{LinkLatencyCache, LocId, PhysicalTopology};
use locaware_overlay::{PeerId, ProviderEntry};
use locaware_sim::Duration;

/// How a requestor chooses among offered providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Uniformly random choice (location-oblivious baselines).
    Random,
    /// Locaware: same-locId provider first, then smallest probed RTT.
    LocalityThenRtt,
}

/// The outcome of a provider selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectedProvider {
    /// The chosen provider.
    pub provider: PeerId,
    /// The provider's advertised locId.
    pub loc_id: LocId,
    /// True if the provider shares the requestor's locId.
    pub locality_match: bool,
    /// Number of RTT probes spent making the decision.
    pub probes: usize,
}

/// Selects a provider among `offered` for a requestor at `requestor` with
/// location `requestor_loc`. Returns `None` if no provider was offered.
///
/// RTT probes are answered through `latencies` (precomputed per-link values
/// with a transparent fallback to `topology`), so repeated selections do not
/// recompute latencies the substrate already knows; pass
/// [`LinkLatencyCache::empty`] to probe the topology directly.
pub fn select_provider<R: Rng + ?Sized>(
    policy: SelectionPolicy,
    topology: &PhysicalTopology,
    latencies: &LinkLatencyCache,
    requestor: PeerId,
    requestor_loc: LocId,
    offered: &[ProviderEntry],
    rng: &mut R,
) -> Option<SelectedProvider> {
    if offered.is_empty() {
        return None;
    }
    match policy {
        SelectionPolicy::Random => {
            let pick = offered[rng.gen_range(0..offered.len())];
            Some(SelectedProvider {
                provider: pick.provider,
                loc_id: pick.loc_id,
                locality_match: pick.loc_id == requestor_loc,
                probes: 0,
            })
        }
        SelectionPolicy::LocalityThenRtt => {
            // 1. Same-locality providers, deterministically the lowest peer id
            //    (all of them are "close" by construction of the locId).
            if let Some(local) = offered
                .iter()
                .filter(|p| p.loc_id == requestor_loc)
                .min_by_key(|p| p.provider)
            {
                return Some(SelectedProvider {
                    provider: local.provider,
                    loc_id: local.loc_id,
                    locality_match: true,
                    probes: 0,
                });
            }
            // 2. Fallback of §5.1: probe every offered provider and take the
            //    smallest RTT (ties broken by peer id, like ProximityProbe).
            let mut best: Option<(Duration, &ProviderEntry)> = None;
            for entry in offered {
                let rtt = latencies.rtt(topology, requestor, entry.provider);
                let better = match best {
                    None => true,
                    Some((best_rtt, best_entry)) => {
                        (rtt, entry.provider) < (best_rtt, best_entry.provider)
                    }
                };
                if better {
                    best = Some((rtt, entry));
                }
            }
            let (_, entry) = best?;
            Some(SelectedProvider {
                provider: entry.provider,
                loc_id: entry.loc_id,
                locality_match: false,
                probes: offered.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locaware_net::{BriteConfig, BriteGenerator, LandmarkSet};
    use locaware_net::brite::PlacementModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PhysicalTopology, Vec<LocId>) {
        let gen = BriteGenerator::new(BriteConfig {
            nodes: 50,
            placement: PlacementModel::Clustered {
                clusters: 4,
                sigma: 0.02,
            },
            ..BriteConfig::default()
        });
        let topo = gen.generate(&mut StdRng::seed_from_u64(11));
        let locs = LandmarkSet::spread(4).assign_all(&topo);
        (topo, locs)
    }

    #[test]
    fn empty_offer_selects_nothing() {
        let (topo, locs) = setup();
        let cache = LinkLatencyCache::empty(topo.len());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            select_provider(
                SelectionPolicy::LocalityThenRtt,
                &topo,
                &cache,
                PeerId(0),
                locs[0],
                &[],
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn locality_match_is_preferred_over_everything() {
        let (topo, locs) = setup();
        let cache = LinkLatencyCache::empty(topo.len());
        let mut rng = StdRng::seed_from_u64(2);
        let requestor = PeerId(0);
        let my_loc = locs[0];
        // Find a peer with the same locId and one with a different locId.
        let same = (1..50).find(|&i| locs[i] == my_loc).map(|i| PeerId(i as u32));
        let diff = (1..50).find(|&i| locs[i] != my_loc).map(|i| PeerId(i as u32));
        let (Some(same), Some(diff)) = (same, diff) else {
            // Extremely unlikely with a clustered topology; nothing to test then.
            return;
        };
        let offered = vec![
            ProviderEntry {
                provider: diff,
                loc_id: locs[diff.index()],
            },
            ProviderEntry {
                provider: same,
                loc_id: my_loc,
            },
        ];
        let sel = select_provider(
            SelectionPolicy::LocalityThenRtt,
            &topo,
            &cache,
            requestor,
            my_loc,
            &offered,
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.provider, same);
        assert!(sel.locality_match);
        assert_eq!(sel.probes, 0);
    }

    #[test]
    fn rtt_fallback_picks_the_closest_offered_provider() {
        let (topo, locs) = setup();
        let cache = LinkLatencyCache::empty(topo.len());
        let mut rng = StdRng::seed_from_u64(3);
        let requestor = PeerId(0);
        // Build an offer that intentionally excludes same-locId providers.
        let my_loc = locs[0];
        let offered: Vec<ProviderEntry> = (1..50)
            .filter(|&i| locs[i] != my_loc)
            .take(5)
            .map(|i| ProviderEntry {
                provider: PeerId(i as u32),
                loc_id: locs[i],
            })
            .collect();
        assert!(offered.len() >= 2, "need at least two remote providers");
        let sel = select_provider(
            SelectionPolicy::LocalityThenRtt,
            &topo,
            &cache,
            requestor,
            my_loc,
            &offered,
            &mut rng,
        )
        .unwrap();
        assert!(!sel.locality_match);
        assert_eq!(sel.probes, offered.len());
        // It must indeed be the minimum-RTT candidate.
        let best_rtt = offered
            .iter()
            .map(|p| topo.rtt(requestor, p.provider))
            .min()
            .unwrap();
        assert_eq!(topo.rtt(requestor, sel.provider), best_rtt);
    }

    #[test]
    fn random_policy_covers_all_offers_and_is_probe_free() {
        let (topo, locs) = setup();
        let cache = LinkLatencyCache::empty(topo.len());
        let mut rng = StdRng::seed_from_u64(4);
        let offered: Vec<ProviderEntry> = (1..5)
            .map(|i| ProviderEntry {
                provider: PeerId(i),
                loc_id: locs[i as usize],
            })
            .collect();
        let mut chosen = std::collections::HashSet::new();
        for _ in 0..200 {
            let sel = select_provider(
                SelectionPolicy::Random,
                &topo,
                &cache,
                PeerId(0),
                locs[0],
                &offered,
                &mut rng,
            )
            .unwrap();
            assert_eq!(sel.probes, 0);
            chosen.insert(sel.provider);
        }
        assert_eq!(chosen.len(), 4, "random selection should hit every offer eventually");
    }
}
