//! Search/caching protocol policies.
//!
//! The simulation engine (in [`crate::engine`]) provides the mechanism shared
//! by every approach — event-driven message delivery, TTL handling, duplicate
//! suppression, reverse-path responses, metric collection. What differs between
//! the compared approaches is *policy*, captured by the [`Protocol`] trait:
//!
//! 1. **Routing** — which neighbours a query is forwarded to
//!    ([`Protocol::forward_targets`]),
//! 2. **Matching** — whether a peer can answer a query locally, and with which
//!    provider entries ([`Protocol::local_match`]),
//! 3. **Caching** — whether/how a peer intercepting a response updates its
//!    response index ([`Protocol::cache_response`]),
//! 4. **Selection** — how the requestor chooses among offered providers
//!    ([`Protocol::selection_policy`]).
//!
//! Four policies are implemented, matching the curves of Figures 2–4:
//! [`flooding::Flooding`], [`dicas::Dicas`], [`dicas_keys::DicasKeys`] and
//! [`locaware::Locaware`] (whose ablation switches also cover the
//! `LocawareNoLocality` / `LocawareNoBloom` variants). Two further protocols
//! are *structured*: [`dht_index::DhtIndex`] resolves every query through the
//! Kademlia-style keyword-index DHT (see [`crate::engine`] and
//! [`locaware_overlay::dht`]) instead of overlay forwarding, and
//! [`hybrid::Hybrid`] splits the Zipf popularity curve — head targets use
//! Locaware's caching overlay, tail targets the DHT.

pub mod dht_index;
pub mod dicas;
pub mod dicas_keys;
pub mod flooding;
pub mod hybrid;
pub mod locaware;

use locaware_bloom::ElementHashes;
use locaware_net::LocId;
use locaware_overlay::{ForwardDecision, OverlayGraph, PeerId, ProviderEntry, QueryId};
use locaware_workload::{Catalog, FileId, KeywordHashes, KeywordId};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::provider::SelectionPolicy;

/// A read-only view of everything a protocol may consult when making a
/// decision at one peer.
#[derive(Debug, Clone, Copy)]
pub struct PeerView<'a> {
    /// The deciding peer's state.
    pub state: &'a PeerState,
    /// The overlay graph (for neighbour lists and degrees).
    pub graph: &'a OverlayGraph,
    /// The group scheme in force.
    pub scheme: &'a GroupScheme,
    /// The global catalog (for filename keyword lookups).
    pub catalog: &'a Catalog,
}

/// The protocol-relevant content of a query.
///
/// Keywords come in two parallel views: the ids themselves and their
/// pre-computed Bloom hashes (`keyword_hashes[i]` hashes `keywords[i]`), so
/// the §4.2 routing test probes neighbour filters without re-hashing a keyword
/// per neighbour. Both slices borrow from the caller — the engine threads its
/// per-run scratch buffers through here, so building a context allocates
/// nothing; tests and benches can use [`QueryBuffer`] as an owned backing
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryContext<'a> {
    /// The query id.
    pub query: QueryId,
    /// The originating peer.
    pub origin: PeerId,
    /// The originator's location id.
    pub origin_loc: LocId,
    /// The query keywords.
    pub keywords: &'a [KeywordId],
    /// The pre-computed Bloom hashes of `keywords`, index-aligned.
    pub keyword_hashes: &'a [ElementHashes],
    /// For filename-search protocols (Dicas): the exact file searched.
    pub target_filename: Option<FileId>,
}

/// An owned backing store for a [`QueryContext`].
///
/// The engine builds contexts from reusable scratch buffers; everything else
/// (tests, benches, examples) can own the keyword storage here and borrow a
/// context view with [`QueryBuffer::context`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBuffer {
    /// The query id.
    pub query: QueryId,
    /// The originating peer.
    pub origin: PeerId,
    /// The originator's location id.
    pub origin_loc: LocId,
    /// For filename-search protocols (Dicas): the exact file searched.
    pub target_filename: Option<FileId>,
    keywords: Vec<KeywordId>,
    keyword_hashes: Vec<ElementHashes>,
}

impl QueryBuffer {
    /// Builds a query with its keyword hashes computed up front.
    pub fn new(
        query: QueryId,
        origin: PeerId,
        origin_loc: LocId,
        keywords: Vec<KeywordId>,
        target_filename: Option<FileId>,
    ) -> Self {
        let hasher = KeywordHashes::empty();
        let keyword_hashes = keywords.iter().map(|&kw| hasher.of(kw)).collect();
        QueryBuffer {
            query,
            origin,
            origin_loc,
            target_filename,
            keywords,
            keyword_hashes,
        }
    }

    /// The borrowed view protocols consume.
    pub fn context(&self) -> QueryContext<'_> {
        QueryContext {
            query: self.query,
            origin: self.origin,
            origin_loc: self.origin_loc,
            keywords: &self.keywords,
            keyword_hashes: &self.keyword_hashes,
            target_filename: self.target_filename,
        }
    }
}

/// A local hit: the answering peer found a satisfying file either in its own
/// storage or in its response index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalMatch {
    /// The satisfying file.
    pub file: FileId,
    /// Provider entries to return to the requestor (at least one).
    pub providers: Vec<ProviderEntry>,
    /// True if the hit came from the response index rather than file storage.
    pub from_cache: bool,
}

/// The protocol-relevant content of a response being cached at an intermediate
/// peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseContext {
    /// The file the response is about.
    pub file: FileId,
    /// The full keyword list of the file's filename.
    pub file_keywords: Vec<KeywordId>,
    /// The keywords the original query was expressed with (a subset of
    /// `file_keywords`). Dicas-Keys keys its cache on these, which is exactly
    /// the source of the duplication/mismatch the paper criticises.
    pub query_keywords: Vec<KeywordId>,
    /// The providers advertised by the response.
    pub providers: Vec<ProviderEntry>,
    /// The original requestor (Locaware records it as a new provider, §4.1.2).
    pub requestor: ProviderEntry,
}

/// A search/caching policy. Implementations are stateless (all mutable state
/// lives in [`PeerState`]) so one instance is shared across every peer.
pub trait Protocol: Send + Sync {
    /// Which protocol this is (used for labels and reports).
    fn kind(&self) -> ProtocolKind;

    /// How the requestor chooses among offered providers.
    fn selection_policy(&self) -> SelectionPolicy;

    /// Whether the engine should run the periodic Bloom synchronisation
    /// process for this protocol.
    fn uses_bloom_sync(&self) -> bool {
        false
    }

    /// Whether the engine should run the Kademlia-style keyword-index DHT for
    /// this protocol (identity derivation, routing tables, publish/republish
    /// rounds, iterative lookups).
    fn uses_dht(&self) -> bool {
        false
    }

    /// For DHT-running protocols: whether a file at popularity `rank`
    /// (0 = most popular of `catalog_len` files) is indexed in — and resolved
    /// through — the DHT. The pure DHT protocol says yes to everything; the
    /// hybrid protocol only to the Zipf tail. Never called when
    /// [`Protocol::uses_dht`] is false.
    fn dht_resolves_rank(&self, rank: usize, catalog_len: usize) -> bool {
        let _ = (rank, catalog_len);
        false
    }

    /// Maximum provider entries a peer keeps per cached filename.
    fn max_providers_per_file(&self, config: &SimulationConfig) -> usize {
        let _ = config;
        1
    }

    /// Appends the neighbours `view.state` should forward the query to into
    /// `out` (cleared first), excluding `exclude` (the neighbour the query
    /// arrived from). Returns *why* those targets were chosen, for the
    /// routing-decision statistics. Taking the target buffer from the caller
    /// keeps the per-event forward path allocation-free: the engine reuses one
    /// buffer across every event of a run.
    fn forward_targets_into(
        &self,
        view: &PeerView<'_>,
        query: &QueryContext<'_>,
        exclude: Option<PeerId>,
        out: &mut Vec<PeerId>,
    ) -> ForwardDecision;

    /// Allocating convenience wrapper around
    /// [`Protocol::forward_targets_into`] (tests, benches, one-shot callers).
    fn forward_targets(
        &self,
        view: &PeerView<'_>,
        query: &QueryContext<'_>,
        exclude: Option<PeerId>,
    ) -> (Vec<PeerId>, ForwardDecision) {
        let mut out = Vec::new();
        let decision = self.forward_targets_into(view, query, exclude, &mut out);
        (out, decision)
    }

    /// Attempts to answer the query at `view.state` from local knowledge.
    fn local_match(&self, view: &PeerView<'_>, query: &QueryContext<'_>) -> Option<LocalMatch>;

    /// Lets an intermediate peer cache a passing response according to the
    /// protocol's caching rule.
    fn cache_response(
        &self,
        state: &mut PeerState,
        scheme: &GroupScheme,
        response: &ResponseContext,
    );
}

/// Creates the protocol implementation for a [`ProtocolKind`].
pub fn build_protocol(kind: ProtocolKind, config: &SimulationConfig) -> Box<dyn Protocol> {
    match kind {
        ProtocolKind::Flooding => Box::new(flooding::Flooding::new()),
        ProtocolKind::Dicas => Box::new(dicas::Dicas::new()),
        ProtocolKind::DicasKeys => Box::new(dicas_keys::DicasKeys::new()),
        ProtocolKind::Locaware => Box::new(locaware::Locaware::new(config)),
        ProtocolKind::LocawareNoLocality => Box::new(locaware::Locaware::without_locality(config)),
        ProtocolKind::LocawareNoBloom => Box::new(locaware::Locaware::without_bloom(config)),
        ProtocolKind::DhtIndex => Box::new(dht_index::DhtIndex::new()),
        ProtocolKind::Hybrid => Box::new(hybrid::Hybrid::new(config)),
    }
}

/// Shared helper: appends every neighbour except the one the query came from,
/// in id order (plain flooding).
pub(crate) fn all_neighbors_except_into(
    view: &PeerView<'_>,
    exclude: Option<PeerId>,
    out: &mut Vec<PeerId>,
) {
    out.extend(
        view.graph
            .neighbors(view.state.id)
            .iter()
            .copied()
            .filter(|&n| Some(n) != exclude && view.graph.is_active(n)),
    );
}

/// Shared helper: the single highest-degree neighbour (excluding `exclude`),
/// used as the last-resort forwarding rule of §4.2 "to avoid blocking the query
/// forwarding".
pub(crate) fn high_degree_fallback(
    view: &PeerView<'_>,
    exclude: Option<PeerId>,
) -> Option<PeerId> {
    view.graph
        .neighbors(view.state.id)
        .iter()
        .copied()
        .filter(|&n| Some(n) != exclude && view.graph.is_active(n))
        .max_by_key(|&n| (view.graph.degree(n), std::cmp::Reverse(n.0)))
}

/// Shared helper: appends the high-degree fallback to `out` and classifies the
/// decision (the common tail of every non-flooding routing rule).
pub(crate) fn high_degree_fallback_into(
    view: &PeerView<'_>,
    exclude: Option<PeerId>,
    out: &mut Vec<PeerId>,
) -> ForwardDecision {
    match high_degree_fallback(view, exclude) {
        Some(n) => {
            out.push(n);
            ForwardDecision::HighDegree
        }
        None => ForwardDecision::NotForwarded,
    }
}

/// Files in the peer's own storage whose filename satisfies the query
/// keywords, in id order — the exhaustive model for [`first_storage_match`],
/// which the hot path uses instead (tests pin their agreement).
#[cfg(test)]
pub(crate) fn storage_matches(view: &PeerView<'_>, keywords: &[KeywordId]) -> Vec<FileId> {
    if keywords.is_empty() {
        return Vec::new();
    }
    view.state
        .shared_files()
        .filter(|&f| view.catalog.file_matches(f, keywords))
        .collect()
}

/// Shared helper: the first (lowest-id) stored file satisfying the query —
/// the hot-path form of [`storage_matches`], returning as soon as one stored
/// filename matches instead of materialising the full list.
pub(crate) fn first_storage_match(view: &PeerView<'_>, keywords: &[KeywordId]) -> Option<FileId> {
    if keywords.is_empty() {
        return None;
    }
    view.state
        .shared_files()
        .find(|&f| view.catalog.file_matches(f, keywords))
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Small fixtures shared by the protocol unit tests.

    use super::*;
    use locaware_bloom::BloomParams;
    use locaware_overlay::OverlayGraph;
    use locaware_workload::{Catalog, Filename, KeywordPool};

    use crate::group::GroupId;

    /// A deterministic 5-peer fixture:
    ///
    /// * overlay: star around peer 0 (neighbours 1–4), plus edge 1–2,
    /// * catalog: 4 files over 12 keywords,
    /// * peer 0 is the deciding peer; its gid and locId are configurable.
    pub struct Fixture {
        pub graph: OverlayGraph,
        pub catalog: Catalog,
        pub scheme: GroupScheme,
        pub peers: Vec<PeerState>,
    }

    impl Fixture {
        pub fn new(modulus: u32) -> Self {
            let mut graph = OverlayGraph::new(5);
            for n in 1..5u32 {
                graph.add_edge(PeerId(0), PeerId(n));
            }
            graph.add_edge(PeerId(1), PeerId(2));

            let pool = KeywordPool::new(12);
            let filenames = vec![
                Filename::new(vec![KeywordId(0), KeywordId(1), KeywordId(2)]),
                Filename::new(vec![KeywordId(3), KeywordId(4), KeywordId(5)]),
                Filename::new(vec![KeywordId(0), KeywordId(6), KeywordId(7)]),
                Filename::new(vec![KeywordId(8), KeywordId(9), KeywordId(10)]),
            ];
            let catalog = Catalog::from_filenames(pool, filenames);
            let scheme = GroupScheme::new(modulus);

            let peers = (0..5u32)
                .map(|i| {
                    let mut p = PeerState::new(
                        PeerId(i),
                        LocId(i % 3),
                        GroupId(i % modulus),
                        BloomParams::default(),
                        8,
                        4,
                        catalog.keyword_hashes().clone(),
                    );
                    for n in graph.neighbors(PeerId(i)) {
                        p.record_neighbor(*n, GroupId(n.0 % modulus));
                    }
                    p
                })
                .collect();

            Fixture {
                graph,
                catalog,
                scheme,
                peers,
            }
        }

        pub fn view(&self, peer: usize) -> PeerView<'_> {
            PeerView {
                state: &self.peers[peer],
                graph: &self.graph,
                scheme: &self.scheme,
                catalog: &self.catalog,
            }
        }

        pub fn query(&self, keywords: &[u32], target: Option<u32>) -> QueryBuffer {
            QueryBuffer::new(
                QueryId(1),
                PeerId(4),
                LocId(1),
                keywords.iter().map(|&k| KeywordId(k)).collect(),
                target.map(FileId),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::Fixture;
    use super::*;

    #[test]
    fn all_neighbors_except_filters_the_sender() {
        let fx = Fixture::new(4);
        let view = fx.view(0);
        let mut all = Vec::new();
        all_neighbors_except_into(&view, None, &mut all);
        assert_eq!(all, vec![PeerId(1), PeerId(2), PeerId(3), PeerId(4)]);
        let mut without_2 = Vec::new();
        all_neighbors_except_into(&view, Some(PeerId(2)), &mut without_2);
        assert_eq!(without_2, vec![PeerId(1), PeerId(3), PeerId(4)]);
    }

    #[test]
    fn high_degree_fallback_prefers_the_hub() {
        let fx = Fixture::new(4);
        // From peer 3, the only neighbour is peer 0 (degree 4).
        let view = fx.view(3);
        assert_eq!(high_degree_fallback(&view, None), Some(PeerId(0)));
        assert_eq!(high_degree_fallback(&view, Some(PeerId(0))), None);
        // From peer 0, neighbours 1 and 2 have degree 2 (> 1); lowest id wins the tie.
        let view0 = fx.view(0);
        assert_eq!(high_degree_fallback(&view0, None), Some(PeerId(1)));
    }

    #[test]
    fn first_storage_match_agrees_with_storage_matches() {
        let mut fx = Fixture::new(4);
        fx.peers[0].share_file(FileId(0));
        fx.peers[0].share_file(FileId(2));
        let view = fx.view(0);
        for q in [vec![KeywordId(0)], vec![KeywordId(0), KeywordId(1)], vec![KeywordId(11)], vec![]] {
            assert_eq!(
                first_storage_match(&view, &q),
                storage_matches(&view, &q).first().copied(),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn storage_matches_respects_the_all_keywords_rule() {
        let mut fx = Fixture::new(4);
        fx.peers[0].share_file(FileId(0)); // keywords {0,1,2}
        fx.peers[0].share_file(FileId(2)); // keywords {0,6,7}
        let view = fx.view(0);
        assert_eq!(
            storage_matches(&view, &[KeywordId(0)]),
            vec![FileId(0), FileId(2)]
        );
        assert_eq!(
            storage_matches(&view, &[KeywordId(0), KeywordId(1)]),
            vec![FileId(0)]
        );
        assert!(storage_matches(&view, &[KeywordId(11)]).is_empty());
        assert!(storage_matches(&view, &[]).is_empty());
    }

    #[test]
    fn build_protocol_covers_every_kind() {
        let config = SimulationConfig::small(20);
        for &kind in ProtocolKind::all() {
            let protocol = build_protocol(kind, &config);
            assert_eq!(protocol.kind(), kind);
            assert_eq!(
                protocol.uses_dht(),
                kind.uses_dht(),
                "{kind}: trait and kind disagree on the DHT subsystem"
            );
        }
    }
}
