//! Pure structured baseline: every query resolves through the Kademlia-style
//! keyword-index DHT.
//!
//! Where the unstructured protocols express policy through overlay forwarding
//! and response caching, this protocol expresses *no* overlay policy at all:
//! queries never flood, peers never answer from overlay-side storage, and no
//! response index is maintained. The engine instead routes each query as an
//! iterative XOR-metric lookup over the DHT subsystem (see
//! [`locaware_overlay::dht`] and the engine's DHT module), and every shared
//! file's keywords are published to — and republished on — the `k` closest
//! index nodes. Provider selection is random: the DHT key space is oblivious
//! to physical locality, which is exactly the contrast with Locaware the
//! structured-vs-unstructured comparison measures.

use locaware_overlay::{ForwardDecision, PeerId};

use crate::config::ProtocolKind;
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::provider::SelectionPolicy;

use super::{LocalMatch, PeerView, Protocol, QueryContext, ResponseContext};

/// The pure DHT index protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct DhtIndex;

impl DhtIndex {
    /// Creates the DHT index policy.
    pub fn new() -> Self {
        DhtIndex
    }
}

impl Protocol for DhtIndex {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DhtIndex
    }

    fn selection_policy(&self) -> SelectionPolicy {
        // The key space carries no locality signal, so selection cannot
        // either — the location-oblivious structured baseline.
        SelectionPolicy::Random
    }

    fn uses_dht(&self) -> bool {
        true
    }

    fn dht_resolves_rank(&self, _rank: usize, _catalog_len: usize) -> bool {
        true
    }

    fn forward_targets_into(
        &self,
        _view: &PeerView<'_>,
        _query: &QueryContext<'_>,
        _exclude: Option<PeerId>,
        out: &mut Vec<PeerId>,
    ) -> ForwardDecision {
        // Queries travel the DHT, never the unstructured overlay.
        out.clear();
        ForwardDecision::NotForwarded
    }

    fn local_match(&self, _view: &PeerView<'_>, _query: &QueryContext<'_>) -> Option<LocalMatch> {
        // Hits come from DHT record stores, handled by the engine's lookup
        // path; the overlay-side matching rule never fires.
        None
    }

    fn cache_response(
        &self,
        _state: &mut PeerState,
        _scheme: &GroupScheme,
        _response: &ResponseContext,
    ) {
        // No response index: the DHT record store is the only index.
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::Fixture;
    use super::*;
    use crate::config::SimulationConfig;
    use locaware_workload::FileId;

    #[test]
    fn expresses_no_overlay_policy() {
        let mut fx = Fixture::new(4);
        let protocol = DhtIndex::new();
        let query = fx.query(&[0, 1], None);

        let (targets, decision) = protocol.forward_targets(&fx.view(0), &query.context(), None);
        assert!(targets.is_empty());
        assert_eq!(decision, ForwardDecision::NotForwarded);

        // Even a peer storing a satisfying file does not answer overlay-side.
        fx.peers[0].share_file(FileId(0));
        assert!(protocol.local_match(&fx.view(0), &query.context()).is_none());
    }

    #[test]
    fn policy_flags() {
        let protocol = DhtIndex::new();
        assert_eq!(protocol.kind(), ProtocolKind::DhtIndex);
        assert_eq!(protocol.selection_policy(), SelectionPolicy::Random);
        assert!(!protocol.uses_bloom_sync());
        assert!(protocol.uses_dht());
        assert!(protocol.dht_resolves_rank(0, 100));
        assert!(protocol.dht_resolves_rank(99, 100));
        let config = SimulationConfig::small(20);
        assert_eq!(protocol.max_providers_per_file(&config), 1);
    }
}
