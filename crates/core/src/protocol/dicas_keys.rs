//! Dicas-Keys: the Dicas variant for keyword search.
//!
//! §2 of the Locaware paper: *"some proposed strategy consists in caching
//! indexes based on hashing query keywords instead of the whole filename, which
//! causes a large amount of duplicated cached indexes."* §5.1 evaluates this
//! variant as "Dicas-Keys (designed for keyword search)".
//!
//! Concretely: routing and caching apply the group rule to the *keywords* —
//! a query is forwarded to neighbours whose Gid matches `hash(kw) mod M` for
//! some query keyword, and a response is cached at peers whose Gid matches one
//! of the filename's keywords. Because a filename has several keywords mapping
//! to several groups, the same index ends up duplicated across groups (the
//! storage overhead the paper criticises), and routing by a keyword hash often
//! walks towards peers caching *other* files that share that keyword (the
//! "misleads keyword queries" effect behind its low success rate in Figure 4).

use locaware_overlay::{ForwardDecision, PeerId, ProviderEntry};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::provider::SelectionPolicy;

use super::{
    first_storage_match, high_degree_fallback_into, LocalMatch, PeerView, Protocol, QueryContext,
    ResponseContext,
};

/// The Dicas-Keys keyword-search baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DicasKeys;

impl DicasKeys {
    /// Creates the Dicas-Keys policy.
    pub fn new() -> Self {
        DicasKeys
    }
}

impl Protocol for DicasKeys {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DicasKeys
    }

    fn selection_policy(&self) -> SelectionPolicy {
        SelectionPolicy::Random
    }

    fn max_providers_per_file(&self, _config: &SimulationConfig) -> usize {
        1
    }

    fn forward_targets_into(
        &self,
        view: &PeerView<'_>,
        query: &QueryContext<'_>,
        exclude: Option<PeerId>,
        out: &mut Vec<PeerId>,
    ) -> ForwardDecision {
        out.clear();
        let scheme = view.scheme;
        view.state.neighbors_matching_gid_into(
            |gid| scheme.gid_matches_any_keyword(gid, query.keywords),
            |n| Some(n) != exclude && view.graph.is_active(n),
            out,
        );
        if !out.is_empty() {
            return ForwardDecision::GidMatch;
        }
        high_degree_fallback_into(view, exclude, out)
    }

    fn local_match(&self, view: &PeerView<'_>, query: &QueryContext<'_>) -> Option<LocalMatch> {
        // 1. Own storage.
        if let Some(file) = first_storage_match(view, query.keywords) {
            return Some(LocalMatch {
                file,
                providers: vec![ProviderEntry {
                    provider: view.state.id,
                    loc_id: view.state.loc_id,
                }],
                from_cache: false,
            });
        }
        // 2. Cached indexes, matched by keywords.
        let file = view
            .state
            .response_index
            .lookup_by_keywords(query.keywords)
            .into_iter()
            .next()?;
        let entry = view.state.response_index.entry(file)?;
        let provider = entry.providers().last()?;
        Some(LocalMatch {
            file,
            providers: vec![ProviderEntry {
                provider: provider.peer,
                loc_id: provider.loc_id,
            }],
            from_cache: true,
        })
    }

    fn cache_response(
        &self,
        state: &mut PeerState,
        scheme: &GroupScheme,
        response: &ResponseContext,
    ) {
        // Keyword-hash caching: the index is keyed on the *query's* keywords
        // (whatever subset of the filename the original requestor typed) and
        // cached wherever any of those keywords maps to this peer's group.
        // This is the strategy the paper criticises: the same file ends up
        // duplicated across keyword groups, yet a later query using a
        // different keyword subset neither routes to the same groups nor
        // matches the partially-keyed entry.
        let keying = if response.query_keywords.is_empty() {
            &response.file_keywords
        } else {
            &response.query_keywords
        };
        if !scheme.gid_matches_any_keyword(state.gid, keying) {
            return;
        }
        let Some(provider) = response.providers.first() else {
            return;
        };
        state.cache_index(response.file, keying, [(provider.provider, provider.loc_id)]);
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::Fixture;
    use super::*;
    use locaware_net::LocId;
    use locaware_workload::FileId;

    fn response_for(fx: &Fixture, file: u32, provider: u32) -> ResponseContext {
        ResponseContext {
            file: FileId(file),
            file_keywords: fx.catalog.filename(FileId(file)).keywords().to_vec(),
            query_keywords: vec![],
            providers: vec![ProviderEntry {
                provider: PeerId(provider),
                loc_id: LocId(2),
            }],
            requestor: ProviderEntry {
                provider: PeerId(4),
                loc_id: LocId(1),
            },
        }
    }

    #[test]
    fn routes_by_keyword_group() {
        let fx = Fixture::new(4);
        let protocol = DicasKeys::new();
        let query = fx.query(&[0, 1], None);
        let (targets, decision) = protocol.forward_targets(&fx.view(0), &query.context(), None);
        match decision {
            ForwardDecision::GidMatch => {
                for t in &targets {
                    let gid = fx.peers[t.index()].gid;
                    assert!(fx.scheme.gid_matches_any_keyword(gid, &query.keywords));
                }
            }
            ForwardDecision::HighDegree => {
                // Legitimate when no neighbour's gid matches either keyword.
                assert_eq!(targets.len(), 1);
            }
            other => panic!("unexpected decision {other:?}"),
        }
    }

    #[test]
    fn caching_is_duplicated_across_keyword_groups() {
        // With M = 2 groups and 3 keywords per filename, a filename almost
        // always maps to both groups, so *every* peer caches it — the
        // duplication the paper criticises.
        let mut fx = Fixture::new(2);
        let protocol = DicasKeys::new();
        let scheme = fx.scheme;
        let response = response_for(&fx, 0, 7);
        let groups: std::collections::HashSet<u32> = fx
            .catalog
            .filename(FileId(0))
            .keywords()
            .iter()
            .map(|&kw| scheme.group_of_keyword(kw).value())
            .collect();

        let mut cached = 0usize;
        for i in 0..5usize {
            protocol.cache_response(&mut fx.peers[i], &scheme, &response);
            if fx.peers[i].response_index.contains(FileId(0)) {
                cached += 1;
                assert!(groups.contains(&fx.peers[i].gid.value()));
            }
        }
        // Every peer whose gid is in the filename's keyword-group set caches.
        let eligible = fx
            .peers
            .iter()
            .filter(|p| groups.contains(&p.gid.value()))
            .count();
        assert_eq!(cached, eligible);
        assert!(cached >= 2, "keyword hashing should spread the index widely");
    }

    #[test]
    fn matches_from_storage_and_keyword_indexed_cache() {
        let mut fx = Fixture::new(4);
        let protocol = DicasKeys::new();
        let query = fx.query(&[0, 6], None); // matches file 2 = {0,6,7}

        assert!(protocol.local_match(&fx.view(1), &query.context()).is_none());

        // Cache hit by keywords.
        fx.peers[1].cache_index(
            FileId(2),
            fx.catalog.filename(FileId(2)).keywords(),
            [(PeerId(8), LocId(4))],
        );
        let hit = protocol.local_match(&fx.view(1), &query.context()).unwrap();
        assert_eq!(hit.file, FileId(2));
        assert!(hit.from_cache);
        assert_eq!(hit.providers[0].provider, PeerId(8));

        // Storage hit takes precedence.
        fx.peers[1].share_file(FileId(2));
        let hit = protocol.local_match(&fx.view(1), &query.context()).unwrap();
        assert!(!hit.from_cache);
        assert_eq!(hit.providers[0].provider, PeerId(1));
    }

    #[test]
    fn policy_flags() {
        let protocol = DicasKeys::new();
        assert_eq!(protocol.kind(), ProtocolKind::DicasKeys);
        assert_eq!(protocol.selection_policy(), SelectionPolicy::Random);
        assert!(!protocol.uses_bloom_sync());
    }

    #[test]
    fn no_keyword_match_means_no_cache() {
        let mut fx = Fixture::new(4);
        let protocol = DicasKeys::new();
        let scheme = fx.scheme;
        let response = response_for(&fx, 3, 7);
        // Find a peer whose gid matches none of file 3's keyword groups.
        let groups: std::collections::HashSet<u32> = fx
            .catalog
            .filename(FileId(3))
            .keywords()
            .iter()
            .map(|&kw| scheme.group_of_keyword(kw).value())
            .collect();
        if let Some(i) = (0..5usize).find(|&i| !groups.contains(&fx.peers[i].gid.value())) {
            protocol.cache_response(&mut fx.peers[i], &scheme, &response);
            assert!(!fx.peers[i].response_index.contains(FileId(3)));
        }
    }
}
