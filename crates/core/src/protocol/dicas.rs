//! Dicas: distributed index caching with filename-hash groups.
//!
//! As summarised in §2/§3.2 of the Locaware paper (from Wang et al., IEEE TPDS
//! 2006): query responses are cached only at peers whose group id matches
//! `hash(filename) mod M`, and queries are routed "towards peers which are
//! likely to have the desired indexes", i.e. towards neighbours whose group id
//! matches the searched filename. Dicas is designed for **filename search**:
//! the query identifies the exact file, so the routing hash is well-defined.
//!
//! Differences from Locaware that the paper calls out (and that this
//! implementation preserves):
//! * a single provider is cached per filename (no provider list),
//! * no location information is kept or used (random provider selection),
//! * no keyword support — a keyword query can only be routed once it is mapped
//!   to a concrete filename, which is why the paper evaluates the separate
//!   Dicas-Keys variant for keyword workloads.

use locaware_overlay::{ForwardDecision, PeerId, ProviderEntry};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::provider::SelectionPolicy;

use super::{
    first_storage_match, high_degree_fallback_into, LocalMatch, PeerView, Protocol, QueryContext,
    ResponseContext,
};

/// The Dicas filename-search baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dicas;

impl Dicas {
    /// Creates the Dicas policy.
    pub fn new() -> Self {
        Dicas
    }
}

impl Protocol for Dicas {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Dicas
    }

    fn selection_policy(&self) -> SelectionPolicy {
        SelectionPolicy::Random
    }

    fn max_providers_per_file(&self, _config: &SimulationConfig) -> usize {
        1
    }

    fn forward_targets_into(
        &self,
        view: &PeerView<'_>,
        query: &QueryContext<'_>,
        exclude: Option<PeerId>,
        out: &mut Vec<PeerId>,
    ) -> ForwardDecision {
        out.clear();
        // Filename search: the query names the exact file, so route towards
        // neighbours whose Gid matches hash(f) mod M. Without a filename Dicas
        // cannot compute the routing hash; fall back to the high-degree
        // neighbour so the query is not dropped.
        let Some(target) = query.target_filename else {
            return high_degree_fallback_into(view, exclude, out);
        };
        let wanted = view.scheme.group_of_file(target);
        view.state.neighbors_matching_gid_into(
            |gid| gid == wanted,
            |n| Some(n) != exclude && view.graph.is_active(n),
            out,
        );
        if !out.is_empty() {
            return ForwardDecision::GidMatch;
        }
        high_degree_fallback_into(view, exclude, out)
    }

    fn local_match(&self, view: &PeerView<'_>, query: &QueryContext<'_>) -> Option<LocalMatch> {
        match query.target_filename {
            Some(target) => {
                // Exact filename search: either this peer stores the file…
                if view.state.has_file(target) {
                    return Some(LocalMatch {
                        file: target,
                        providers: vec![ProviderEntry {
                            provider: view.state.id,
                            loc_id: view.state.loc_id,
                        }],
                        from_cache: false,
                    });
                }
                // …or it has a cached index for it.
                let entry = view.state.response_index.entry(target)?;
                let provider = entry.providers().last()?;
                Some(LocalMatch {
                    file: target,
                    providers: vec![ProviderEntry {
                        provider: provider.peer,
                        loc_id: provider.loc_id,
                    }],
                    from_cache: true,
                })
            }
            None => {
                // Keyword query reaching a Dicas peer: it can still serve a file
                // it physically stores, but its index is keyed by filename and
                // cannot be searched by keyword.
                let file = first_storage_match(view, query.keywords)?;
                Some(LocalMatch {
                    file,
                    providers: vec![ProviderEntry {
                        provider: view.state.id,
                        loc_id: view.state.loc_id,
                    }],
                    from_cache: false,
                })
            }
        }
    }

    fn cache_response(
        &self,
        state: &mut PeerState,
        scheme: &GroupScheme,
        response: &ResponseContext,
    ) {
        // Cache only at peers whose Gid matches hash(f) mod M, and keep only
        // the responding provider (a single index per filename).
        if !scheme.gid_matches_file(state.gid, response.file) {
            return;
        }
        let Some(provider) = response.providers.first() else {
            return;
        };
        state.cache_index(
            response.file,
            &response.file_keywords,
            [(provider.provider, provider.loc_id)],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::Fixture;
    use super::*;
    use locaware_net::LocId;
    use locaware_workload::FileId;

    fn response_for(fx: &Fixture, file: u32, provider: u32) -> ResponseContext {
        ResponseContext {
            file: FileId(file),
            file_keywords: fx.catalog.filename(FileId(file)).keywords().to_vec(),
            query_keywords: vec![],
            providers: vec![ProviderEntry {
                provider: PeerId(provider),
                loc_id: LocId(2),
            }],
            requestor: ProviderEntry {
                provider: PeerId(4),
                loc_id: LocId(1),
            },
        }
    }

    #[test]
    fn routes_towards_matching_gid_neighbors() {
        let fx = Fixture::new(4);
        let protocol = Dicas::new();
        // Peer 0's neighbours have gids 1, 2, 3, 0 (peer id mod 4).
        // Pick a target file and find which neighbour gid it maps to.
        let target = FileId(1);
        let wanted = fx.scheme.group_of_file(target);
        let query = fx.query(&[3, 4], Some(1));
        let (targets, decision) = protocol.forward_targets(&fx.view(0), &query.context(), None);
        assert_eq!(decision, ForwardDecision::GidMatch);
        for t in &targets {
            assert_eq!(fx.scheme.group_of_file(target), wanted);
            assert_eq!(t.0 % 4, wanted.value(), "every target's gid must match the file");
        }
        assert!(!targets.is_empty());
    }

    #[test]
    fn falls_back_to_the_high_degree_neighbor() {
        let fx = Fixture::new(4);
        let protocol = Dicas::new();
        // From leaf peer 3, the only neighbour is the hub 0 (gid 0). Choose a
        // file whose group is not 0 so the gid match fails.
        let target = (0..4u32)
            .map(FileId)
            .find(|&f| fx.scheme.group_of_file(f).value() != 0)
            .expect("some file must hash outside group 0");
        let query = fx.query(&[0], Some(target.0));
        let (targets, decision) = protocol.forward_targets(&fx.view(3), &query.context(), None);
        assert_eq!(targets, vec![PeerId(0)]);
        assert_eq!(decision, ForwardDecision::HighDegree);
    }

    #[test]
    fn matches_exact_filename_from_storage_and_from_cache() {
        let mut fx = Fixture::new(4);
        let protocol = Dicas::new();
        let query = fx.query(&[0, 1], Some(0));

        // Nothing known: no match.
        assert!(protocol.local_match(&fx.view(0), &query.context()).is_none());

        // From storage.
        fx.peers[0].share_file(FileId(0));
        let hit = protocol.local_match(&fx.view(0), &query.context()).unwrap();
        assert_eq!(hit.file, FileId(0));
        assert!(!hit.from_cache);

        // From cache (on a peer that does not store the file).
        fx.peers[1].cache_index(
            FileId(0),
            fx.catalog.filename(FileId(0)).keywords(),
            [(PeerId(9), LocId(5))],
        );
        let hit = protocol.local_match(&fx.view(1), &query.context()).unwrap();
        assert!(hit.from_cache);
        assert_eq!(hit.providers.len(), 1);
        assert_eq!(hit.providers[0].provider, PeerId(9));
    }

    #[test]
    fn caches_single_provider_only_at_matching_gid_peers() {
        let mut fx = Fixture::new(4);
        let protocol = Dicas::new();
        let file = FileId(2);
        let matching_gid = fx.scheme.group_of_file(file);
        let response = response_for(&fx, 2, 7);
        let scheme = fx.scheme;

        for i in 0..5usize {
            protocol.cache_response(&mut fx.peers[i], &scheme, &response);
        }
        for (i, peer) in fx.peers.iter().enumerate() {
            let should_cache = peer.gid == matching_gid;
            assert_eq!(
                peer.response_index.contains(file),
                should_cache,
                "peer {i} gid {:?} matching {:?}",
                peer.gid,
                matching_gid
            );
            if should_cache {
                let entry = peer.response_index.entry(file).unwrap();
                assert_eq!(entry.provider_count(), 1);
                assert_eq!(entry.providers()[0].peer, PeerId(7));
            }
        }
    }

    #[test]
    fn keyword_query_without_filename_uses_storage_only() {
        let mut fx = Fixture::new(4);
        let protocol = Dicas::new();
        let query = fx.query(&[0], None);
        // A cached index for a matching file is *not* found via keywords.
        fx.peers[0].cache_index(
            FileId(0),
            fx.catalog.filename(FileId(0)).keywords(),
            [(PeerId(9), LocId(5))],
        );
        assert!(protocol.local_match(&fx.view(0), &query.context()).is_none());
        // But a stored file is.
        fx.peers[0].share_file(FileId(2)); // keywords {0,6,7} contains 0
        let hit = protocol.local_match(&fx.view(0), &query.context()).unwrap();
        assert_eq!(hit.file, FileId(2));
    }

    #[test]
    fn policy_flags() {
        let protocol = Dicas::new();
        assert_eq!(protocol.kind(), ProtocolKind::Dicas);
        assert_eq!(protocol.selection_policy(), SelectionPolicy::Random);
        assert!(!protocol.uses_bloom_sync());
        assert_eq!(
            protocol.max_providers_per_file(&SimulationConfig::small(10)),
            1
        );
    }
}
