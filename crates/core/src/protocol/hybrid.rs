//! Hybrid structured/unstructured search: split the Zipf popularity curve.
//!
//! Caching overlays like Locaware thrive on the Zipf *head* — popular files
//! are queried often enough that their index entries stay hot in response
//! indexes near every requestor — and struggle on the *tail*, where a rare
//! file's only index entry may sit many hops from the next requestor. A DHT
//! inverts the trade-off: every file is reachable in `O(log n)` hops
//! regardless of popularity, but lookups pay those hops even for files the
//! overlay would have answered from a neighbour's cache.
//!
//! This protocol takes each side's strong half. Targets in the most popular
//! `hybrid_head_fraction` of the catalog resolve through the full Locaware
//! machinery (Bloom-directed forwarding, response-index caching,
//! locality-aware selection); everything below that rank is indexed in — and
//! resolved through — the keyword DHT. The popularity rank comes from the
//! workload's ground-truth permutation, standing in for the rank estimate a
//! deployed peer would maintain from observed query frequencies.

use locaware_overlay::{ForwardDecision, PeerId};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::provider::SelectionPolicy;

use super::locaware::Locaware;
use super::{LocalMatch, PeerView, Protocol, QueryContext, ResponseContext};

/// The hybrid head/tail protocol: Locaware for the popular head, the DHT for
/// the rare tail.
#[derive(Debug, Clone)]
pub struct Hybrid {
    /// The unstructured side, with all its switches at paper settings.
    overlay: Locaware,
    /// Fraction of the catalog (by popularity rank) the overlay keeps.
    head_fraction: f64,
}

impl Hybrid {
    /// Creates the hybrid policy from the run configuration.
    pub fn new(config: &SimulationConfig) -> Self {
        Hybrid {
            overlay: Locaware::new(config),
            head_fraction: config.dht.hybrid_head_fraction,
        }
    }
}

impl Protocol for Hybrid {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Hybrid
    }

    fn selection_policy(&self) -> SelectionPolicy {
        self.overlay.selection_policy()
    }

    fn uses_bloom_sync(&self) -> bool {
        self.overlay.uses_bloom_sync()
    }

    fn uses_dht(&self) -> bool {
        true
    }

    fn dht_resolves_rank(&self, rank: usize, catalog_len: usize) -> bool {
        // Ranks [0, head_fraction * len) stay on the overlay; the tail is the
        // DHT's. With fraction 0 everything is structured, with 1 nothing is.
        (rank as f64) >= self.head_fraction * catalog_len as f64
    }

    fn max_providers_per_file(&self, config: &SimulationConfig) -> usize {
        self.overlay.max_providers_per_file(config)
    }

    fn forward_targets_into(
        &self,
        view: &PeerView<'_>,
        query: &QueryContext<'_>,
        exclude: Option<PeerId>,
        out: &mut Vec<PeerId>,
    ) -> ForwardDecision {
        self.overlay.forward_targets_into(view, query, exclude, out)
    }

    fn local_match(&self, view: &PeerView<'_>, query: &QueryContext<'_>) -> Option<LocalMatch> {
        self.overlay.local_match(view, query)
    }

    fn cache_response(
        &self,
        state: &mut PeerState,
        scheme: &GroupScheme,
        response: &ResponseContext,
    ) {
        self.overlay.cache_response(state, scheme, response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hybrid_with_fraction(fraction: f64) -> Hybrid {
        let mut config = SimulationConfig::small(20);
        config.dht.hybrid_head_fraction = fraction;
        Hybrid::new(&config)
    }

    #[test]
    fn head_stays_on_the_overlay_and_the_tail_goes_structured() {
        let hybrid = hybrid_with_fraction(0.1);
        // 100-file catalog: ranks 0..=9 are the head, 10..=99 the tail.
        assert!(!hybrid.dht_resolves_rank(0, 100));
        assert!(!hybrid.dht_resolves_rank(9, 100));
        assert!(hybrid.dht_resolves_rank(10, 100));
        assert!(hybrid.dht_resolves_rank(99, 100));
    }

    #[test]
    fn degenerate_fractions_collapse_to_pure_protocols() {
        let all_dht = hybrid_with_fraction(0.0);
        let all_overlay = hybrid_with_fraction(1.0);
        for rank in [0, 1, 50, 99] {
            assert!(all_dht.dht_resolves_rank(rank, 100));
            assert!(!all_overlay.dht_resolves_rank(rank, 100));
        }
    }

    #[test]
    fn delegates_overlay_policy_to_locaware() {
        let config = SimulationConfig::small(20);
        let hybrid = Hybrid::new(&config);
        let locaware = Locaware::new(&config);
        assert_eq!(hybrid.kind(), ProtocolKind::Hybrid);
        assert_eq!(hybrid.selection_policy(), locaware.selection_policy());
        assert_eq!(hybrid.uses_bloom_sync(), locaware.uses_bloom_sync());
        assert_eq!(
            hybrid.max_providers_per_file(&config),
            locaware.max_providers_per_file(&config)
        );
        assert!(hybrid.uses_dht());
        assert!(!locaware.uses_dht());
    }
}
