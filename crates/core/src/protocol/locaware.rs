//! Locaware: location-aware index caching with Bloom-filter keyword routing —
//! the paper's contribution (§4).
//!
//! The four ingredients, and where they live here:
//!
//! 1. **Location-aware response index** (§4.1.1): every cached provider entry
//!    carries its locId; responses assembled from the index put a provider in
//!    the requestor's locality first ([`Locaware::local_match`]).
//! 2. **Leveraging natural replication** (§4.1.2): caching peers also record
//!    the *requestor* as a new provider, and a peer answering from its index
//!    adds the new requestor too ([`Locaware::cache_response`]).
//! 3. **Bloom-filter keyword routing** (§4.2): a query is forwarded to the
//!    neighbours whose (last known) Bloom filter contains every query keyword;
//!    if none matches, to neighbours whose Gid matches a query keyword; as a
//!    last resort to the highest-degree neighbour
//!    ([`Locaware::forward_targets`]).
//! 4. **Location-aware provider selection** (§5.1): same-locId provider first,
//!    else the smallest probed RTT ([`SelectionPolicy::LocalityThenRtt`]).
//!
//! The `without_locality` / `without_bloom` constructors switch off ingredient
//! 4 or 3 respectively; the ablation benchmarks use them to attribute the gains
//! of Figure 2 and Figure 4 to the individual mechanisms.

use locaware_overlay::{ForwardDecision, PeerId, ProviderEntry};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::provider::SelectionPolicy;

use super::{
    first_storage_match, high_degree_fallback_into, LocalMatch, PeerView, Protocol, QueryContext,
    ResponseContext,
};

/// The Locaware policy (and its ablation variants).
#[derive(Debug, Clone, Copy)]
pub struct Locaware {
    kind: ProtocolKind,
    /// Use Bloom filters for routing (ingredient 3). When off, routing falls
    /// straight back to the Gid rule.
    use_bloom_routing: bool,
    /// Use locality-aware provider selection (ingredient 4). When off,
    /// selection is uniformly random like the baselines.
    use_locality_selection: bool,
    /// Maximum provider entries returned in one response.
    max_providers_per_response: usize,
    /// Maximum provider entries kept per cached filename.
    max_providers_per_file: usize,
}

impl Locaware {
    /// The full protocol as described in the paper.
    pub fn new(config: &SimulationConfig) -> Self {
        Locaware {
            kind: ProtocolKind::Locaware,
            use_bloom_routing: true,
            use_locality_selection: true,
            max_providers_per_response: config.max_providers_per_response,
            max_providers_per_file: config.max_providers_per_file,
        }
    }

    /// Ablation: multiple providers are cached and returned, but the requestor
    /// picks among them at random (no locality awareness).
    pub fn without_locality(config: &SimulationConfig) -> Self {
        Locaware {
            kind: ProtocolKind::LocawareNoLocality,
            use_locality_selection: false,
            ..Self::new(config)
        }
    }

    /// Ablation: no Bloom-filter routing; queries fall back to the Gid rule
    /// (like Dicas-Keys) while caching and selection stay location-aware.
    pub fn without_bloom(config: &SimulationConfig) -> Self {
        Locaware {
            kind: ProtocolKind::LocawareNoBloom,
            use_bloom_routing: false,
            ..Self::new(config)
        }
    }

    /// Assembles the provider list for a response, putting a same-locality
    /// provider (w.r.t. the query originator) first, then the freshest others,
    /// capped at `max_providers_per_response`. This is the "(D, 1) …
    /// also includes IP addresses of some other providers" behaviour of §4.1.2.
    fn assemble_providers(
        &self,
        entry_providers: &[crate::index::ProviderRecord],
        origin_loc: locaware_net::LocId,
        always_include: Option<ProviderEntry>,
    ) -> Vec<ProviderEntry> {
        let mut ordered: Vec<&crate::index::ProviderRecord> = entry_providers.iter().collect();
        // Most recent first; the paper keeps the most recent entries as the
        // freshest (least likely to be stale).
        ordered.sort_by_key(|p| std::cmp::Reverse(p.freshness));
        // Stable partition: same-locality providers first.
        let (local, remote): (
            Vec<&crate::index::ProviderRecord>,
            Vec<&crate::index::ProviderRecord>,
        ) = ordered.into_iter().partition(|p| p.loc_id == origin_loc);

        let mut out: Vec<ProviderEntry> = Vec::new();
        if let Some(extra) = always_include {
            out.push(extra);
        }
        for record in local.into_iter().chain(remote) {
            if out.len() >= self.max_providers_per_response {
                break;
            }
            if out.iter().any(|p| p.provider == record.peer) {
                continue;
            }
            out.push(ProviderEntry {
                provider: record.peer,
                loc_id: record.loc_id,
            });
        }
        out
    }
}

impl Protocol for Locaware {
    fn kind(&self) -> ProtocolKind {
        self.kind
    }

    fn selection_policy(&self) -> SelectionPolicy {
        if self.use_locality_selection {
            SelectionPolicy::LocalityThenRtt
        } else {
            SelectionPolicy::Random
        }
    }

    fn uses_bloom_sync(&self) -> bool {
        self.use_bloom_routing
    }

    fn max_providers_per_file(&self, _config: &SimulationConfig) -> usize {
        self.max_providers_per_file
    }

    fn forward_targets_into(
        &self,
        view: &PeerView<'_>,
        query: &QueryContext<'_>,
        exclude: Option<PeerId>,
        out: &mut Vec<PeerId>,
    ) -> ForwardDecision {
        out.clear();
        // 1. Neighbours whose Bloom filter matches every query keyword. The
        //    query's keywords are hashed once (at the catalog) and probed
        //    against each neighbour's filter words directly.
        if self.use_bloom_routing {
            view.state.neighbors_matching_bloom_into(
                query.keyword_hashes,
                |n| Some(n) != exclude && view.graph.is_active(n),
                out,
            );
            if !out.is_empty() {
                return ForwardDecision::BloomMatch;
            }
        }
        // 2. Neighbours whose Gid matches the query ("matched Gid wrt q").
        let scheme = view.scheme;
        view.state.neighbors_matching_gid_into(
            |gid| scheme.gid_matches_any_keyword(gid, query.keywords),
            |n| Some(n) != exclude && view.graph.is_active(n),
            out,
        );
        if !out.is_empty() {
            return ForwardDecision::GidMatch;
        }
        // 3. Last resort: a highly connected neighbour.
        high_degree_fallback_into(view, exclude, out)
    }

    fn local_match(&self, view: &PeerView<'_>, query: &QueryContext<'_>) -> Option<LocalMatch> {
        // 1. The peer's own storage: it is itself a provider; enrich with any
        //    additional providers it has cached for the same file.
        if let Some(file) = first_storage_match(view, query.keywords) {
            let own = ProviderEntry {
                provider: view.state.id,
                loc_id: view.state.loc_id,
            };
            let cached = view
                .state
                .response_index
                .entry(file)
                .map(|e| self.assemble_providers(e.providers(), query.origin_loc, Some(own)))
                .unwrap_or_else(|| vec![own]);
            return Some(LocalMatch {
                file,
                providers: cached,
                from_cache: false,
            });
        }
        // 2. The response index, matched by keywords. Prefer the cached file
        //    that can offer a provider in the originator's locality.
        let candidates = view.state.response_index.lookup_by_keywords(query.keywords);
        if candidates.is_empty() {
            return None;
        }
        let best = candidates
            .iter()
            .copied()
            .max_by_key(|&f| {
                let entry = view.state.response_index.entry(f);
                let local_providers = entry
                    .map(|e| {
                        e.providers()
                            .iter()
                            .filter(|p| p.loc_id == query.origin_loc)
                            .count()
                    })
                    .unwrap_or(0);
                let total = entry.map(|e| e.provider_count()).unwrap_or(0);
                (local_providers, total, std::cmp::Reverse(f.0))
            })
            .expect("candidates is non-empty");
        let entry = view.state.response_index.entry(best)?;
        let providers = self.assemble_providers(entry.providers(), query.origin_loc, None);
        if providers.is_empty() {
            return None;
        }
        Some(LocalMatch {
            file: best,
            providers,
            from_cache: true,
        })
    }

    fn cache_response(
        &self,
        state: &mut PeerState,
        scheme: &GroupScheme,
        response: &ResponseContext,
    ) {
        // Cache only at peers whose Gid matches hash(f) mod M (§4.1.2 keeps the
        // Dicas placement rule), but cache *all* advertised providers plus the
        // requestor as a new provider.
        if !scheme.gid_matches_file(state.gid, response.file) {
            return;
        }
        let providers = response
            .providers
            .iter()
            .map(|p| (p.provider, p.loc_id))
            .chain(std::iter::once((
                response.requestor.provider,
                response.requestor.loc_id,
            )));
        state.cache_index(response.file, &response.file_keywords, providers);
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::Fixture;
    use super::*;
    use locaware_bloom::BloomFilter;
    use locaware_net::LocId;
    use locaware_workload::{FileId, KeywordId};

    fn config() -> SimulationConfig {
        SimulationConfig::small(20)
    }

    fn kws(ids: &[u32]) -> Vec<KeywordId> {
        ids.iter().map(|&i| KeywordId(i)).collect()
    }

    #[test]
    fn bloom_match_takes_priority_over_gid_and_degree() {
        let mut fx = Fixture::new(4);
        let protocol = Locaware::new(&config());
        let query = fx.query(&[0, 1], None);

        // Teach peer 0 that neighbour 3's filter contains keywords 0 and 1.
        let mut bloom = BloomFilter::default();
        bloom.insert(&KeywordId(0).canonical());
        bloom.insert(&KeywordId(1).canonical());
        fx.peers[0].set_neighbor_bloom(PeerId(3), bloom);

        let (targets, decision) = protocol.forward_targets(&fx.view(0), &query.context(), None);
        assert_eq!(targets, vec![PeerId(3)]);
        assert_eq!(decision, ForwardDecision::BloomMatch);

        // Excluding the only bloom match falls back to the Gid rule (or the
        // high-degree fallback when no gid matches).
        let (targets2, decision2) =
            protocol.forward_targets(&fx.view(0), &query.context(), Some(PeerId(3)));
        assert!(!targets2.contains(&PeerId(3)));
        assert!(matches!(
            decision2,
            ForwardDecision::GidMatch | ForwardDecision::HighDegree
        ));
    }

    #[test]
    fn no_bloom_variant_skips_bloom_routing() {
        let mut fx = Fixture::new(4);
        let protocol = Locaware::without_bloom(&config());
        let query = fx.query(&[0, 1], None);
        let mut bloom = BloomFilter::default();
        bloom.insert(&KeywordId(0).canonical());
        bloom.insert(&KeywordId(1).canonical());
        fx.peers[0].set_neighbor_bloom(PeerId(3), bloom);

        let (_, decision) = protocol.forward_targets(&fx.view(0), &query.context(), None);
        assert_ne!(decision, ForwardDecision::BloomMatch);
        assert!(!protocol.uses_bloom_sync());
    }

    #[test]
    fn caching_records_providers_and_the_requestor() {
        let mut fx = Fixture::new(4);
        let protocol = Locaware::new(&config());
        let scheme = fx.scheme;
        let file = FileId(0);
        let matching_gid = scheme.group_of_file(file);
        // Make peer 0 eligible to cache this file.
        fx.peers[0].gid = matching_gid;

        let response = ResponseContext {
            file,
            file_keywords: fx.catalog.filename(file).keywords().to_vec(),
            query_keywords: vec![],
            providers: vec![
                ProviderEntry {
                    provider: PeerId(7),
                    loc_id: LocId(3),
                },
                ProviderEntry {
                    provider: PeerId(8),
                    loc_id: LocId(1),
                },
            ],
            requestor: ProviderEntry {
                provider: PeerId(4),
                loc_id: LocId(1),
            },
        };
        protocol.cache_response(&mut fx.peers[0], &scheme, &response);
        let entry = fx.peers[0].response_index.entry(file).unwrap();
        let providers: Vec<u32> = entry.providers().iter().map(|p| p.peer.0).collect();
        assert!(providers.contains(&7));
        assert!(providers.contains(&8));
        assert!(providers.contains(&4), "the requestor becomes a provider (§4.1.2)");

        // A non-matching peer does not cache.
        let other_gid = crate::group::GroupId((matching_gid.value() + 1) % 4);
        fx.peers[1].gid = other_gid;
        protocol.cache_response(&mut fx.peers[1], &scheme, &response);
        assert!(!fx.peers[1].response_index.contains(file));
    }

    #[test]
    fn index_answers_prefer_the_originators_locality() {
        let mut fx = Fixture::new(4);
        let protocol = Locaware::new(&config());
        let file = FileId(0); // keywords {0,1,2}
        fx.peers[2].cache_index(
            file,
            fx.catalog.filename(file).keywords(),
            [
                (PeerId(7), LocId(0)),
                (PeerId(8), LocId(1)), // same locality as the query origin
                (PeerId(9), LocId(2)),
            ],
        );
        let query = fx.query(&[0, 2], None); // origin_loc = LocId(1)
        let hit = protocol.local_match(&fx.view(2), &query.context()).unwrap();
        assert!(hit.from_cache);
        assert_eq!(hit.file, file);
        assert_eq!(
            hit.providers.first().unwrap().provider,
            PeerId(8),
            "the same-locality provider must come first"
        );
        assert!(hit.providers.len() >= 2, "other providers are included too");
    }

    #[test]
    fn storage_answers_include_cached_providers() {
        let mut fx = Fixture::new(4);
        let protocol = Locaware::new(&config());
        let file = FileId(2); // keywords {0,6,7}
        fx.peers[1].share_file(file);
        fx.peers[1].cache_index(
            file,
            fx.catalog.filename(file).keywords(),
            [(PeerId(9), LocId(1))],
        );
        let query = fx.query(&[6, 7], None);
        let hit = protocol.local_match(&fx.view(1), &query.context()).unwrap();
        assert!(!hit.from_cache);
        assert_eq!(hit.providers[0].provider, PeerId(1), "the serving peer itself first");
        assert!(hit.providers.iter().any(|p| p.provider == PeerId(9)));
    }

    #[test]
    fn provider_list_is_capped_per_response() {
        let mut fx = Fixture::new(4);
        let mut cfg = config();
        cfg.max_providers_per_response = 2;
        let protocol = Locaware::new(&cfg);
        let file = FileId(3);
        fx.peers[2].cache_index(
            file,
            fx.catalog.filename(file).keywords(),
            (0..4u32).map(|i| (PeerId(10 + i), LocId(0))),
        );
        let query = fx.query(&[8, 9], None);
        let hit = protocol.local_match(&fx.view(2), &query.context()).unwrap();
        assert_eq!(hit.providers.len(), 2);
    }

    #[test]
    fn ablation_flags_and_selection_policies() {
        let cfg = config();
        let full = Locaware::new(&cfg);
        assert_eq!(full.kind(), ProtocolKind::Locaware);
        assert_eq!(full.selection_policy(), SelectionPolicy::LocalityThenRtt);
        assert!(full.uses_bloom_sync());

        let no_loc = Locaware::without_locality(&cfg);
        assert_eq!(no_loc.kind(), ProtocolKind::LocawareNoLocality);
        assert_eq!(no_loc.selection_policy(), SelectionPolicy::Random);
        assert!(no_loc.uses_bloom_sync());

        let no_bloom = Locaware::without_bloom(&cfg);
        assert_eq!(no_bloom.kind(), ProtocolKind::LocawareNoBloom);
        assert_eq!(no_bloom.selection_policy(), SelectionPolicy::LocalityThenRtt);
        assert!(!no_bloom.uses_bloom_sync());

        assert_eq!(full.max_providers_per_file(&cfg), cfg.max_providers_per_file);
    }

    #[test]
    fn no_match_when_nothing_is_known() {
        let fx = Fixture::new(4);
        let protocol = Locaware::new(&config());
        let query = fx.query(&[0, 1], None);
        assert!(protocol.local_match(&fx.view(0), &query.context()).is_none());
        // Empty keyword lists never match anything.
        let empty = fx.query(&[], None);
        assert!(protocol.local_match(&fx.view(0), &empty.context()).is_none());
        let _ = kws(&[0]);
    }
}
