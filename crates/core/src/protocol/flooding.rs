//! Blind flooding (the Gnutella baseline).
//!
//! §3.1: *"Query routing is done by blindly flooding q over the P2P network and
//! is bounded by a fixed TTL."* There is no index caching at all: only peers
//! that actually store a satisfying file answer. Flooding is the upper bound on
//! success rate and the (very high) baseline for search traffic in Figures 3–4.

use locaware_overlay::{ForwardDecision, PeerId, ProviderEntry};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::provider::SelectionPolicy;

use super::{
    all_neighbors_except_into, first_storage_match, LocalMatch, PeerView, Protocol, QueryContext,
    ResponseContext,
};

/// The flooding baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flooding;

impl Flooding {
    /// Creates the flooding policy.
    pub fn new() -> Self {
        Flooding
    }
}

impl Protocol for Flooding {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Flooding
    }

    fn selection_policy(&self) -> SelectionPolicy {
        SelectionPolicy::Random
    }

    fn max_providers_per_file(&self, _config: &SimulationConfig) -> usize {
        1
    }

    fn forward_targets_into(
        &self,
        view: &PeerView<'_>,
        _query: &QueryContext<'_>,
        exclude: Option<PeerId>,
        out: &mut Vec<PeerId>,
    ) -> ForwardDecision {
        out.clear();
        all_neighbors_except_into(view, exclude, out);
        if out.is_empty() {
            ForwardDecision::NotForwarded
        } else {
            ForwardDecision::Flood
        }
    }

    fn local_match(&self, view: &PeerView<'_>, query: &QueryContext<'_>) -> Option<LocalMatch> {
        // Only the peer's own storage can answer: flooding caches nothing.
        let file = first_storage_match(view, query.keywords)?;
        Some(LocalMatch {
            file,
            providers: vec![ProviderEntry {
                provider: view.state.id,
                loc_id: view.state.loc_id,
            }],
            from_cache: false,
        })
    }

    fn cache_response(
        &self,
        _state: &mut PeerState,
        _scheme: &GroupScheme,
        _response: &ResponseContext,
    ) {
        // Flooding performs no index caching.
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::Fixture;
    use super::*;
    use locaware_net::LocId;
    use locaware_workload::{FileId, KeywordId};

    #[test]
    fn forwards_to_every_neighbor_except_the_sender() {
        let fx = Fixture::new(4);
        let protocol = Flooding::new();
        let query = fx.query(&[0], None);
        let (targets, decision) =
            protocol.forward_targets(&fx.view(0), &query.context(), Some(PeerId(3)));
        assert_eq!(targets, vec![PeerId(1), PeerId(2), PeerId(4)]);
        assert_eq!(decision, ForwardDecision::Flood);
    }

    #[test]
    fn leaf_with_only_the_sender_does_not_forward() {
        let fx = Fixture::new(4);
        let protocol = Flooding::new();
        let query = fx.query(&[0], None);
        let (targets, decision) =
            protocol.forward_targets(&fx.view(3), &query.context(), Some(PeerId(0)));
        assert!(targets.is_empty());
        assert_eq!(decision, ForwardDecision::NotForwarded);
    }

    #[test]
    fn answers_only_from_its_own_storage() {
        let mut fx = Fixture::new(4);
        let protocol = Flooding::new();
        let query = fx.query(&[0, 1], None);
        assert!(protocol.local_match(&fx.view(0), &query.context()).is_none());

        fx.peers[0].share_file(FileId(0)); // keywords {0,1,2}
        let hit = protocol.local_match(&fx.view(0), &query.context()).unwrap();
        assert_eq!(hit.file, FileId(0));
        assert!(!hit.from_cache);
        assert_eq!(hit.providers.len(), 1);
        assert_eq!(hit.providers[0].provider, PeerId(0));
    }

    #[test]
    fn never_caches_passing_responses() {
        let mut fx = Fixture::new(4);
        let protocol = Flooding::new();
        let response = ResponseContext {
            file: FileId(0),
            file_keywords: vec![KeywordId(0), KeywordId(1), KeywordId(2)],
            query_keywords: vec![],
            providers: vec![ProviderEntry {
                provider: PeerId(3),
                loc_id: LocId(0),
            }],
            requestor: ProviderEntry {
                provider: PeerId(4),
                loc_id: LocId(1),
            },
        };
        let scheme = fx.scheme;
        protocol.cache_response(&mut fx.peers[0], &scheme, &response);
        assert!(fx.peers[0].response_index.is_empty());
        assert!(!fx.peers[0].bloom_dirty());
    }

    #[test]
    fn policy_flags() {
        let protocol = Flooding::new();
        assert_eq!(protocol.kind(), ProtocolKind::Flooding);
        assert_eq!(protocol.selection_policy(), SelectionPolicy::Random);
        assert!(!protocol.uses_bloom_sync());
    }
}
