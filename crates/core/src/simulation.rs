//! Building and running simulations.
//!
//! [`Simulation`] prepares the *substrate* once — physical topology, landmark
//! locIds, overlay graph, catalog, initial file placement, group ids and the
//! query arrival schedule — and then runs any number of protocols over that
//! identical substrate. Keeping the substrate fixed across protocols is what
//! makes the curves of Figures 2–4 comparable: every protocol sees the same
//! peers, the same files, the same queries at the same times.

use locaware_net::{
    BriteConfig, BriteGenerator, LandmarkSet, LinkLatencyCache, LocId, PhysicalTopology,
};
use locaware_overlay::{ChurnModel, GeneratorConfig, OverlayGraph};
use locaware_overlay::churn::ChurnEvent;
use locaware_sim::{Duration, RngFactory, SimTime, StreamId};
use locaware_workload::{
    Arrival, ArrivalProcess, Catalog, CatalogConfig, FileId, InitialPlacement, PlacementConfig,
};

use crate::config::{ConfigError, ProtocolKind, SimulationConfig};
use crate::engine::ProtocolEngine;
use crate::experiment::Scenario;
use crate::group::{GroupId, GroupScheme};
use crate::results::SimulationReport;

/// A prepared simulation substrate, ready to run protocols.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimulationConfig,
    rng_factory: RngFactory,
    topology: PhysicalTopology,
    landmarks: LandmarkSet,
    loc_ids: Vec<LocId>,
    graph: OverlayGraph,
    catalog: Catalog,
    initial_shares: Vec<Vec<FileId>>,
    gids: Vec<GroupId>,
    /// Latency of every overlay link, computed once here and reused by every
    /// protocol run over this substrate (message deliveries dominate the
    /// engine's latency lookups and travel along overlay links).
    link_latencies: LinkLatencyCache,
    /// Only under weighted-cluster workloads: `origin_order[slot]` maps a
    /// workload cluster slot onto the peer with locality rank `slot` (the
    /// engine's own [`crate::engine::locality_rank_order`], so "the hot
    /// cluster" is a physically co-located region aligned with the shard
    /// partition, not an arbitrary id range).
    origin_order: Option<Vec<u32>>,
}

impl Simulation {
    /// Builds the substrate described by `config`, validating it first.
    ///
    /// This is the fallible entry point underneath the experiment layer:
    /// [`Scenario::substrate`] calls it with an already-validated
    /// configuration, and [`crate::experiment::Runner`] calls it exactly once
    /// per grid substrate.
    pub fn try_build(config: SimulationConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self::build_validated(config))
    }

    /// Builds the substrate of `scenario` (already validated by construction).
    pub fn from_scenario(scenario: &Scenario) -> Self {
        Self::build_validated(scenario.config().clone())
    }

    /// The actual builder; `config` must already have passed validation.
    fn build_validated(config: SimulationConfig) -> Self {
        let rng_factory = RngFactory::new(config.seed);

        let topology = BriteGenerator::new(BriteConfig {
            nodes: config.peers,
            placement: config.placement,
            min_latency_ms: config.min_latency_ms,
            max_latency_ms: config.max_latency_ms,
            jitter_fraction: 0.05,
        })
        .generate(&mut rng_factory.stream(StreamId::PhysicalTopology));

        let landmarks = LandmarkSet::spread(config.landmarks);
        let loc_ids = landmarks.assign_all(&topology);

        let graph = GeneratorConfig {
            peers: config.peers,
            average_degree: config.average_degree,
            model: config.graph_model,
        }
        .generate(&mut rng_factory.stream(StreamId::OverlayGraph));

        let catalog = Catalog::generate(
            CatalogConfig {
                files: config.file_pool,
                keywords: config.keyword_pool,
                keywords_per_file: config.keywords_per_file,
            },
            &mut rng_factory.stream(StreamId::Catalog),
        );

        let placement = InitialPlacement::generate(
            PlacementConfig {
                peers: config.peers,
                files_per_peer: config.files_per_peer,
                file_pool: config.file_pool,
                cluster_weights: config.cluster_weights.clone(),
            },
            &mut rng_factory.stream(StreamId::FilePlacement),
        );
        let origin_order = config
            .cluster_weights
            .as_ref()
            .map(|_| crate::engine::locality_rank_order(&loc_ids));
        let initial_shares: Vec<Vec<FileId>> = match &origin_order {
            // Uniform workload: slot s *is* peer s, exactly the legacy path.
            None => (0..config.peers)
                .map(|p| placement.files_of(p).to_vec())
                .collect(),
            // Weighted clusters: slot s (a contiguous-cluster position) lands
            // on the peer with locality rank s, so weighted mass concentrates
            // in physical regions.
            Some(order) => {
                let mut shares = vec![Vec::new(); config.peers];
                for (slot, &peer) in order.iter().enumerate() {
                    shares[peer as usize] = placement.files_of(slot).to_vec();
                }
                shares
            }
        };

        let gids = GroupScheme::new(config.group_count)
            .assign_all(config.peers, &mut rng_factory.stream(StreamId::GroupAssignment));

        let link_latencies = LinkLatencyCache::build(&topology, graph.edges());

        Simulation {
            config,
            rng_factory,
            topology,
            landmarks,
            loc_ids,
            graph,
            catalog,
            initial_shares,
            gids,
            link_latencies,
            origin_order,
        }
    }

    /// The configuration this substrate was built from.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The physical topology.
    pub fn topology(&self) -> &PhysicalTopology {
        &self.topology
    }

    /// The landmark set.
    pub fn landmarks(&self) -> &LandmarkSet {
        &self.landmarks
    }

    /// Each peer's location id.
    pub fn loc_ids(&self) -> &[LocId] {
        &self.loc_ids
    }

    /// The overlay graph.
    pub fn overlay(&self) -> &OverlayGraph {
        &self.graph
    }

    /// The file catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Each peer's group id.
    pub fn group_ids(&self) -> &[GroupId] {
        &self.gids
    }

    /// Each peer's initially shared files.
    pub fn initial_shares(&self) -> &[Vec<FileId>] {
        &self.initial_shares
    }

    /// The per-link latency cache shared by every run over this substrate.
    pub fn link_latencies(&self) -> &LinkLatencyCache {
        &self.link_latencies
    }

    /// Generates the arrival schedule for `num_queries` queries. Every protocol
    /// run with the same substrate and query count sees the same schedule.
    /// Arrivals come from the `StreamId::Arrivals` stream, thinned/time-scaled
    /// by [`SimulationConfig::arrival_schedule`] ([`ArrivalSchedule::Steady`]
    /// reproduces legacy runs bit-for-bit); under weighted clusters, each
    /// sampled cluster slot is mapped onto the peer of that locality rank.
    ///
    /// [`ArrivalSchedule::Steady`]: locaware_workload::ArrivalSchedule::Steady
    pub fn arrivals(&self, num_queries: usize) -> Vec<Arrival> {
        let process = ArrivalProcess::new(self.config.arrival_config())
            .expect("arrival configuration was validated by try_build");
        let mut arrivals =
            process.generate_count(num_queries, &mut self.rng_factory.stream(StreamId::Arrivals));
        if let Some(order) = &self.origin_order {
            for arrival in &mut arrivals {
                arrival.peer = order[arrival.peer] as usize;
            }
        }
        arrivals
    }

    /// Generates the churn schedule over the run's span (empty when churn is
    /// disabled, which is the paper's setup).
    ///
    /// The horizon covers both the last *arrival* and the arrival schedule's
    /// intrinsic span: under a burst (or any schedule with a quiet tail) the
    /// final query can land long before the schedule ends, and churn must
    /// keep churning through the trailing quiet phases. With no arrivals and
    /// a steady schedule the horizon stays `SimTime::ZERO` (no churn).
    pub fn churn_schedule(&self, arrivals: &[Arrival]) -> Vec<ChurnEvent> {
        if self.config.churn.is_disabled() {
            return Vec::new();
        }
        let last_arrival = arrivals.last().map(|a| a.at).unwrap_or(SimTime::ZERO);
        let schedule_span = self
            .config
            .arrival_schedule
            .span_secs()
            .map(|secs| SimTime::ZERO + Duration::from_secs_f64(secs))
            .unwrap_or(SimTime::ZERO);
        let horizon = last_arrival.max(schedule_span);
        ChurnModel::new(self.config.churn).schedule(
            self.config.peers,
            horizon,
            &mut self.rng_factory.stream(StreamId::Churn),
        )
    }

    /// Runs `protocol` over this substrate with `num_queries` queries.
    pub fn run(&self, protocol: ProtocolKind, num_queries: usize) -> SimulationReport {
        let arrivals = self.arrivals(num_queries);
        let churn = self.churn_schedule(&arrivals);
        ProtocolEngine::new(
            &self.config,
            protocol,
            &self.topology,
            &self.link_latencies,
            &self.loc_ids,
            &self.graph,
            &self.catalog,
            &self.initial_shares,
            &self.gids,
            arrivals,
            churn,
            &self.rng_factory,
        )
        .run()
    }

    /// Runs every protocol in `protocols` over the identical substrate and
    /// query schedule, returning the reports in the same order.
    pub fn run_all(&self, protocols: &[ProtocolKind], num_queries: usize) -> Vec<SimulationReport> {
        protocols
            .iter()
            .map(|&p| self.run(p, num_queries))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim() -> Simulation {
        let mut config = SimulationConfig::small(60);
        config.seed = 7;
        Simulation::try_build(config).expect("small config validates")
    }

    #[test]
    fn substrate_dimensions_match_the_config() {
        let sim = small_sim();
        assert_eq!(sim.topology().len(), 60);
        assert_eq!(sim.loc_ids().len(), 60);
        assert_eq!(sim.overlay().len(), 60);
        assert!(sim.overlay().is_connected());
        assert_eq!(sim.catalog().len(), sim.config().file_pool);
        assert_eq!(sim.group_ids().len(), 60);
        assert_eq!(sim.initial_shares().len(), 60);
        for shares in sim.initial_shares() {
            assert_eq!(shares.len(), sim.config().files_per_peer);
        }
    }

    #[test]
    fn substrate_is_deterministic_for_a_seed() {
        let a = small_sim();
        let b = small_sim();
        assert_eq!(a.loc_ids(), b.loc_ids());
        assert_eq!(a.group_ids(), b.group_ids());
        assert_eq!(a.initial_shares(), b.initial_shares());
        let arr_a = a.arrivals(50);
        let arr_b = b.arrivals(50);
        assert_eq!(arr_a, arr_b);
    }

    #[test]
    fn runs_produce_one_record_per_query() {
        let sim = small_sim();
        let report = sim.run(ProtocolKind::Flooding, 40);
        assert_eq!(report.queries_issued, 40);
        assert_eq!(report.metrics.len(), 40);
        assert!(report.dispatched_events > 0);
    }

    #[test]
    fn identical_runs_are_bit_for_bit_reproducible() {
        let sim = small_sim();
        let a = sim.run(ProtocolKind::Locaware, 30);
        let b = sim.run(ProtocolKind::Locaware, 30);
        assert_eq!(a.metrics.records(), b.metrics.records());
        assert_eq!(a.success_rate(), b.success_rate());
        assert_eq!(a.avg_messages_per_query(), b.avg_messages_per_query());
    }

    #[test]
    fn flooding_produces_more_traffic_than_locaware() {
        let sim = small_sim();
        let flooding = sim.run(ProtocolKind::Flooding, 60);
        let locaware = sim.run(ProtocolKind::Locaware, 60);
        assert!(
            flooding.avg_messages_per_query() > locaware.avg_messages_per_query(),
            "flooding {} vs locaware {}",
            flooding.avg_messages_per_query(),
            locaware.avg_messages_per_query()
        );
    }

    #[test]
    fn churn_schedule_is_empty_when_disabled() {
        let sim = small_sim();
        let arrivals = sim.arrivals(10);
        assert!(sim.churn_schedule(&arrivals).is_empty());
    }

    #[test]
    fn invalid_configs_are_rejected_by_try_build() {
        let mut config = SimulationConfig::small(10);
        config.ttl = 0;
        assert_eq!(Simulation::try_build(config).unwrap_err(), ConfigError::ZeroTtl);
    }

    #[test]
    fn link_latency_cache_covers_the_overlay_and_agrees_with_the_topology() {
        let sim = small_sim();
        assert_eq!(
            sim.link_latencies().len(),
            2 * sim.overlay().edge_count(),
            "every overlay link must be cached (in both directions)"
        );
        for (a, b) in sim.overlay().edges().take(50) {
            assert_eq!(
                sim.link_latencies().latency(sim.topology(), a, b),
                sim.topology().latency(a, b),
                "cached latency must equal the direct computation"
            );
        }
    }

    #[test]
    fn scenario_and_try_build_produce_the_same_substrate() {
        let scenario = Scenario::small(60).with_seed(7);
        let from_scenario = Simulation::from_scenario(&scenario);
        let direct = small_sim();
        assert_eq!(from_scenario.loc_ids(), direct.loc_ids());
        assert_eq!(from_scenario.initial_shares(), direct.initial_shares());
        assert_eq!(from_scenario.group_ids(), direct.group_ids());
    }
}
