//! Results of one simulation run.

use serde::{Deserialize, Serialize};

use locaware_metrics::{CounterSet, RunMetrics, Table};

use crate::config::ProtocolKind;

/// End-of-run statistics of the DHT subsystem (structured protocols only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DhtRunStats {
    /// Queries that resolved through the DHT (for the hybrid, only the
    /// tail-rank share of the workload).
    pub lookups: u64,
    /// Sum over those queries of the deepest lookup hop whose reply reached
    /// the origin; divide by `lookups` for the mean — the `O(log n)` number.
    pub lookup_depth_total: u64,
    /// Store transfers sent over the wire (publishes and republish rounds),
    /// the subsystem's maintenance-traffic price.
    pub store_messages: u64,
    /// Keyword records held across all stores at the end of the run.
    pub records: usize,
    /// Provider entries across all records at the end of the run.
    pub provider_entries: usize,
    /// Serialized bytes across all stores at the end of the run.
    pub record_bytes: usize,
    /// Lifetime count of entries evicted by the per-record byte cap.
    pub truncated_entries: u64,
    /// Lifetime count of entries dropped by TTL expiry sweeps.
    pub expired_entries: u64,
}

impl DhtRunStats {
    /// Mean lookup depth over DHT-resolved queries (0.0 if there were none).
    pub fn mean_lookup_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.lookup_depth_total as f64 / self.lookups as f64
        }
    }
}

/// End-of-run statistics of the fault plan (runs with any fault axis armed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRunStats {
    /// Messages dropped at send time by the loss coin or an outage window.
    pub messages_lost: u64,
    /// DHT store transfers among the lost — index maintenance the next
    /// republish round has to repair.
    pub dht_stores_lost: u64,
    /// Query retransmit deadlines that fired with the query still unanswered
    /// (including the final, retries-exhausted one).
    pub query_timeouts: u64,
    /// Query re-floods actually issued (bounded by the policy's max retries).
    pub query_retransmits: u64,
    /// DHT lookup step deadlines that released a stalled in-flight slot.
    pub dht_step_timeouts: u64,
    /// Churn departures executed as crash-stops (no goodbyes to neighbours,
    /// routing tables or indexes).
    pub crash_departures: u64,
}

/// Everything measured during one run of one protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationReport {
    /// The protocol evaluated.
    pub protocol: ProtocolKind,
    /// Number of queries issued.
    pub queries_issued: u64,
    /// Per-query records and their aggregations (Figures 2–4 read from here).
    pub metrics: RunMetrics,
    /// Message counts by kind (query, query-response, bloom-delta, …).
    pub message_counters: CounterSet<String>,
    /// Routing-decision counts (flood, bloom-match, gid-match, high-degree).
    pub routing_decisions: CounterSet<String>,
    /// Messages not attributable to a query (Bloom synchronisation traffic).
    pub background_messages: u64,
    /// Total (peer, file) replicas at the end of the run — shows natural
    /// replication at work.
    pub total_file_replicas: usize,
    /// Total response-index entries across all peers at the end of the run.
    pub total_cached_index_entries: usize,
    /// Simulated time at which the run finished, in seconds.
    pub simulated_end_time_secs: f64,
    /// Number of simulation events dispatched.
    pub dispatched_events: u64,
    /// DHT subsystem statistics — `Some` exactly for structured protocols
    /// (`dht-index`, `hybrid`), `None` for the unstructured six, whose
    /// reports are byte-for-byte unchanged by the subsystem's existence.
    pub dht: Option<DhtRunStats>,
    /// Fault-plan statistics — `Some` exactly when the run's configuration
    /// armed any fault axis, `None` otherwise, so fault-free reports (and
    /// their pinned fingerprints) are byte-for-byte unchanged by the fault
    /// subsystem's existence.
    pub faults: Option<FaultRunStats>,
}

impl SimulationReport {
    /// A cheap, stable FNV-1a digest over the run's observable outcome: the
    /// headline totals plus every per-query record field. Two runs with equal
    /// fingerprints went through the same observable history; bench binaries
    /// (`shard_scaling`, `workload_regimes`) and the churn tests use it to
    /// assert bit-identity of repeats and shard counts without hauling whole
    /// reports around.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(0x100000001b3);
        };
        mix(self.queries_issued);
        mix(self.dispatched_events);
        mix(self.background_messages);
        mix(self.total_file_replicas as u64);
        mix(self.total_cached_index_entries as u64);
        mix(self.simulated_end_time_secs.to_bits());
        for record in self.metrics.records() {
            mix(record.index);
            mix(u64::from(record.requestor));
            mix(u64::from(record.is_success()));
            mix(record.messages);
            mix(record.download_distance_ms.map_or(1, f64::to_bits));
            mix(u64::from(record.locality_match));
            mix(record.providers_offered as u64);
            mix(u64::from(record.hops_to_hit.unwrap_or(u32::MAX)));
            mix(u64::from(record.answered_from_cache));
            mix(record.completion_time_ms.map_or(1, f64::to_bits));
        }
        // DHT fields mix only when present, so the unstructured protocols'
        // pinned fingerprints are untouched by the subsystem's existence.
        if let Some(dht) = &self.dht {
            mix(dht.lookups);
            mix(dht.lookup_depth_total);
            mix(dht.store_messages);
            mix(dht.records as u64);
            mix(dht.provider_entries as u64);
            mix(dht.record_bytes as u64);
            mix(dht.truncated_entries);
            mix(dht.expired_entries);
        }
        // Fault fields likewise mix only when a fault axis is armed.
        if let Some(faults) = &self.faults {
            mix(faults.messages_lost);
            mix(faults.dht_stores_lost);
            mix(faults.query_timeouts);
            mix(faults.query_retransmits);
            mix(faults.dht_step_timeouts);
            mix(faults.crash_departures);
        }
        hash
    }

    /// Figure 4 metric: fraction of satisfied queries.
    pub fn success_rate(&self) -> f64 {
        self.metrics.success_rate()
    }

    /// Figure 3 metric: average messages per query.
    pub fn avg_messages_per_query(&self) -> f64 {
        self.metrics.avg_messages_per_query()
    }

    /// Figure 2 metric: average download distance (ms) over satisfied queries.
    pub fn avg_download_distance_ms(&self) -> f64 {
        self.metrics.avg_download_distance_ms()
    }

    /// Fraction of satisfied queries served by a provider in the requestor's
    /// locality.
    pub fn locality_match_rate(&self) -> f64 {
        self.metrics.locality_match_rate()
    }

    /// Fraction of satisfied queries answered from a response index.
    pub fn cache_hit_share(&self) -> f64 {
        self.metrics.cache_hit_share()
    }

    /// A one-row-per-metric summary table for reports and examples.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(["metric", "value"]);
        table.push_row(["protocol".to_string(), self.protocol.label().to_string()]);
        table.push_row(["queries issued".to_string(), self.queries_issued.to_string()]);
        table.push_row([
            "success rate".to_string(),
            format!("{:.4}", self.success_rate()),
        ]);
        table.push_row([
            "avg messages / query".to_string(),
            format!("{:.2}", self.avg_messages_per_query()),
        ]);
        table.push_row([
            "avg download distance (ms)".to_string(),
            format!("{:.2}", self.avg_download_distance_ms()),
        ]);
        table.push_row([
            "locality match rate".to_string(),
            format!("{:.4}", self.locality_match_rate()),
        ]);
        table.push_row([
            "cache hit share".to_string(),
            format!("{:.4}", self.cache_hit_share()),
        ]);
        table.push_row([
            "background messages".to_string(),
            self.background_messages.to_string(),
        ]);
        table.push_row([
            "file replicas at end".to_string(),
            self.total_file_replicas.to_string(),
        ]);
        table.push_row([
            "cached index entries at end".to_string(),
            self.total_cached_index_entries.to_string(),
        ]);
        if let Some(dht) = &self.dht {
            table.push_row(["dht lookups".to_string(), dht.lookups.to_string()]);
            table.push_row([
                "dht mean lookup hops".to_string(),
                format!("{:.2}", dht.mean_lookup_hops()),
            ]);
            table.push_row([
                "dht store messages".to_string(),
                dht.store_messages.to_string(),
            ]);
            table.push_row([
                "dht records at end".to_string(),
                format!("{} ({} entries)", dht.records, dht.provider_entries),
            ]);
            table.push_row([
                "dht index bytes at end".to_string(),
                dht.record_bytes.to_string(),
            ]);
            table.push_row([
                "dht truncated / expired entries".to_string(),
                format!("{} / {}", dht.truncated_entries, dht.expired_entries),
            ]);
        }
        if let Some(faults) = &self.faults {
            table.push_row(["messages lost".to_string(), faults.messages_lost.to_string()]);
            table.push_row([
                "dht stores lost".to_string(),
                faults.dht_stores_lost.to_string(),
            ]);
            table.push_row([
                "query timeouts / retransmits".to_string(),
                format!("{} / {}", faults.query_timeouts, faults.query_retransmits),
            ]);
            table.push_row([
                "dht step timeouts".to_string(),
                faults.dht_step_timeouts.to_string(),
            ]);
            table.push_row([
                "crash departures".to_string(),
                faults.crash_departures.to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locaware_metrics::{QueryOutcome, QueryRecord};

    fn report() -> SimulationReport {
        let mut metrics = RunMetrics::new();
        metrics.push(QueryRecord {
            index: 0,
            requestor: 1,
            outcome: QueryOutcome::Satisfied,
            messages: 10,
            download_distance_ms: Some(120.0),
            locality_match: true,
            providers_offered: 3,
            hops_to_hit: Some(2),
            answered_from_cache: true,
            completion_time_ms: Some(310.0),
        });
        metrics.push(QueryRecord {
            index: 1,
            requestor: 2,
            outcome: QueryOutcome::Unsatisfied,
            messages: 14,
            download_distance_ms: None,
            locality_match: false,
            providers_offered: 0,
            hops_to_hit: None,
            answered_from_cache: false,
            completion_time_ms: Some(480.0),
        });
        SimulationReport {
            protocol: ProtocolKind::Locaware,
            queries_issued: 2,
            metrics,
            message_counters: CounterSet::new(),
            routing_decisions: CounterSet::new(),
            background_messages: 5,
            total_file_replicas: 3001,
            total_cached_index_entries: 40,
            simulated_end_time_secs: 100.0,
            dispatched_events: 123,
            dht: None,
            faults: None,
        }
    }

    #[test]
    fn convenience_accessors_delegate_to_metrics() {
        let r = report();
        assert!((r.success_rate() - 0.5).abs() < 1e-12);
        assert!((r.avg_messages_per_query() - 12.0).abs() < 1e-12);
        assert!((r.avg_download_distance_ms() - 120.0).abs() < 1e-12);
        assert!((r.locality_match_rate() - 1.0).abs() < 1e-12);
        assert!((r.cache_hit_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_table_contains_the_headline_numbers() {
        let rendered = report().summary_table().render();
        assert!(rendered.contains("locaware"));
        assert!(rendered.contains("0.5000"));
        assert!(rendered.contains("12.00"));
        assert!(rendered.contains("120.00"));
    }
}
