//! Per-peer protocol state.
//!
//! Each peer owns: the files it shares (its "file storage"), its response index
//! (`RI`, §3.2/§4.1), the Bloom filter summarising the keywords of its cached
//! filenames (§4.2), what it knows about its direct neighbours (their group ids
//! and the latest copy of their Bloom filters), and the routing bookkeeping
//! (duplicate suppression and reverse paths) of the underlying overlay.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use locaware_bloom::{BloomDelta, BloomFilter, BloomParams, CountingBloomFilter, ElementHashes};
use locaware_net::LocId;
use locaware_overlay::{PeerId, QueryRouter};
use locaware_workload::{FileId, KeywordHashes, KeywordId};

use crate::group::GroupId;
use crate::index::ResponseIndex;

/// What a peer knows about one of its direct overlay neighbours.
#[derive(Debug, Clone)]
pub struct NeighborInfo {
    /// The neighbour's group id ("Neighboring peers exchange their group Ids").
    pub gid: GroupId,
    /// The latest copy of the neighbour's Bloom filter this peer holds.
    /// `None` means "empty filter" — the state before the first exchange and
    /// after a volatile reset — kept unallocated because with ~3 neighbours
    /// per peer the pre-exchange filters dominated per-peer memory at scale.
    pub bloom: Option<Box<BloomFilter>>,
}

/// The full protocol-visible state of one peer.
#[derive(Debug, Clone)]
pub struct PeerState {
    /// This peer's id (identical at overlay and underlay layers).
    pub id: PeerId,
    /// This peer's location id.
    pub loc_id: LocId,
    /// This peer's group id.
    pub gid: GroupId,
    /// Files this peer can serve (initial shares plus completed downloads).
    shared_files: BTreeSet<FileId>,
    /// The response index.
    pub response_index: ResponseIndex,
    /// Counting filter tracking the keywords of everything in the response
    /// index (private; supports deletions).
    counting_bloom: CountingBloomFilter,
    /// The last filter version pushed to neighbours.
    exported_bloom: BloomFilter,
    /// True if the response index changed since the last export.
    bloom_dirty: bool,
    /// Per-neighbour knowledge.
    pub neighbors: HashMap<PeerId, NeighborInfo>,
    /// Duplicate suppression and reverse paths.
    pub router: QueryRouter,
    /// True while the peer is online (churn can toggle this).
    pub online: bool,
    /// The peer's DHT half — XOR-metric routing table plus keyword record
    /// store. `Some` only when the run's protocol uses the structured index
    /// (the engine installs it at setup); the six unstructured protocols
    /// never allocate it. Boxed: the node is cold relative to the routing
    /// fields around it, and boxing keeps `PeerState` small for the
    /// unstructured majority of runs.
    pub dht: Option<Box<locaware_overlay::DhtNode>>,
    /// Interned Bloom hashes per keyword, shared with the catalog so filter
    /// maintenance never re-hashes (and never re-spells) a pool keyword.
    keyword_hashes: Arc<KeywordHashes>,
}

impl PeerState {
    /// Creates a fresh peer with an empty cache.
    ///
    /// `keyword_hashes` is the interned per-keyword hash table (normally
    /// [`locaware_workload::Catalog::keyword_hashes`], cloned cheaply via
    /// `Arc`); pass [`KeywordHashes::empty`] to hash on the fly, which is
    /// semantically identical but slower.
    pub fn new(
        id: PeerId,
        loc_id: LocId,
        gid: GroupId,
        bloom_params: BloomParams,
        index_capacity: usize,
        max_providers_per_file: usize,
        keyword_hashes: Arc<KeywordHashes>,
    ) -> Self {
        PeerState {
            id,
            loc_id,
            gid,
            shared_files: BTreeSet::new(),
            response_index: ResponseIndex::new(index_capacity, max_providers_per_file),
            counting_bloom: CountingBloomFilter::new(bloom_params),
            exported_bloom: BloomFilter::new(bloom_params),
            bloom_dirty: false,
            neighbors: HashMap::new(),
            router: QueryRouter::new(),
            online: true,
            dht: None,
            keyword_hashes,
        }
    }

    /// The interned keyword-hash table this peer hashes through.
    pub fn keyword_hashes(&self) -> &Arc<KeywordHashes> {
        &self.keyword_hashes
    }

    // --- file storage ---------------------------------------------------------

    /// Adds a file to this peer's storage (initial share or completed download).
    /// Returns `true` if the file was not already stored.
    pub fn share_file(&mut self, file: FileId) -> bool {
        self.shared_files.insert(file)
    }

    /// True if the peer stores `file`.
    pub fn has_file(&self, file: FileId) -> bool {
        self.shared_files.contains(&file)
    }

    /// The files this peer stores, in id order.
    pub fn shared_files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.shared_files.iter().copied()
    }

    /// Number of files stored.
    pub fn shared_file_count(&self) -> usize {
        self.shared_files.len()
    }

    // --- response index + Bloom maintenance ------------------------------------

    /// Inserts providers for `file` into the response index and keeps the
    /// Bloom filter consistent (new filename keywords inserted, evicted
    /// filename keywords removed). Marks the exported filter dirty when the set
    /// of cached filenames changes.
    pub fn cache_index(
        &mut self,
        file: FileId,
        keywords: &[KeywordId],
        providers: impl IntoIterator<Item = (PeerId, LocId)>,
    ) {
        let was_cached = self.response_index.contains(file);
        let evictions = self.response_index.insert(file, keywords, providers);
        if !was_cached {
            for &kw in keywords {
                self.counting_bloom.insert_hashes(&self.keyword_hashes.of(kw));
            }
            self.bloom_dirty = true;
        }
        for eviction in evictions {
            for &kw in &eviction.keywords {
                self.counting_bloom.remove_hashes(&self.keyword_hashes.of(kw));
            }
            self.bloom_dirty = true;
        }
    }

    /// Advertises extra keywords in this peer's Bloom filter without going
    /// through the response index.
    ///
    /// Locaware uses this for the keywords of the peer's *own shared files*:
    /// §5.2 credits Locaware with "avoid\[ing\] missing results held by
    /// neighbors", which requires neighbours' filters to cover locally stored
    /// files as well as cached indexes. Shared files are never evicted, so no
    /// matching removal is needed.
    pub fn advertise_keywords(&mut self, keywords: &[KeywordId]) {
        for &kw in keywords {
            self.counting_bloom.insert_hashes(&self.keyword_hashes.of(kw));
        }
        if !keywords.is_empty() {
            self.bloom_dirty = true;
        }
    }

    /// Drops every index entry pointing at a departed provider, updating the
    /// Bloom filter for entries that vanish entirely.
    pub fn forget_provider(&mut self, provider: PeerId) {
        for eviction in self.response_index.remove_provider(provider) {
            for &kw in &eviction.keywords {
                self.counting_bloom.remove_hashes(&self.keyword_hashes.of(kw));
            }
            self.bloom_dirty = true;
        }
    }

    /// The peer's current Bloom filter (projected from the counting filter).
    pub fn current_bloom(&self) -> BloomFilter {
        self.counting_bloom.to_bloom()
    }

    /// The last filter version exported to neighbours.
    pub fn exported_bloom(&self) -> &BloomFilter {
        &self.exported_bloom
    }

    /// True if the exported filter is stale.
    pub fn bloom_dirty(&self) -> bool {
        self.bloom_dirty
    }

    /// If the filter changed since the last export, returns the incremental
    /// update to push to neighbours (§4.2 footnote) and records the new export.
    /// Returns `None` when nothing changed.
    pub fn take_bloom_update(&mut self) -> Option<BloomDelta> {
        if !self.bloom_dirty {
            return None;
        }
        let current = self.current_bloom();
        let delta = BloomDelta::between(&self.exported_bloom, &current);
        self.exported_bloom = current;
        self.bloom_dirty = false;
        if delta.is_empty() {
            None
        } else {
            Some(delta)
        }
    }

    /// Clears all cached protocol state (used when a peer rejoins after churn:
    /// caches are volatile, stored files are not).
    pub fn reset_volatile_state(&mut self) {
        self.response_index.clear();
        self.counting_bloom.clear();
        self.exported_bloom = BloomFilter::new(self.exported_bloom.params());
        self.bloom_dirty = false;
        self.router.clear();
        // lint:allow(hash-iter): idempotent per-element write (bloom = None) — visit order cannot matter
        for info in self.neighbors.values_mut() {
            info.bloom = None;
        }
        // The DHT half is volatile too: a rejoining node has lost its stored
        // records and its routing table (the engine rebuilds the table from
        // the current online population; records return via republish).
        if let Some(dht) = &mut self.dht {
            dht.table.clear();
            dht.store.clear();
        }
    }

    // --- neighbour knowledge ----------------------------------------------------

    /// Records a (new) neighbour and its group id, with an empty filter until
    /// the first Bloom exchange.
    pub fn record_neighbor(&mut self, neighbor: PeerId, gid: GroupId) {
        self.neighbors.insert(neighbor, NeighborInfo { gid, bloom: None });
    }

    /// Forgets a neighbour (overlay edge removed).
    pub fn forget_neighbor(&mut self, neighbor: PeerId) {
        self.neighbors.remove(&neighbor);
    }

    /// Replaces the stored copy of a neighbour's filter (full push).
    pub fn set_neighbor_bloom(&mut self, neighbor: PeerId, bloom: BloomFilter) {
        if let Some(info) = self.neighbors.get_mut(&neighbor) {
            info.bloom = Some(Box::new(bloom));
        }
    }

    /// Applies an incremental update to the stored copy of a neighbour's
    /// filter, materializing the unallocated empty filter on first delta
    /// (every peer in a run shares one filter geometry, so the local export's
    /// parameters are the neighbour's too).
    pub fn apply_neighbor_bloom_delta(&mut self, neighbor: PeerId, delta: &BloomDelta) {
        let params = self.exported_bloom.params();
        if let Some(info) = self.neighbors.get_mut(&neighbor) {
            delta.apply(
                info.bloom
                    .get_or_insert_with(|| Box::new(BloomFilter::new(params))),
            );
        }
    }

    /// Neighbours whose stored Bloom filter contains **every** canonical
    /// keyword in `keywords` (the §4.2 routing test), in id order.
    pub fn neighbors_matching_bloom(&self, keywords: &[KeywordId]) -> Vec<PeerId> {
        let hashes: Vec<ElementHashes> =
            keywords.iter().map(|&kw| self.keyword_hashes.of(kw)).collect();
        let mut matches = Vec::new();
        self.neighbors_matching_bloom_into(&hashes, |_| true, &mut matches);
        matches
    }

    /// The routing hot path behind [`PeerState::neighbors_matching_bloom`]:
    /// appends (in id order) every neighbour accepted by `keep` whose stored
    /// filter contains all pre-hashed query keywords. An empty hash slice
    /// matches nothing (empty queries are never routed). The caller's buffer
    /// is appended to, not cleared, so it can be reused across events.
    pub fn neighbors_matching_bloom_into(
        &self,
        query_hashes: &[ElementHashes],
        mut keep: impl FnMut(PeerId) -> bool,
        out: &mut Vec<PeerId>,
    ) {
        if query_hashes.is_empty() {
            return;
        }
        let start = out.len();
        // lint:allow(hash-iter): every neighbour is visited exactly once and the matched set is sorted to id order below; `keep` is a pure membership test at every call site (protocol forward paths pass `n != exclude && online`)
        for (&n, info) in &self.neighbors {
            let Some(bloom) = &info.bloom else {
                continue; // an unexchanged (empty) filter matches nothing
            };
            if keep(n) && bloom.contains_all_hashes(query_hashes) {
                out.push(n);
            }
        }
        out[start..].sort_unstable();
    }

    /// Neighbours whose group id satisfies `predicate`, in id order.
    pub fn neighbors_matching_gid<F>(&self, predicate: F) -> Vec<PeerId>
    where
        F: Fn(GroupId) -> bool,
    {
        let mut matches = Vec::new();
        self.neighbors_matching_gid_into(predicate, |_| true, &mut matches);
        matches
    }

    /// Allocation-free form of [`PeerState::neighbors_matching_gid`]: appends
    /// (in id order) every neighbour accepted by `keep` whose group id
    /// satisfies `predicate`.
    pub fn neighbors_matching_gid_into(
        &self,
        predicate: impl Fn(GroupId) -> bool,
        mut keep: impl FnMut(PeerId) -> bool,
        out: &mut Vec<PeerId>,
    ) {
        let start = out.len();
        // lint:allow(hash-iter): every neighbour is visited exactly once and the matched set is sorted to id order below; `keep`/`predicate` are pure membership tests at every call site
        for (&n, info) in &self.neighbors {
            if keep(n) && predicate(info.gid) {
                out.push(n);
            }
        }
        out[start..].sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: u32) -> PeerState {
        PeerState::new(
            PeerId(id),
            LocId(0),
            GroupId(0),
            BloomParams::default(),
            4,
            3,
            Arc::new(KeywordHashes::empty()),
        )
    }

    fn kws(ids: &[u32]) -> Vec<KeywordId> {
        ids.iter().map(|&i| KeywordId(i)).collect()
    }

    #[test]
    fn file_storage_grows_with_downloads() {
        let mut p = peer(1);
        assert!(p.share_file(FileId(10)));
        assert!(!p.share_file(FileId(10)), "duplicate share is a no-op");
        assert!(p.has_file(FileId(10)));
        assert!(!p.has_file(FileId(11)));
        assert_eq!(p.shared_file_count(), 1);
        assert_eq!(p.shared_files().collect::<Vec<_>>(), vec![FileId(10)]);
    }

    #[test]
    fn caching_updates_the_bloom_filter() {
        let mut p = peer(1);
        assert!(!p.bloom_dirty());
        p.cache_index(FileId(5), &kws(&[100, 200, 300]), [(PeerId(9), LocId(2))]);
        assert!(p.bloom_dirty());
        let bloom = p.current_bloom();
        for kw in kws(&[100, 200, 300]) {
            assert!(bloom.contains(&kw.canonical()));
        }
        // Taking the update clears the dirty flag and exports the new filter.
        let delta = p.take_bloom_update().expect("there should be an update");
        assert!(!delta.is_empty());
        assert!(!p.bloom_dirty());
        assert_eq!(p.exported_bloom(), &p.current_bloom());
        assert!(p.take_bloom_update().is_none(), "no further change, no update");
    }

    #[test]
    fn adding_providers_to_cached_file_does_not_dirty_the_bloom() {
        let mut p = peer(1);
        p.cache_index(FileId(5), &kws(&[1, 2, 3]), [(PeerId(9), LocId(2))]);
        let _ = p.take_bloom_update();
        p.cache_index(FileId(5), &kws(&[1, 2, 3]), [(PeerId(10), LocId(3))]);
        assert!(
            !p.bloom_dirty(),
            "the filename set did not change, so the filter must not change"
        );
    }

    #[test]
    fn eviction_removes_keywords_from_the_bloom() {
        let mut p = peer(1); // capacity 4 filenames
        for f in 0..5u32 {
            p.cache_index(
                FileId(f),
                &kws(&[f * 10, f * 10 + 1, f * 10 + 2]),
                [(PeerId(50 + f), LocId(0))],
            );
        }
        // File 0 was the least recently touched and must have been evicted.
        assert!(!p.response_index.contains(FileId(0)));
        let bloom = p.current_bloom();
        for kw in kws(&[0, 1, 2]) {
            assert!(
                !bloom.contains(&kw.canonical()),
                "evicted filename keywords must leave the filter"
            );
        }
        for kw in kws(&[40, 41, 42]) {
            assert!(bloom.contains(&kw.canonical()));
        }
    }

    #[test]
    fn neighbor_bloom_bookkeeping_and_matching() {
        let mut p = peer(1);
        p.record_neighbor(PeerId(2), GroupId(1));
        p.record_neighbor(PeerId(3), GroupId(2));

        // Neighbour 2 announces a filter containing keywords {7, 8}.
        let mut remote = BloomFilter::default();
        remote.insert(&KeywordId(7).canonical());
        remote.insert(&KeywordId(8).canonical());
        p.set_neighbor_bloom(PeerId(2), remote);

        assert_eq!(p.neighbors_matching_bloom(&kws(&[7])), vec![PeerId(2)]);
        assert_eq!(p.neighbors_matching_bloom(&kws(&[7, 8])), vec![PeerId(2)]);
        assert!(p.neighbors_matching_bloom(&kws(&[7, 9])).is_empty());
        assert!(p.neighbors_matching_bloom(&[]).is_empty());

        assert_eq!(
            p.neighbors_matching_gid(|g| g == GroupId(2)),
            vec![PeerId(3)]
        );
        assert_eq!(p.neighbors_matching_gid(|_| true), vec![PeerId(2), PeerId(3)]);

        p.forget_neighbor(PeerId(2));
        assert!(p.neighbors_matching_bloom(&kws(&[7])).is_empty());
    }

    #[test]
    fn neighbor_delta_updates_apply() {
        let mut p = peer(1);
        p.record_neighbor(PeerId(2), GroupId(0));

        // The neighbour's filter gains keyword 42; we receive only the delta.
        let empty = BloomFilter::default();
        let mut updated = BloomFilter::default();
        updated.insert(&KeywordId(42).canonical());
        let delta = BloomDelta::between(&empty, &updated);
        p.apply_neighbor_bloom_delta(PeerId(2), &delta);
        assert_eq!(p.neighbors_matching_bloom(&kws(&[42])), vec![PeerId(2)]);
        // Deltas to unknown neighbours are ignored without panicking.
        p.apply_neighbor_bloom_delta(PeerId(99), &delta);
    }

    #[test]
    fn forget_provider_cascades_to_bloom() {
        let mut p = peer(1);
        p.cache_index(FileId(5), &kws(&[1, 2, 3]), [(PeerId(9), LocId(2))]);
        let _ = p.take_bloom_update();
        p.forget_provider(PeerId(9));
        assert!(!p.response_index.contains(FileId(5)));
        assert!(p.bloom_dirty());
        assert!(!p.current_bloom().contains(&KeywordId(1).canonical()));
    }

    #[test]
    fn reset_volatile_state_keeps_files_drops_caches() {
        let mut p = peer(1);
        p.share_file(FileId(3));
        p.cache_index(FileId(5), &kws(&[1, 2]), [(PeerId(9), LocId(2))]);
        p.record_neighbor(PeerId(2), GroupId(1));
        p.reset_volatile_state();
        assert!(p.has_file(FileId(3)));
        assert!(p.response_index.is_empty());
        assert!(p.current_bloom().is_empty());
        assert!(!p.bloom_dirty());
        assert!(p.neighbors.contains_key(&PeerId(2)), "neighbour links survive");
    }
}
