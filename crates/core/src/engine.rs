//! The protocol simulation engine.
//!
//! `ProtocolEngine` wires the substrate crates together and executes one run:
//! queries arrive according to the workload's Poisson process, travel over the
//! overlay according to the protocol's routing policy with per-link latencies
//! from the physical topology, responses travel back along reverse paths and
//! are cached according to the protocol's caching rule, and the requestor picks
//! a provider according to the protocol's selection policy. Every query
//! produces one [`QueryRecord`]; Figures 2–4 are aggregations of those records.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use locaware_bloom::ElementHashes;
use locaware_metrics::{CounterSet, QueryOutcome, QueryRecord, RunMetrics};
use locaware_net::{LinkLatencyCache, LocId, PhysicalTopology};
use locaware_overlay::{
    ChurnEventKind, ForwardDecision, Message, MessageKind, OverlayGraph, PeerId, ProviderEntry,
    QueryId,
};
use locaware_overlay::routing::decrement_ttl;
use locaware_overlay::churn::ChurnEvent;
use locaware_sim::{Duration, Engine as SimEngine, EngineContext, RngFactory, SimTime, StreamId};
use locaware_workload::{Arrival, Catalog, FileId, KeywordHashes, KeywordId, QueryGenerator};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::protocol::{Protocol, PeerView, QueryContext, ResponseContext};
use crate::provider::select_provider;
use crate::results::SimulationReport;

/// The engine's event vocabulary.
#[derive(Debug, Clone)]
pub(crate) enum Event {
    /// The `i`-th pre-generated arrival fires: its peer issues a query.
    Issue(usize),
    /// A message arrives at `to`, having been sent by `from`.
    Deliver {
        /// Sending peer.
        from: PeerId,
        /// Receiving peer.
        to: PeerId,
        /// The message.
        message: Message,
    },
    /// A periodic Bloom-filter synchronisation round.
    BloomSync,
    /// A churn transition.
    Churn(ChurnEvent),
}

/// Per-query bookkeeping while the query is in flight.
#[derive(Debug, Clone)]
struct QueryTracking {
    index: u64,
    origin: PeerId,
    origin_loc: LocId,
    keywords: Vec<KeywordId>,
    satisfied: bool,
    messages: u64,
    download_distance_ms: Option<f64>,
    locality_match: bool,
    providers_offered: usize,
    hops_to_hit: Option<u32>,
    answered_from_cache: bool,
}

/// Everything needed to execute one protocol run over a prepared substrate.
pub(crate) struct ProtocolEngine<'a> {
    config: &'a SimulationConfig,
    protocol: Box<dyn Protocol>,
    topology: &'a PhysicalTopology,
    /// Per-link latencies precomputed once per substrate (fallback: topology).
    link_latencies: &'a LinkLatencyCache,
    loc_ids: &'a [LocId],
    catalog: &'a Catalog,
    /// Interned per-keyword Bloom hashes (shared with the catalog and peers).
    keyword_hashes: Arc<KeywordHashes>,
    scheme: GroupScheme,
    graph: OverlayGraph,
    peers: Vec<PeerState>,
    arrivals: Vec<Arrival>,
    churn_schedule: Vec<ChurnEvent>,
    query_generator: QueryGenerator,
    workload_rng: StdRng,
    selection_rng: StdRng,
    churn_rng: StdRng,
    tracking: HashMap<QueryId, QueryTracking>,
    /// Scratch buffers reused across events so the forward path does not
    /// allocate: decoded query keywords, their hashes, and forward targets.
    scratch_keywords: Vec<KeywordId>,
    scratch_hashes: Vec<ElementHashes>,
    scratch_targets: Vec<PeerId>,
    /// (origin, target) → issue time of the most recent query. While that
    /// query can still be in flight the peer will not issue a duplicate for
    /// the same target, so two concurrent queries can never be satisfied by
    /// one download — part of the one-replica-per-satisfied-query accounting
    /// in the reports (the other part is the `has_file` response guard).
    /// After the in-flight window a failed search may be retried.
    issued_targets: HashMap<(PeerId, FileId), SimTime>,
    next_query_id: u64,
    /// Per-kind / per-decision tallies, indexed by discriminant. Kept as flat
    /// arrays on the hot path (a labelled `CounterSet<String>` would allocate
    /// and tree-walk per event); exported as the labelled sets in `finalize`.
    message_counts: [u64; MESSAGE_KINDS.len()],
    decision_counts: [u64; FORWARD_DECISIONS.len()],
    background_messages: u64,
    queries_issued: u64,
}

impl<'a> ProtocolEngine<'a> {
    /// Builds an engine for one run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: &'a SimulationConfig,
        kind: ProtocolKind,
        topology: &'a PhysicalTopology,
        link_latencies: &'a LinkLatencyCache,
        loc_ids: &'a [LocId],
        graph: &OverlayGraph,
        catalog: &'a Catalog,
        initial_shares: &[Vec<FileId>],
        gids: &[crate::group::GroupId],
        arrivals: Vec<Arrival>,
        churn_schedule: Vec<ChurnEvent>,
        rng_factory: &RngFactory,
    ) -> Self {
        let protocol = crate::protocol::build_protocol(kind, config);
        let scheme = GroupScheme::new(config.group_count);
        let bloom_params = locaware_bloom::BloomParams::new(config.bloom_bits, config.bloom_hashes);
        let max_providers = protocol.max_providers_per_file(config);
        let keyword_hashes = catalog.keyword_hashes().clone();

        let mut peers: Vec<PeerState> = (0..config.peers)
            .map(|i| {
                let id = PeerId(i as u32);
                let mut state = PeerState::new(
                    id,
                    loc_ids[i],
                    gids[i],
                    bloom_params,
                    config.response_index_capacity,
                    max_providers,
                    keyword_hashes.clone(),
                );
                for &file in &initial_shares[i] {
                    state.share_file(file);
                    if protocol.uses_bloom_sync() {
                        // §5.2: Bloom routing must not miss results held by
                        // neighbours, so a peer's filter also covers the
                        // filenames it stores itself (see DESIGN.md).
                        state.advertise_keywords(catalog.filename(file).keywords());
                    }
                }
                state
            })
            .collect();

        // Neighbours exchange group ids on join (§4.2); modelled as already
        // known at simulation start, like the paper's static setup.
        for i in 0..config.peers {
            let id = PeerId(i as u32);
            for &n in graph.neighbors(id) {
                let gid = gids[n.index()];
                peers[i].record_neighbor(n, gid, bloom_params);
            }
        }

        // Initial Bloom exchange between neighbours ("Neighboring peers
        // exchange their group Ids as well as their Bloom filters", §4.2).
        if protocol.uses_bloom_sync() {
            let initial_blooms: Vec<_> = peers
                .iter_mut()
                .map(|p| {
                    let _ = p.take_bloom_update();
                    p.exported_bloom().clone()
                })
                .collect();
            for i in 0..config.peers {
                let id = PeerId(i as u32);
                for &n in graph.neighbors(id) {
                    let bloom = initial_blooms[n.index()].clone();
                    peers[i].set_neighbor_bloom(n, bloom);
                }
            }
        }

        let mut workload_rng = rng_factory.stream(StreamId::QueryWorkload);
        let query_generator = QueryGenerator::new(
            catalog,
            locaware_workload::QueryWorkloadConfig {
                zipf_exponent: config.zipf_exponent,
                min_keywords: config.min_query_keywords,
                max_keywords: config.max_query_keywords,
            },
            &mut workload_rng,
        );

        ProtocolEngine {
            config,
            protocol,
            topology,
            link_latencies,
            loc_ids,
            catalog,
            keyword_hashes,
            scheme,
            graph: graph.clone(),
            peers,
            arrivals,
            churn_schedule,
            query_generator,
            workload_rng,
            selection_rng: rng_factory.stream(StreamId::ProtocolTieBreak),
            churn_rng: rng_factory.stream(StreamId::Churn),
            tracking: HashMap::new(),
            issued_targets: HashMap::new(),
            scratch_keywords: Vec::new(),
            scratch_hashes: Vec::new(),
            scratch_targets: Vec::new(),
            next_query_id: 0,
            message_counts: [0; MESSAGE_KINDS.len()],
            decision_counts: [0; FORWARD_DECISIONS.len()],
            background_messages: 0,
            queries_issued: 0,
        }
    }

    /// Executes the run and produces the report.
    pub(crate) fn run(mut self) -> SimulationReport {
        let mut sim: SimEngine<Event> = SimEngine::new().with_max_events(self.config.max_events);

        // Schedule query arrivals.
        let last_arrival = self.arrivals.last().map(|a| a.at).unwrap_or(SimTime::ZERO);
        for (i, arrival) in self.arrivals.iter().enumerate() {
            sim.schedule(arrival.at, Event::Issue(i));
        }

        // Schedule periodic Bloom synchronisation rounds over the workload span
        // (plus a small drain margin so late responses still see fresh filters).
        if self.protocol.uses_bloom_sync() {
            let period = Duration::from_secs_f64(self.config.bloom_sync_period_secs);
            let horizon = last_arrival + Duration::from_secs(60);
            let mut t = SimTime::ZERO + period;
            while t <= horizon {
                sim.schedule(t, Event::BloomSync);
                t += period;
            }
        }

        // Schedule churn transitions (empty for the paper's static setup).
        for event in std::mem::take(&mut self.churn_schedule) {
            sim.schedule(event.at, Event::Churn(event));
        }

        let run_stats = sim.run(|ctx, event| self.handle(ctx, event));

        self.finalize(run_stats.end_time, run_stats.dispatched)
    }

    // --- event handlers ---------------------------------------------------------

    fn handle(&mut self, ctx: &mut EngineContext<'_, Event>, event: Event) {
        match event {
            Event::Issue(index) => self.handle_issue(ctx, index),
            Event::Deliver { from, to, message } => self.handle_deliver(ctx, from, to, message),
            Event::BloomSync => self.handle_bloom_sync(ctx),
            Event::Churn(churn) => self.handle_churn(churn),
        }
    }

    /// Upper bound on how long a query can still be travelling: the search
    /// fans out for at most `ttl` hops, the response retraces the reverse
    /// path, and every hop costs at most `max_latency_ms`.
    fn query_in_flight_window(&self) -> Duration {
        Duration::from_millis_f64(2.0 * self.config.ttl as f64 * self.config.max_latency_ms)
    }

    fn handle_issue(&mut self, ctx: &mut EngineContext<'_, Event>, index: usize) {
        let origin = PeerId(self.arrivals[index].peer as u32);
        if !self.peers[origin.index()].online {
            return;
        }
        // Peers query for files they do not already hold and are not already
        // querying (a duplicate of an in-flight query could be satisfied
        // without creating a second replica, which would break the replica
        // accounting). An earlier query for the same target stops excluding it
        // once it can no longer be in flight — a failed search may be retried,
        // keeping the effective workload Zipf-shaped. Re-draw a few times; if
        // the Zipf draws keep colliding, deterministically fall back to the
        // most popular file the requestor can still legitimately search for.
        let now = ctx.now();
        let in_flight_window = self.query_in_flight_window();
        let excluded = |engine: &Self, target: FileId| {
            engine.peers[origin.index()].has_file(target)
                || engine
                    .issued_targets
                    .get(&(origin, target))
                    .is_some_and(|&at| now.duration_since(at) < in_flight_window)
        };
        let mut query = self.query_generator.generate(self.catalog, &mut self.workload_rng);
        for _ in 0..16 {
            if !excluded(self, query.target) {
                break;
            }
            query = self.query_generator.generate(self.catalog, &mut self.workload_rng);
        }
        if excluded(self, query.target) {
            let Some(target) = (0..self.catalog.len())
                .map(|rank| self.query_generator.file_at_rank(rank))
                .find(|&t| !excluded(self, t))
            else {
                // The peer holds or is already querying every file in the
                // catalog (tiny catalogs, long horizons): there is nothing it
                // can meaningfully search for, so the arrival is skipped just
                // like an offline peer's.
                return;
            };
            query = self
                .query_generator
                .generate_for_target(self.catalog, target, &mut self.workload_rng);
        }
        self.issued_targets.insert((origin, query.target), now);

        let query_id = QueryId(self.next_query_id);
        self.next_query_id += 1;
        let query_index = self.queries_issued;
        self.queries_issued += 1;

        let origin_loc = self.loc_ids[origin.index()];
        self.tracking.insert(
            query_id,
            QueryTracking {
                index: query_index,
                origin,
                origin_loc,
                keywords: query.keywords.clone(),
                satisfied: false,
                messages: 0,
                download_distance_ms: None,
                locality_match: false,
                providers_offered: 0,
                hops_to_hit: None,
                answered_from_cache: false,
            },
        );

        // The originator registers the query locally (no upstream).
        self.peers[origin.index()].router.on_query(query_id, None);

        let target_filename = if self.protocol.kind() == ProtocolKind::Dicas {
            Some(query.target)
        } else {
            None
        };
        self.keyword_hashes
            .of_all_into(&query.keywords, &mut self.scratch_hashes);
        let mut targets = std::mem::take(&mut self.scratch_targets);
        let decision = {
            let qctx = QueryContext {
                query: query_id,
                origin,
                origin_loc,
                keywords: &query.keywords,
                keyword_hashes: &self.scratch_hashes,
                target_filename,
            };
            let view = self.view(origin);
            self.protocol.forward_targets_into(&view, &qctx, None, &mut targets)
        };
        self.decision_counts[decision_index(decision)] += 1;

        let message = Message::Query {
            query: query_id,
            origin,
            origin_loc,
            keywords: query.keywords.iter().map(|k| k.0).collect(),
            target_filename: target_filename.map(|f| f.0),
            ttl: self.config.ttl,
        };
        for &target in &targets {
            self.send(ctx, origin, target, message.clone(), Some(query_id));
        }
        targets.clear();
        self.scratch_targets = targets;
    }

    fn handle_deliver(
        &mut self,
        ctx: &mut EngineContext<'_, Event>,
        from: PeerId,
        to: PeerId,
        message: Message,
    ) {
        if !self.peers[to.index()].online {
            return;
        }
        match message {
            Message::Query {
                query,
                origin,
                origin_loc,
                keywords,
                target_filename,
                ttl,
            } => {
                let is_new = self.peers[to.index()].router.on_query(query, Some(from));
                if !is_new {
                    return;
                }
                // Decode the wire keywords into the reusable scratch buffers;
                // the query context borrows them, so this path allocates
                // nothing per event.
                self.scratch_keywords.clear();
                self.scratch_keywords
                    .extend(keywords.iter().map(|&k| KeywordId(k)));
                self.keyword_hashes
                    .of_all_into(&self.scratch_keywords, &mut self.scratch_hashes);
                let qctx = QueryContext {
                    query,
                    origin,
                    origin_loc,
                    keywords: &self.scratch_keywords,
                    keyword_hashes: &self.scratch_hashes,
                    target_filename: target_filename.map(FileId),
                };

                let local_match = {
                    let view = self.view(to);
                    self.protocol.local_match(&view, &qctx)
                };

                if let Some(hit) = local_match {
                    let hops = self.config.ttl.saturating_sub(ttl) + 1;
                    if let Some(tracking) = self.tracking.get_mut(&query) {
                        if tracking.hops_to_hit.is_none() {
                            tracking.hops_to_hit = Some(hops);
                            tracking.answered_from_cache = hit.from_cache;
                        }
                    }
                    // §4.1.2: the answering peer records the requestor as a new
                    // provider of the file (subject to its caching rule).
                    let requestor_entry = ProviderEntry {
                        provider: origin,
                        loc_id: origin_loc,
                    };
                    let response_ctx = ResponseContext {
                        file: hit.file,
                        file_keywords: self.catalog.filename(hit.file).keywords().to_vec(),
                        query_keywords: self.scratch_keywords.clone(),
                        providers: Vec::new(),
                        requestor: requestor_entry,
                    };
                    self.protocol
                        .cache_response(&mut self.peers[to.index()], &self.scheme, &response_ctx);

                    let response = Message::QueryResponse {
                        query,
                        file: hit.file.0,
                        file_keywords: self
                            .catalog
                            .filename(hit.file)
                            .keywords()
                            .iter()
                            .map(|k| k.0)
                            .collect(),
                        providers: hit.providers,
                        requestor: requestor_entry,
                    };
                    if let Some(upstream) = self.peers[to.index()].router.response_next_hop(query) {
                        self.send(ctx, to, upstream, response, Some(query));
                    }
                    return;
                }

                // No local hit: keep forwarding while TTL allows.
                let Some(new_ttl) = decrement_ttl(ttl) else {
                    return;
                };
                let mut targets = std::mem::take(&mut self.scratch_targets);
                let decision = {
                    let qctx = QueryContext {
                        query,
                        origin,
                        origin_loc,
                        keywords: &self.scratch_keywords,
                        keyword_hashes: &self.scratch_hashes,
                        target_filename: target_filename.map(FileId),
                    };
                    let view = self.view(to);
                    self.protocol
                        .forward_targets_into(&view, &qctx, Some(from), &mut targets)
                };
                self.decision_counts[decision_index(decision)] += 1;
                // Forwarded copies share the keyword list (`Arc`), so the
                // per-target cost is a reference-count bump, not a clone.
                let forwarded = Message::Query {
                    query,
                    origin,
                    origin_loc,
                    keywords,
                    target_filename,
                    ttl: new_ttl,
                };
                for &target in &targets {
                    self.send(ctx, to, target, forwarded.clone(), Some(query));
                }
                targets.clear();
                self.scratch_targets = targets;
            }
            Message::QueryResponse {
                query,
                file,
                file_keywords,
                providers,
                requestor,
            } => {
                let file = FileId(file);
                let keywords: Vec<KeywordId> = file_keywords.iter().map(|&k| KeywordId(k)).collect();
                let is_origin = self
                    .tracking
                    .get(&query)
                    .map(|t| t.origin == to)
                    .unwrap_or(false);

                if is_origin {
                    self.handle_response_at_origin(query, file, &providers);
                    return;
                }

                // Intermediate peer: cache per protocol rule, then relay.
                let response_ctx = ResponseContext {
                    file,
                    file_keywords: keywords,
                    query_keywords: self
                        .tracking
                        .get(&query)
                        .map(|t| t.keywords.clone())
                        .unwrap_or_default(),
                    providers: providers.clone(),
                    requestor,
                };
                self.protocol
                    .cache_response(&mut self.peers[to.index()], &self.scheme, &response_ctx);

                if let Some(upstream) = self.peers[to.index()].router.response_next_hop(query) {
                    let relay = Message::QueryResponse {
                        query,
                        file: file.0,
                        file_keywords,
                        providers,
                        requestor,
                    };
                    self.send(ctx, to, upstream, relay, Some(query));
                }
            }
            Message::BloomFull { filter } => {
                self.peers[to.index()].set_neighbor_bloom(from, filter);
            }
            Message::BloomDelta { delta } => {
                self.peers[to.index()].apply_neighbor_bloom_delta(from, &delta);
            }
            Message::GroupAnnounce { gid } => {
                let params =
                    locaware_bloom::BloomParams::new(self.config.bloom_bits, self.config.bloom_hashes);
                self.peers[to.index()].record_neighbor(from, crate::group::GroupId(gid), params);
            }
            Message::Ping | Message::Pong => {
                // Keep-alives carry no protocol state.
            }
        }
    }

    fn handle_response_at_origin(&mut self, query: QueryId, file: FileId, providers: &[ProviderEntry]) {
        let Some(tracking) = self.tracking.get_mut(&query) else {
            return;
        };
        if tracking.satisfied {
            return;
        }
        // A response can offer a file the requestor already stores (a cached
        // index matches on keywords, not on the requestor's Zipf target).
        // Nothing would be downloaded, so it cannot satisfy the query — this
        // keeps the one-new-replica-per-satisfied-query accounting exact.
        if self.peers[tracking.origin.index()].has_file(file) {
            return;
        }
        // Only online providers can actually serve the download (matters only
        // when churn is enabled; the static setup never filters anything).
        let online: Vec<ProviderEntry> = providers
            .iter()
            .copied()
            .filter(|p| {
                self.peers
                    .get(p.provider.index())
                    .map(|peer| peer.online)
                    .unwrap_or(false)
            })
            .collect();
        tracking.providers_offered = tracking.providers_offered.max(online.len());
        let selection = select_provider(
            self.protocol.selection_policy(),
            self.topology,
            self.link_latencies,
            tracking.origin,
            tracking.origin_loc,
            &online,
            &mut self.selection_rng,
        );
        let Some(selected) = selection else {
            return;
        };
        tracking.satisfied = true;
        tracking.locality_match = selected.locality_match;
        tracking.download_distance_ms = Some(
            self.link_latencies
                .latency(self.topology, tracking.origin, selected.provider)
                .as_millis_f64(),
        );
        // Natural replication: the requestor now stores (and later serves) the file.
        let origin = tracking.origin;
        self.peers[origin.index()].share_file(file);
        if self.protocol.uses_bloom_sync() {
            let keywords = self.catalog.filename(file).keywords().to_vec();
            self.peers[origin.index()].advertise_keywords(&keywords);
        }
    }

    fn handle_bloom_sync(&mut self, ctx: &mut EngineContext<'_, Event>) {
        for i in 0..self.peers.len() {
            if !self.peers[i].online {
                continue;
            }
            let Some(delta) = self.peers[i].take_bloom_update() else {
                continue;
            };
            let from = PeerId(i as u32);
            let neighbors: Vec<PeerId> = self
                .graph
                .neighbors(from)
                .iter()
                .copied()
                .filter(|&n| self.graph.is_active(n))
                .collect();
            for n in neighbors {
                let message = Message::BloomDelta {
                    delta: delta.clone(),
                };
                self.send_background(ctx, from, n, message);
            }
        }
    }

    fn handle_churn(&mut self, event: ChurnEvent) {
        let peer = event.peer;
        if peer.index() >= self.peers.len() {
            return;
        }
        match event.kind {
            ChurnEventKind::Leave => {
                if !self.peers[peer.index()].online {
                    return;
                }
                let old_neighbors = self.graph.depart(peer);
                self.peers[peer.index()].online = false;
                for n in old_neighbors {
                    self.peers[n.index()].forget_neighbor(peer);
                }
            }
            ChurnEventKind::Join => {
                if self.peers[peer.index()].online {
                    return;
                }
                self.graph.rejoin(peer);
                self.peers[peer.index()].online = true;
                self.peers[peer.index()].reset_volatile_state();
                // Re-wire to `average_degree` random online peers.
                let degree = self.config.average_degree.round() as usize;
                let candidates: Vec<PeerId> = self
                    .graph
                    .active_peers()
                    .filter(|&p| p != peer)
                    .collect();
                let params =
                    locaware_bloom::BloomParams::new(self.config.bloom_bits, self.config.bloom_hashes);
                for _ in 0..degree.max(1) {
                    if candidates.is_empty() {
                        break;
                    }
                    let pick = candidates[self.churn_rng.gen_range(0..candidates.len())];
                    if self.graph.add_edge(peer, pick) {
                        let peer_gid = self.peers[peer.index()].gid;
                        let pick_gid = self.peers[pick.index()].gid;
                        self.peers[peer.index()].record_neighbor(pick, pick_gid, params);
                        self.peers[pick.index()].record_neighbor(peer, peer_gid, params);
                    }
                }
            }
        }
    }

    // --- helpers ---------------------------------------------------------------

    fn view(&self, peer: PeerId) -> PeerView<'_> {
        PeerView {
            state: &self.peers[peer.index()],
            graph: &self.graph,
            scheme: &self.scheme,
            catalog: self.catalog,
        }
    }

    /// Sends a query-related message, charging it to the query's traffic count.
    fn send(
        &mut self,
        ctx: &mut EngineContext<'_, Event>,
        from: PeerId,
        to: PeerId,
        message: Message,
        query: Option<QueryId>,
    ) {
        self.message_counts[kind_index(message.kind())] += 1;
        if let Some(query) = query {
            if let Some(tracking) = self.tracking.get_mut(&query) {
                tracking.messages += 1;
            }
        }
        let latency = self.link_latencies.latency(self.topology, from, to);
        ctx.schedule_in(latency, Event::Deliver { from, to, message });
    }

    /// Sends a background (non-query) message such as a Bloom update.
    fn send_background(
        &mut self,
        ctx: &mut EngineContext<'_, Event>,
        from: PeerId,
        to: PeerId,
        message: Message,
    ) {
        self.message_counts[kind_index(message.kind())] += 1;
        self.background_messages += 1;
        let latency = self.link_latencies.latency(self.topology, from, to);
        ctx.schedule_in(latency, Event::Deliver { from, to, message });
    }

    fn finalize(self, end_time: SimTime, dispatched_events: u64) -> SimulationReport {
        let mut records: Vec<(u64, QueryRecord)> = self
            .tracking
            .values()
            .map(|t| {
                (
                    t.index,
                    QueryRecord {
                        index: t.index,
                        requestor: t.origin.0,
                        outcome: if t.satisfied {
                            QueryOutcome::Satisfied
                        } else {
                            QueryOutcome::Unsatisfied
                        },
                        messages: t.messages,
                        download_distance_ms: t.download_distance_ms,
                        locality_match: t.locality_match,
                        providers_offered: t.providers_offered,
                        hops_to_hit: t.hops_to_hit,
                        answered_from_cache: t.answered_from_cache,
                    },
                )
            })
            .collect();
        records.sort_by_key(|(index, _)| *index);
        let mut metrics = RunMetrics::new();
        for (_, record) in records {
            metrics.push(record);
        }

        let total_replicas: usize = self.peers.iter().map(|p| p.shared_file_count()).sum();
        let total_cached: usize = self.peers.iter().map(|p| p.response_index.len()).sum();

        SimulationReport {
            protocol: self.protocol.kind(),
            queries_issued: self.queries_issued,
            metrics,
            message_counters: labelled_counters(&MESSAGE_KINDS, &self.message_counts),
            routing_decisions: labelled_counters(&FORWARD_DECISIONS, &self.decision_counts),
            background_messages: self.background_messages,
            total_file_replicas: total_replicas,
            total_cached_index_entries: total_cached,
            simulated_end_time_secs: end_time.as_secs_f64(),
            dispatched_events,
        }
    }
}

/// Every message kind with its report label, in tally-array index order.
const MESSAGE_KINDS: [(MessageKind, &str); 7] = [
    (MessageKind::Query, "query"),
    (MessageKind::QueryResponse, "query-response"),
    (MessageKind::BloomFull, "bloom-full"),
    (MessageKind::BloomDelta, "bloom-delta"),
    (MessageKind::GroupAnnounce, "group-announce"),
    (MessageKind::Ping, "ping"),
    (MessageKind::Pong, "pong"),
];

/// Every forwarding decision with its report label, in tally-array index order.
const FORWARD_DECISIONS: [(ForwardDecision, &str); 5] = [
    (ForwardDecision::Flood, "flood"),
    (ForwardDecision::BloomMatch, "bloom-match"),
    (ForwardDecision::GidMatch, "gid-match"),
    (ForwardDecision::HighDegree, "high-degree"),
    (ForwardDecision::NotForwarded, "not-forwarded"),
];

fn kind_index(kind: MessageKind) -> usize {
    match kind {
        MessageKind::Query => 0,
        MessageKind::QueryResponse => 1,
        MessageKind::BloomFull => 2,
        MessageKind::BloomDelta => 3,
        MessageKind::GroupAnnounce => 4,
        MessageKind::Ping => 5,
        MessageKind::Pong => 6,
    }
}

fn decision_index(decision: ForwardDecision) -> usize {
    match decision {
        ForwardDecision::Flood => 0,
        ForwardDecision::BloomMatch => 1,
        ForwardDecision::GidMatch => 2,
        ForwardDecision::HighDegree => 3,
        ForwardDecision::NotForwarded => 4,
    }
}

/// Converts a tally array into the labelled counter set reports carry.
/// Untouched labels are omitted, matching incremental `CounterSet` use.
fn labelled_counters<T: Copy>(
    table: &[(T, &'static str)],
    counts: &[u64],
) -> CounterSet<String> {
    let mut set = CounterSet::new();
    for ((_, label), &count) in table.iter().zip(counts) {
        if count > 0 {
            set.add(label.to_string(), count);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_tables_and_index_functions_agree() {
        for (i, &(kind, _)) in MESSAGE_KINDS.iter().enumerate() {
            assert_eq!(kind_index(kind), i, "MESSAGE_KINDS[{i}] out of order");
        }
        for (i, &(decision, _)) in FORWARD_DECISIONS.iter().enumerate() {
            assert_eq!(decision_index(decision), i, "FORWARD_DECISIONS[{i}] out of order");
        }
    }

    #[test]
    fn labelled_counters_omit_untouched_labels() {
        let mut counts = [0u64; MESSAGE_KINDS.len()];
        counts[kind_index(MessageKind::Query)] = 3;
        counts[kind_index(MessageKind::Pong)] = 1;
        let set = labelled_counters(&MESSAGE_KINDS, &counts);
        assert_eq!(set.len(), 2, "zero counters must not appear in reports");
        assert_eq!(set.get(&"query".to_string()), 3);
        assert_eq!(set.get(&"pong".to_string()), 1);
    }
}
