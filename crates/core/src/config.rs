//! Simulation configuration.
//!
//! [`SimulationConfig`] gathers every parameter of the paper's experimental
//! methodology (§5.1) with the paper's values as defaults, so
//! `SimulationConfig::paper_defaults()` is exactly the published setup and the
//! experiment binaries only override the number of queries and the protocol
//! under test.

use serde::{Deserialize, Serialize};

use locaware_net::brite::PlacementModel;
use locaware_overlay::{ChurnConfig, GraphModel};
use locaware_workload::{
    ArrivalSchedule, ClusterWeights, ClusterWeightsError, FaultConfig, FaultConfigError,
    ScheduleError, TimeoutPolicyError,
};

/// A structured description of why a [`SimulationConfig`] is inconsistent.
///
/// Returned by [`SimulationConfig::validate`] and
/// [`crate::Simulation::try_build`], and surfaced by
/// [`crate::experiment::ScenarioBuilder::build`]. Each variant carries the
/// offending values so callers can report or repair the configuration
/// programmatically instead of parsing an error string.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `peers == 0`.
    ZeroPeers,
    /// The average overlay degree is not in `(0, peers)`.
    DegreeOutOfRange {
        /// The configured average degree.
        average_degree: f64,
        /// The configured peer count.
        peers: usize,
    },
    /// `ttl == 0`: queries could never leave their origin.
    ZeroTtl,
    /// The latency range does not satisfy `0 < min <= max`.
    LatencyRange {
        /// Configured minimum one-way latency in milliseconds.
        min_ms: f64,
        /// Configured maximum one-way latency in milliseconds.
        max_ms: f64,
    },
    /// The landmark count is outside the supported `1..=8` range.
    LandmarksOutOfRange {
        /// The configured landmark count.
        landmarks: usize,
    },
    /// The file or keyword pool is empty.
    EmptyPools {
        /// Configured file pool size.
        file_pool: usize,
        /// Configured keyword pool size.
        keyword_pool: usize,
    },
    /// `keywords_per_file` is not in `1..=keyword_pool`.
    KeywordsPerFileOutOfRange {
        /// Configured keywords per filename.
        keywords_per_file: usize,
        /// Configured keyword pool size.
        keyword_pool: usize,
    },
    /// Peers are asked to share more distinct files than the pool contains.
    PlacementUnsatisfiable {
        /// Configured files initially shared per peer.
        files_per_peer: usize,
        /// Configured file pool size.
        file_pool: usize,
    },
    /// Query keyword bounds do not satisfy `1 <= min <= max <= keywords_per_file`.
    QueryKeywordBounds {
        /// Configured minimum query keywords.
        min: usize,
        /// Configured maximum query keywords.
        max: usize,
        /// Configured keywords per filename.
        keywords_per_file: usize,
    },
    /// The per-peer query rate is not positive and finite.
    NonPositiveQueryRate {
        /// The configured rate in queries per second per peer.
        rate_per_peer: f64,
    },
    /// The arrival schedule is degenerate (empty phase list, non-positive
    /// multiplier, zero-length or negative segment, bad burst start).
    ArrivalSchedule(ScheduleError),
    /// The workload cluster weights are unusable for this population.
    ClusterWeights(ClusterWeightsError),
    /// Under weighted-cluster placement, the heaviest cluster would ask a
    /// peer to share more distinct files than the pool contains.
    WeightedPlacementUnsatisfiable {
        /// The largest per-peer share count the weights produce.
        max_files_on_a_peer: usize,
        /// Configured file pool size.
        file_pool: usize,
    },
    /// The caching/routing group count `M` is zero.
    ZeroGroupCount,
    /// A cache capacity (response index, providers per file, providers per
    /// response) is zero.
    ZeroCacheCapacity,
    /// A Bloom filter parameter (bits or hash count) is zero.
    ZeroBloomParameters,
    /// The neighbour Bloom-filter synchronisation period is not positive.
    NonPositiveBloomSyncPeriod {
        /// The configured period in simulated seconds.
        period_secs: f64,
    },
    /// The worst-case query lifetime — `ttl` query hops out plus `ttl`
    /// response hops back, each up to `max_latency_ms` — does not fit the
    /// microsecond simulation clock. Engine time arithmetic saturates
    /// silently on such spans, so the configuration is rejected up front.
    QueryLifetimeOverflow {
        /// The configured query time-to-live in hops.
        ttl: u32,
        /// Configured maximum one-way latency in milliseconds.
        max_latency_ms: f64,
    },
    /// A structural DHT parameter (replication factor `k`, lookup parallelism
    /// `alpha`, or the lookup hop budget) is zero.
    ZeroDhtParameters,
    /// The DHT record byte cap cannot hold even a single provider entry, so
    /// every store would truncate to nothing.
    DhtRecordBytesTooSmall {
        /// The configured per-record byte cap.
        max_record_bytes: usize,
        /// The smallest cap that holds one entry.
        minimum: usize,
    },
    /// A DHT period (record TTL or republish interval) is not positive and
    /// finite.
    NonPositiveDhtPeriod {
        /// The offending period in simulated seconds.
        period_secs: f64,
    },
    /// The hybrid protocol's head fraction is outside `[0, 1]`.
    DhtHeadFractionOutOfRange {
        /// The configured fraction.
        head_fraction: f64,
    },
    /// The fault plan is inconsistent (loss probability outside `[0, 1]`,
    /// degenerate outage window, negative step timeout).
    FaultConfig(FaultConfigError),
    /// The query retransmit policy is inconsistent (negative initial timeout,
    /// non-finite or sub-unit backoff, unrepresentable retry span).
    TimeoutPolicy(TimeoutPolicyError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroPeers => write!(f, "peers must be positive"),
            ConfigError::DegreeOutOfRange { average_degree, peers } => write!(
                f,
                "average degree must be in (0, peers): got {average_degree} with {peers} peers"
            ),
            ConfigError::ZeroTtl => write!(f, "ttl must be at least 1"),
            ConfigError::LatencyRange { min_ms, max_ms } => write!(
                f,
                "latency range must satisfy 0 < min <= max: got [{min_ms}, {max_ms}] ms"
            ),
            ConfigError::LandmarksOutOfRange { landmarks } => {
                write!(f, "landmarks must be in 1..=8: got {landmarks}")
            }
            ConfigError::EmptyPools { file_pool, keyword_pool } => write!(
                f,
                "file and keyword pools must be non-empty: got {file_pool} files, {keyword_pool} keywords"
            ),
            ConfigError::KeywordsPerFileOutOfRange { keywords_per_file, keyword_pool } => write!(
                f,
                "keywords per file must be in 1..=keyword_pool: got {keywords_per_file} of {keyword_pool}"
            ),
            ConfigError::PlacementUnsatisfiable { files_per_peer, file_pool } => write!(
                f,
                "files per peer cannot exceed the file pool: got {files_per_peer} of {file_pool}"
            ),
            ConfigError::QueryKeywordBounds { min, max, keywords_per_file } => write!(
                f,
                "query keyword bounds must satisfy 1 <= min <= max <= keywords_per_file: \
                 got {min}..={max} with {keywords_per_file} keywords per file"
            ),
            ConfigError::NonPositiveQueryRate { rate_per_peer } => {
                write!(f, "query rate must be positive and finite: got {rate_per_peer}")
            }
            ConfigError::ArrivalSchedule(error) => write!(f, "arrival schedule: {error}"),
            ConfigError::ClusterWeights(error) => write!(f, "cluster weights: {error}"),
            ConfigError::WeightedPlacementUnsatisfiable { max_files_on_a_peer, file_pool } => {
                write!(
                    f,
                    "weighted placement asks one peer for {max_files_on_a_peer} distinct files \
                     of a {file_pool}-file pool"
                )
            }
            ConfigError::ZeroGroupCount => write!(f, "group count M must be positive"),
            ConfigError::ZeroCacheCapacity => write!(f, "cache capacities must be positive"),
            ConfigError::ZeroBloomParameters => {
                write!(f, "Bloom filter parameters must be positive")
            }
            ConfigError::QueryLifetimeOverflow { ttl, max_latency_ms } => write!(
                f,
                "worst-case query lifetime 2 x {ttl} hops x {max_latency_ms} ms \
                 overflows the microsecond simulation clock"
            ),
            ConfigError::NonPositiveBloomSyncPeriod { period_secs } => {
                write!(f, "Bloom sync period must be positive: got {period_secs}s")
            }
            ConfigError::ZeroDhtParameters => {
                write!(f, "DHT k, alpha and max lookup hops must be positive")
            }
            ConfigError::DhtRecordBytesTooSmall { max_record_bytes, minimum } => write!(
                f,
                "DHT record byte cap must hold at least one entry: got {max_record_bytes}, \
                 need at least {minimum}"
            ),
            ConfigError::NonPositiveDhtPeriod { period_secs } => {
                write!(f, "DHT periods must be positive and finite: got {period_secs}s")
            }
            ConfigError::DhtHeadFractionOutOfRange { head_fraction } => write!(
                f,
                "hybrid head fraction must be in [0, 1]: got {head_fraction}"
            ),
            ConfigError::FaultConfig(error) => write!(f, "fault plan: {error}"),
            ConfigError::TimeoutPolicy(error) => write!(f, "timeout policy: {error}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which protocol a run evaluates (the four curves of Figures 2–4, plus
/// ablation variants of Locaware used by the ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Gnutella-style blind flooding, no index caching (baseline of Figure 3/4).
    Flooding,
    /// Dicas: group-based index caching and routing keyed on the full filename.
    Dicas,
    /// Dicas-Keys: the Dicas variant hashing query keywords instead of the
    /// filename (the paper's keyword-search comparator).
    DicasKeys,
    /// Locaware: location-aware index caching with Bloom-filter keyword routing
    /// (the paper's contribution).
    Locaware,
    /// Ablation: Locaware without location-aware provider selection (providers
    /// are chosen uniformly at random among those offered).
    LocawareNoLocality,
    /// Ablation: Locaware without Bloom-filter routing (falls back to Gid-based
    /// routing only, like Dicas-Keys, but keeps the richer response index).
    LocawareNoBloom,
    /// Structured baseline: a Kademlia-style keyword→providers DHT. Queries
    /// resolve by iterative XOR-metric lookup instead of overlay forwarding;
    /// file keywords are published on placement and download and republished
    /// on a TTL.
    DhtIndex,
    /// Hybrid: the paper's own Zipf head/tail split — popular (head) targets
    /// use Locaware's caching overlay, rare (tail) targets resolve through
    /// the DHT index.
    Hybrid,
}

impl ProtocolKind {
    /// The four protocols compared in the paper's figures, in the order the
    /// paper lists them.
    pub const PAPER_SET: [ProtocolKind; 4] = [
        ProtocolKind::Locaware,
        ProtocolKind::Flooding,
        ProtocolKind::Dicas,
        ProtocolKind::DicasKeys,
    ];

    /// Every implemented protocol, in a stable order: the single source of
    /// truth for tests, benches and examples that enumerate protocols, so a
    /// new kind is a one-line addition here rather than a hunt across the
    /// repository.
    pub const ALL: [ProtocolKind; 8] = [
        ProtocolKind::Flooding,
        ProtocolKind::Dicas,
        ProtocolKind::DicasKeys,
        ProtocolKind::Locaware,
        ProtocolKind::LocawareNoLocality,
        ProtocolKind::LocawareNoBloom,
        ProtocolKind::DhtIndex,
        ProtocolKind::Hybrid,
    ];

    /// [`ProtocolKind::ALL`] as a slice (convenient for iteration).
    pub fn all() -> &'static [ProtocolKind] {
        &Self::ALL
    }

    /// Parses a [`ProtocolKind::label`] back into its kind.
    pub fn from_label(label: &str) -> Option<ProtocolKind> {
        Self::ALL.into_iter().find(|kind| kind.label() == label)
    }

    /// True for the structured protocols that run the DHT subsystem.
    pub fn uses_dht(self) -> bool {
        matches!(self, ProtocolKind::DhtIndex | ProtocolKind::Hybrid)
    }

    /// A short label used in figures and reports.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Flooding => "flooding",
            ProtocolKind::Dicas => "dicas",
            ProtocolKind::DicasKeys => "dicas-keys",
            ProtocolKind::Locaware => "locaware",
            ProtocolKind::LocawareNoLocality => "locaware-no-locality",
            ProtocolKind::LocawareNoBloom => "locaware-no-bloom",
            ProtocolKind::DhtIndex => "dht-index",
            ProtocolKind::Hybrid => "hybrid",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of the Kademlia-style keyword-index DHT (the structured
/// protocols' subsystem). Defaults follow the original Kademlia paper where
/// it gives values (`alpha = 3`) and common deployments elsewhere, scaled to
/// the simulated population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DhtConfig {
    /// Replication factor and bucket size `k`: each record lives on the `k`
    /// nodes closest to its key, and each routing-table bucket keeps up to
    /// `k` contacts. Kademlia deployments use 20 at million-node scale; 8 is
    /// proportionate for a 1000-peer population.
    pub k: usize,
    /// Lookup parallelism `alpha`: how many closest contacts an iterative
    /// lookup keeps in flight (Kademlia's tuned value is 3).
    pub alpha: usize,
    /// Byte cap per keyword record; stores beyond it deterministically evict
    /// the stalest provider entries (the paper's index-size pressure, moved
    /// into the DHT).
    pub max_record_bytes: usize,
    /// Lifetime of a stored provider entry in simulated seconds. Entries
    /// older than this are filtered from lookups and garbage-collected at
    /// republish rounds. Should exceed the republish period so live entries
    /// never lapse between rounds.
    pub record_ttl_secs: f64,
    /// Period of the publisher-driven republish process in simulated seconds
    /// (Kademlia republishes hourly; 900 s keeps a few rounds inside the
    /// default experiment horizon).
    pub republish_period_secs: f64,
    /// Upper bound on iterative lookup depth, in hops. A safety valve only:
    /// converged lookups terminate well below it (`O(log n)`).
    pub max_lookup_hops: u32,
    /// The hybrid protocol's head/tail split: targets in the most popular
    /// `head_fraction` of the catalog resolve through the Locaware caching
    /// overlay, the rest through the DHT. `0.0` makes hybrid pure DHT,
    /// `1.0` pure overlay.
    pub hybrid_head_fraction: f64,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            k: 8,
            alpha: 3,
            max_record_bytes: 2048,
            record_ttl_secs: 1800.0,
            republish_period_secs: 900.0,
            max_lookup_hops: 15,
            hybrid_head_fraction: 0.1,
        }
    }
}

/// Every knob of the simulated system, defaulting to the paper's §5.1 values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Master seed from which every random stream is derived.
    pub seed: u64,

    // --- population & overlay -------------------------------------------------
    /// Number of peers (paper: 1000).
    pub peers: usize,
    /// Average overlay degree (paper: 3).
    pub average_degree: f64,
    /// Overlay wiring model (paper: random).
    pub graph_model: GraphModel,
    /// Query TTL (paper: 7).
    pub ttl: u32,

    // --- physical underlay -----------------------------------------------------
    /// Minimum one-way link latency in milliseconds (paper: 10).
    pub min_latency_ms: f64,
    /// Maximum one-way link latency in milliseconds (paper: 500).
    pub max_latency_ms: f64,
    /// Physical placement model (clustered placement gives the regional
    /// structure that makes landmark binning meaningful).
    pub placement: PlacementModel,
    /// Number of landmarks (paper: 4, giving 24 locIds).
    pub landmarks: usize,

    // --- content & workload ----------------------------------------------------
    /// Size of the file pool (paper: 3000).
    pub file_pool: usize,
    /// Size of the keyword pool (paper: 9000).
    pub keyword_pool: usize,
    /// Keywords per filename (paper: 3).
    pub keywords_per_file: usize,
    /// Files initially shared per peer (paper: 3).
    pub files_per_peer: usize,
    /// Zipf exponent of query popularity (paper: "Zipf distribution"; Gnutella
    /// traces suggest ≈1).
    pub zipf_exponent: f64,
    /// Minimum query keywords (paper: 1).
    pub min_query_keywords: usize,
    /// Maximum query keywords (paper: 3).
    pub max_query_keywords: usize,
    /// Base per-peer query rate in queries/second (paper: 0.00083).
    pub query_rate_per_peer: f64,
    /// Rate profile modulating the base rate over time (default:
    /// [`ArrivalSchedule::Steady`], the paper's homogeneous process — which
    /// reproduces legacy runs bit-for-bit).
    pub arrival_schedule: ArrivalSchedule,
    /// Optional weighted-cluster concentration of the workload: the same
    /// weights redistribute the initial share budget across contiguous
    /// locality-sorted peer clusters *and* bias query-origin attribution, so
    /// hotspot regimes concentrate storage and load on the same region.
    /// `None` is the paper's uniform workload, reproduced draw-for-draw.
    pub cluster_weights: Option<ClusterWeights>,

    // --- caching ---------------------------------------------------------------
    /// Group count `M` for the `hash(f) mod M` caching/routing rule. The paper
    /// inherits the parameter from Dicas without stating its evaluated value;
    /// 4 keeps roughly a quarter of the peers eligible per file, matching the
    /// Dicas paper's small-M regime.
    pub group_count: u32,
    /// Response-index capacity in distinct filenames (paper sizes the Bloom
    /// filter for 50).
    pub response_index_capacity: usize,
    /// Maximum provider entries kept per cached filename (Locaware caches
    /// "several indexes per file"; Dicas keeps 1 by construction).
    pub max_providers_per_file: usize,
    /// Maximum provider entries returned in one query response.
    pub max_providers_per_response: usize,

    // --- Bloom filters ---------------------------------------------------------
    /// Bloom filter size in bits (paper: 1200).
    pub bloom_bits: usize,
    /// Bloom hash probes per keyword.
    pub bloom_hashes: usize,
    /// Period of the neighbour Bloom-filter synchronisation process, in
    /// seconds of simulated time.
    pub bloom_sync_period_secs: f64,

    // --- structured index (only read by the DHT-backed protocols) ---------------
    /// Parameters of the Kademlia-style keyword-index DHT that the
    /// [`ProtocolKind::DhtIndex`] and [`ProtocolKind::Hybrid`] protocols run.
    /// Ignored entirely by the six unstructured protocols, so legacy runs and
    /// their fingerprints are untouched.
    pub dht: DhtConfig,

    // --- churn (off by default; the paper's evaluation is static) ---------------
    /// Churn model parameters.
    pub churn: ChurnConfig,
    /// When true, a churn departure proactively invalidates the departed
    /// provider's entries in **every** online peer's response index (and the
    /// Bloom filters tracking them), via the provider → files postings map.
    /// Off by default: the paper (and every prior run of this reproduction)
    /// invalidates lazily, filtering departed providers at selection time, so
    /// existing fingerprints hold exactly.
    pub proactive_provider_invalidation: bool,

    // --- faults (off by default; the paper's network is perfectly reliable) -----
    /// The fault plan: deterministic per-message loss, transient link
    /// outages, crash-stop departures, and the timeout/retry policies
    /// protocols use to survive them. [`FaultConfig::disabled`] (the
    /// default) injects nothing and schedules nothing, so fault-free runs
    /// stay byte-identical to every prior fingerprint.
    pub faults: FaultConfig,

    // --- execution -------------------------------------------------------------
    /// Number of engine shards (deterministic intra-run parallelism).
    ///
    /// Peers are deterministically partitioned into this many shards; each
    /// shard drains its local events in parallel over bounded time windows and
    /// cross-shard messages are merged at window barriers in a canonical
    /// order, so **any** shard count produces bit-identical reports for the
    /// same seed. `0` means "auto": take the `LOCAWARE_SHARDS` environment
    /// variable if set (read once per process), else run single-sharded.
    /// Values are clamped to `1..=peers` at run time.
    pub shards: usize,

    // --- safety ---------------------------------------------------------------
    /// Upper bound on dispatched events per run (guards against event storms).
    pub max_events: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

impl SimulationConfig {
    /// The configuration of §5.1 of the paper.
    pub fn paper_defaults() -> Self {
        SimulationConfig {
            seed: 0x10ca_aa2e,
            peers: 1000,
            average_degree: 3.0,
            graph_model: GraphModel::Random,
            ttl: 7,
            min_latency_ms: 10.0,
            max_latency_ms: 500.0,
            placement: PlacementModel::Clustered {
                clusters: 24,
                sigma: 0.03,
            },
            landmarks: 4,
            file_pool: 3000,
            keyword_pool: 9000,
            keywords_per_file: 3,
            files_per_peer: 3,
            zipf_exponent: 1.0,
            min_query_keywords: 1,
            max_query_keywords: 3,
            query_rate_per_peer: 0.00083,
            arrival_schedule: ArrivalSchedule::Steady,
            cluster_weights: None,
            group_count: 4,
            response_index_capacity: 50,
            max_providers_per_file: 5,
            max_providers_per_response: 5,
            bloom_bits: 1200,
            bloom_hashes: 5,
            bloom_sync_period_secs: 60.0,
            dht: DhtConfig::default(),
            shards: 0,
            churn: ChurnConfig::disabled(),
            proactive_provider_invalidation: false,
            faults: FaultConfig::disabled(),
            max_events: 200_000_000,
        }
    }

    /// A scaled-down configuration (fewer peers and files) that keeps every
    /// ratio of the paper's setup; used by unit/integration tests and the
    /// quickstart example so they run in milliseconds.
    pub fn small(peers: usize) -> Self {
        let scale = peers as f64 / 1000.0;
        let file_pool = ((3000.0 * scale).round() as usize).max(30);
        SimulationConfig {
            peers,
            file_pool,
            keyword_pool: (file_pool * 3).max(60),
            ..Self::paper_defaults()
        }
    }

    /// The shard count a run of this configuration actually uses: the
    /// explicit [`SimulationConfig::shards`] value if positive, otherwise the
    /// `LOCAWARE_SHARDS` environment variable (read once per process),
    /// otherwise 1 — always clamped to `1..=peers`.
    pub fn effective_shards(&self) -> usize {
        let requested = if self.shards > 0 {
            self.shards
        } else {
            env_default_shards()
        };
        requested.clamp(1, self.peers.max(1))
    }

    /// The workload-layer arrival configuration this simulation runs:
    /// population, base rate, schedule and origin weights in one place, so
    /// the substrate builder and the validation logic cannot drift apart.
    pub fn arrival_config(&self) -> locaware_workload::ArrivalConfig {
        locaware_workload::ArrivalConfig {
            peers: self.peers,
            rate_per_peer: self.query_rate_per_peer,
            schedule: self.arrival_schedule.clone(),
            origin_weights: self.cluster_weights.clone(),
        }
    }

    /// Validates internal consistency; returns a structured [`ConfigError`]
    /// for the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.peers == 0 {
            return Err(ConfigError::ZeroPeers);
        }
        if self.average_degree <= 0.0 || self.average_degree as usize >= self.peers {
            return Err(ConfigError::DegreeOutOfRange {
                average_degree: self.average_degree,
                peers: self.peers,
            });
        }
        if self.ttl == 0 {
            return Err(ConfigError::ZeroTtl);
        }
        if self.min_latency_ms <= 0.0 || self.max_latency_ms < self.min_latency_ms {
            return Err(ConfigError::LatencyRange {
                min_ms: self.min_latency_ms,
                max_ms: self.max_latency_ms,
            });
        }
        let worst_case_lifetime_ms = 2.0 * self.ttl as f64 * self.max_latency_ms;
        if locaware_sim::Duration::try_from_millis_f64(worst_case_lifetime_ms).is_none() {
            return Err(ConfigError::QueryLifetimeOverflow {
                ttl: self.ttl,
                max_latency_ms: self.max_latency_ms,
            });
        }
        if self.landmarks == 0 || self.landmarks > 8 {
            return Err(ConfigError::LandmarksOutOfRange { landmarks: self.landmarks });
        }
        if self.file_pool == 0 || self.keyword_pool == 0 {
            return Err(ConfigError::EmptyPools {
                file_pool: self.file_pool,
                keyword_pool: self.keyword_pool,
            });
        }
        if self.keywords_per_file == 0 || self.keywords_per_file > self.keyword_pool {
            return Err(ConfigError::KeywordsPerFileOutOfRange {
                keywords_per_file: self.keywords_per_file,
                keyword_pool: self.keyword_pool,
            });
        }
        if self.files_per_peer > self.file_pool {
            return Err(ConfigError::PlacementUnsatisfiable {
                files_per_peer: self.files_per_peer,
                file_pool: self.file_pool,
            });
        }
        if self.min_query_keywords == 0
            || self.min_query_keywords > self.max_query_keywords
            || self.max_query_keywords > self.keywords_per_file
        {
            return Err(ConfigError::QueryKeywordBounds {
                min: self.min_query_keywords,
                max: self.max_query_keywords,
                keywords_per_file: self.keywords_per_file,
            });
        }
        if self.query_rate_per_peer <= 0.0 || !self.query_rate_per_peer.is_finite() {
            return Err(ConfigError::NonPositiveQueryRate {
                rate_per_peer: self.query_rate_per_peer,
            });
        }
        self.arrival_schedule
            .validate()
            .map_err(ConfigError::ArrivalSchedule)?;
        if let Some(weights) = &self.cluster_weights {
            weights
                .validate_for(self.peers)
                .map_err(ConfigError::ClusterWeights)?;
            let max_share = weights.max_share_count(self.peers, self.files_per_peer);
            if max_share > self.file_pool {
                return Err(ConfigError::WeightedPlacementUnsatisfiable {
                    max_files_on_a_peer: max_share,
                    file_pool: self.file_pool,
                });
            }
        }
        if self.group_count == 0 {
            return Err(ConfigError::ZeroGroupCount);
        }
        if self.response_index_capacity == 0
            || self.max_providers_per_file == 0
            || self.max_providers_per_response == 0
        {
            return Err(ConfigError::ZeroCacheCapacity);
        }
        if self.bloom_bits == 0 || self.bloom_hashes == 0 {
            return Err(ConfigError::ZeroBloomParameters);
        }
        if self.bloom_sync_period_secs <= 0.0 {
            return Err(ConfigError::NonPositiveBloomSyncPeriod {
                period_secs: self.bloom_sync_period_secs,
            });
        }
        if self.dht.k == 0 || self.dht.alpha == 0 || self.dht.max_lookup_hops == 0 {
            return Err(ConfigError::ZeroDhtParameters);
        }
        let min_record_bytes =
            locaware_overlay::dht::RECORD_KEY_BYTES + locaware_overlay::dht::RECORD_ENTRY_BYTES;
        if self.dht.max_record_bytes < min_record_bytes {
            return Err(ConfigError::DhtRecordBytesTooSmall {
                max_record_bytes: self.dht.max_record_bytes,
                minimum: min_record_bytes,
            });
        }
        for period in [self.dht.record_ttl_secs, self.dht.republish_period_secs] {
            if period <= 0.0 || !period.is_finite() {
                return Err(ConfigError::NonPositiveDhtPeriod { period_secs: period });
            }
        }
        if !(0.0..=1.0).contains(&self.dht.hybrid_head_fraction) {
            return Err(ConfigError::DhtHeadFractionOutOfRange {
                head_fraction: self.dht.hybrid_head_fraction,
            });
        }
        self.faults.validate().map_err(ConfigError::FaultConfig)?;
        self.faults
            .query_timeout
            .validate()
            .map_err(ConfigError::TimeoutPolicy)?;
        Ok(())
    }
}

/// The process-wide `LOCAWARE_SHARDS` default, read once: reading it per call
/// would let a mid-run environment change split one experiment across two
/// shard counts (harmless for results — every count is bit-identical — but
/// confusing for performance analysis).
fn env_default_shards() -> usize {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("LOCAWARE_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = SimulationConfig::paper_defaults();
        assert_eq!(c.peers, 1000);
        assert_eq!(c.average_degree, 3.0);
        assert_eq!(c.ttl, 7);
        assert_eq!(c.min_latency_ms, 10.0);
        assert_eq!(c.max_latency_ms, 500.0);
        assert_eq!(c.landmarks, 4);
        assert_eq!(c.file_pool, 3000);
        assert_eq!(c.keyword_pool, 9000);
        assert_eq!(c.keywords_per_file, 3);
        assert_eq!(c.files_per_peer, 3);
        assert_eq!(c.min_query_keywords, 1);
        assert_eq!(c.max_query_keywords, 3);
        assert!((c.query_rate_per_peer - 0.00083).abs() < 1e-12);
        assert_eq!(c.response_index_capacity, 50);
        assert_eq!(c.bloom_bits, 1200);
        assert!(c.churn.is_disabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn small_config_keeps_ratios_and_validates() {
        let c = SimulationConfig::small(100);
        assert_eq!(c.peers, 100);
        assert_eq!(c.file_pool, 300);
        assert_eq!(c.keyword_pool, 900);
        assert!(c.validate().is_ok());
        let tiny = SimulationConfig::small(10);
        assert!(tiny.validate().is_ok());
        assert!(tiny.file_pool >= 30);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = SimulationConfig::paper_defaults();
        c.peers = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroPeers));

        let mut c = SimulationConfig::paper_defaults();
        c.ttl = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroTtl));

        let mut c = SimulationConfig::paper_defaults();
        c.max_latency_ms = 1.0;
        assert!(matches!(c.validate(), Err(ConfigError::LatencyRange { .. })));

        let mut c = SimulationConfig::paper_defaults();
        c.min_query_keywords = 5;
        assert!(matches!(c.validate(), Err(ConfigError::QueryKeywordBounds { .. })));

        let mut c = SimulationConfig::paper_defaults();
        c.group_count = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroGroupCount));

        let mut c = SimulationConfig::paper_defaults();
        c.landmarks = 9;
        assert_eq!(c.validate(), Err(ConfigError::LandmarksOutOfRange { landmarks: 9 }));
    }

    #[test]
    fn unrepresentable_query_lifetimes_are_rejected_up_front() {
        // 2 * ttl * max_latency_ms used to be converted with the saturating
        // `Duration::from_millis_f64`, so absurd products silently clamped to
        // the end of simulated time instead of failing validation.
        let mut c = SimulationConfig::paper_defaults();
        c.ttl = u32::MAX;
        c.max_latency_ms = f64::MAX / 2.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::QueryLifetimeOverflow {
                ttl: u32::MAX,
                max_latency_ms: f64::MAX / 2.0,
            })
        );

        // A large-but-representable product still validates.
        let mut c = SimulationConfig::paper_defaults();
        c.ttl = 1_000;
        c.max_latency_ms = 1.0e9;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn arrival_validation_is_hoisted_into_the_typed_config_error() {
        // A non-finite rate used to slip past validation and panic inside
        // `ArrivalProcess::new`; now it fails fallibly up front.
        let mut c = SimulationConfig::paper_defaults();
        c.query_rate_per_peer = f64::NAN;
        assert!(matches!(c.validate(), Err(ConfigError::NonPositiveQueryRate { .. })));

        let mut c = SimulationConfig::paper_defaults();
        c.arrival_schedule = ArrivalSchedule::Phases(Vec::new());
        assert_eq!(
            c.validate(),
            Err(ConfigError::ArrivalSchedule(ScheduleError::EmptyPhases))
        );

        let mut c = SimulationConfig::paper_defaults();
        c.arrival_schedule = ArrivalSchedule::Burst {
            multiplier: 25.0,
            start_secs: 60.0,
            duration_secs: 0.0,
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ArrivalSchedule(ScheduleError::InvalidDuration { .. }))
        ));

        let mut c = SimulationConfig::paper_defaults();
        c.cluster_weights = Some(ClusterWeights::new(vec![1.0; 2000]).unwrap());
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ClusterWeights(ClusterWeightsError::MoreClustersThanPeers { .. }))
        ));

        // A 1000:1 weight skew over a small pool cannot give every
        // hot-cluster peer enough distinct files: a 2000-copy budget lands
        // almost entirely on 50 peers (~40 each) against a 30-file pool.
        let mut c = SimulationConfig::small(100);
        c.file_pool = 30;
        c.keyword_pool = 90;
        c.files_per_peer = 20;
        c.cluster_weights = Some(ClusterWeights::new(vec![1000.0, 1.0]).unwrap());
        assert!(matches!(
            c.validate(),
            Err(ConfigError::WeightedPlacementUnsatisfiable { .. })
        ));
    }

    #[test]
    fn arrival_config_mirrors_the_simulation_config() {
        let mut c = SimulationConfig::small(80);
        c.arrival_schedule = ArrivalSchedule::Burst {
            multiplier: 10.0,
            start_secs: 30.0,
            duration_secs: 60.0,
        };
        c.cluster_weights = Some(ClusterWeights::new(vec![3.0, 1.0]).unwrap());
        let arrival = c.arrival_config();
        assert_eq!(arrival.peers, 80);
        assert_eq!(arrival.rate_per_peer, c.query_rate_per_peer);
        assert_eq!(arrival.schedule, c.arrival_schedule);
        assert_eq!(arrival.origin_weights, c.cluster_weights);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_errors_display_their_constraint_and_values() {
        let mut c = SimulationConfig::paper_defaults();
        c.average_degree = 2000.0;
        let err = c.validate().unwrap_err();
        let message = err.to_string();
        assert!(message.contains("degree"), "{message}");
        assert!(message.contains("2000"), "{message}");

        // ConfigError is a real std error, usable with `?` and `Box<dyn Error>`.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("peers"));
    }

    #[test]
    fn effective_shards_clamps_to_the_population() {
        let mut c = SimulationConfig::small(10);
        c.shards = 4;
        assert_eq!(c.effective_shards(), 4);
        c.shards = 64;
        assert_eq!(c.effective_shards(), 10, "more shards than peers is clamped");
        c.peers = 2;
        assert_eq!(c.effective_shards(), 2);
        // shards = 0 resolves through the process default, which is >= 1.
        c.shards = 0;
        assert!(c.effective_shards() >= 1);
        assert!(c.effective_shards() <= c.peers);
    }

    #[test]
    fn protocol_labels_are_stable() {
        assert_eq!(ProtocolKind::Locaware.label(), "locaware");
        assert_eq!(ProtocolKind::Flooding.to_string(), "flooding");
        assert_eq!(ProtocolKind::DhtIndex.label(), "dht-index");
        assert_eq!(ProtocolKind::Hybrid.label(), "hybrid");
        assert_eq!(ProtocolKind::PAPER_SET.len(), 4);
    }

    #[test]
    fn protocol_all_enumerates_every_kind_with_unique_labels() {
        let labels: std::collections::BTreeSet<&str> =
            ProtocolKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ProtocolKind::ALL.len(), "duplicate labels");
        for kind in ProtocolKind::PAPER_SET {
            assert!(ProtocolKind::ALL.contains(&kind), "PAPER_SET ⊄ ALL");
        }
        for &kind in ProtocolKind::all() {
            assert_eq!(ProtocolKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(ProtocolKind::from_label("no-such-protocol"), None);
        assert!(ProtocolKind::DhtIndex.uses_dht());
        assert!(ProtocolKind::Hybrid.uses_dht());
        assert!(!ProtocolKind::Locaware.uses_dht());
    }

    #[test]
    fn fault_validation_catches_inconsistencies() {
        use locaware_workload::{OutageWindow, TimeoutPolicy};

        // The default plan is disabled and valid.
        let c = SimulationConfig::paper_defaults();
        assert!(c.faults.is_disabled());
        assert!(c.validate().is_ok());

        let mut c = SimulationConfig::paper_defaults();
        c.faults.message_loss = -0.1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FaultConfig(FaultConfigError::InvalidLossProbability { .. }))
        ));

        let mut c = SimulationConfig::paper_defaults();
        c.faults.message_loss = 1.01;
        assert!(matches!(c.validate(), Err(ConfigError::FaultConfig(_))));

        let mut c = SimulationConfig::paper_defaults();
        c.faults.outages.push(OutageWindow {
            start_secs: 100.0,
            duration_secs: -5.0,
            fraction: 0.5,
        });
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FaultConfig(FaultConfigError::InvalidOutageDuration { .. }))
        ));

        let mut c = SimulationConfig::paper_defaults();
        c.faults.outages.push(OutageWindow {
            start_secs: 1.0e300,
            duration_secs: 1.0e300,
            fraction: 0.5,
        });
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FaultConfig(FaultConfigError::OutageBeyondClock { .. }))
        ));

        let mut c = SimulationConfig::paper_defaults();
        c.faults.query_timeout = TimeoutPolicy {
            initial_secs: 10.0,
            backoff: f64::NAN,
            max_retries: 2,
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::TimeoutPolicy(TimeoutPolicyError::InvalidBackoff { .. }))
        ));

        let mut c = SimulationConfig::paper_defaults();
        c.faults.dht_step_timeout_secs = f64::INFINITY;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FaultConfig(FaultConfigError::InvalidStepTimeout { .. }))
        ));

        // A sane faulty plan passes validation.
        let mut c = SimulationConfig::paper_defaults();
        c.faults.message_loss = 0.05;
        c.faults.crash_stop = true;
        c.faults.query_timeout = TimeoutPolicy {
            initial_secs: 8.0,
            backoff: 2.0,
            max_retries: 2,
        };
        c.faults.dht_step_timeout_secs = 3.0;
        assert!(!c.faults.is_disabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn dht_validation_catches_inconsistencies() {
        let mut c = SimulationConfig::paper_defaults();
        c.dht.k = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroDhtParameters));

        let mut c = SimulationConfig::paper_defaults();
        c.dht.alpha = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroDhtParameters));

        let mut c = SimulationConfig::paper_defaults();
        c.dht.max_record_bytes = 10;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::DhtRecordBytesTooSmall { max_record_bytes: 10, .. })
        ));

        let mut c = SimulationConfig::paper_defaults();
        c.dht.republish_period_secs = 0.0;
        assert!(matches!(c.validate(), Err(ConfigError::NonPositiveDhtPeriod { .. })));

        let mut c = SimulationConfig::paper_defaults();
        c.dht.record_ttl_secs = f64::INFINITY;
        assert!(matches!(c.validate(), Err(ConfigError::NonPositiveDhtPeriod { .. })));

        let mut c = SimulationConfig::paper_defaults();
        c.dht.hybrid_head_fraction = 1.5;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::DhtHeadFractionOutOfRange { .. })
        ));
    }
}
