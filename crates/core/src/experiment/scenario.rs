//! Named, validated simulation scenarios.
//!
//! A [`Scenario`] is a [`SimulationConfig`] that has already passed
//! validation, plus a stable name used to label experiment output. Scenarios
//! are the only inputs the [`Runner`](crate::experiment::Runner) accepts, so
//! every substrate an experiment builds is known-consistent *by type*: the
//! fallible step is [`ScenarioBuilder::build`], which returns a
//! [`ConfigError`] instead of panicking deep inside substrate construction.
//!
//! Beyond the paper's own setup ([`Scenario::paper_defaults`]) and its scaled
//! miniature ([`Scenario::small`]), three extension regimes stress the cases
//! the search-and-replication literature flags for unstructured overlays:
//! [`Scenario::flash_crowd`], [`Scenario::churn_storm`] and
//! [`Scenario::regional_hotspot`]. Each is seeded, documented and
//! deterministic: the same preset always describes the same system.

use locaware_net::brite::PlacementModel;
use locaware_overlay::ChurnConfig;
use locaware_workload::{
    ArrivalSchedule, ClusterWeights, FaultConfig, OutageWindow, TimeoutPolicy,
};

use crate::config::{ConfigError, SimulationConfig};
use crate::simulation::Simulation;

/// How far above the paper's steady per-peer query rate the
/// [`Scenario::flash_crowd`] regime bursts while its burst window is open.
pub const FLASH_CROWD_RATE_MULTIPLIER: f64 = 25.0;

/// When the [`Scenario::flash_crowd`] burst opens, in simulated seconds: a
/// steady lead-in long enough for caches to hold a pre-crowd population.
pub const FLASH_CROWD_BURST_START_SECS: f64 = 600.0;

/// How long the [`Scenario::flash_crowd`] burst window stays open. At the
/// paper's base rate this window absorbs the overwhelming majority of any
/// count-bounded run that outlasts the lead-in.
pub const FLASH_CROWD_BURST_DURATION_SECS: f64 = 3600.0;

/// The per-cluster origin/storage weights of [`Scenario::regional_hotspot`]:
/// the first (locality-sorted) third of the population carries 6× the mass of
/// each other third — 75% of initial replicas and query origins.
pub const REGIONAL_HOTSPOT_WEIGHTS: [f64; 3] = [6.0, 1.0, 1.0];

/// The independent per-message loss rate of [`Scenario::faulty_network`]:
/// 5% — lossy enough that multi-hop query trees shed branches, mild enough
/// that retransmits recover most of them.
pub const FAULTY_NETWORK_LOSS: f64 = 0.05;

/// When the [`Scenario::faulty_network`] outage window opens (simulated
/// seconds): deep inside the workload, after caches and indexes have formed.
pub const FAULTY_NETWORK_OUTAGE_START_SECS: f64 = 300.0;

/// How long the [`Scenario::faulty_network`] outage lasts.
pub const FAULTY_NETWORK_OUTAGE_DURATION_SECS: f64 = 120.0;

/// The fraction of links the [`Scenario::faulty_network`] outage silences
/// while the window is open.
pub const FAULTY_NETWORK_OUTAGE_FRACTION: f64 = 0.3;

/// A named, validated simulation configuration.
///
/// Construction always goes through validation — via the presets, via
/// [`Scenario::from_config`] or via [`ScenarioBuilder::build`] — so holding a
/// `Scenario` is proof the configuration is internally consistent and
/// [`Scenario::substrate`] cannot fail. (Deliberately not deserializable:
/// decoding a scenario from bytes would bypass that validation; deserialize a
/// [`SimulationConfig`] and go through [`Scenario::from_config`] instead.)
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    config: SimulationConfig,
}

impl Scenario {
    /// The names of the built-in presets, in the order they are documented:
    /// `paper-defaults`, `small`, `flash-crowd`, `churn-storm`,
    /// `regional-hotspot`, `faulty-network`, `large-10k`.
    pub const PRESET_NAMES: [&'static str; 7] = [
        "paper-defaults",
        "small",
        "flash-crowd",
        "churn-storm",
        "regional-hotspot",
        "faulty-network",
        "large-10k",
    ];

    /// Starts a builder named `name`, seeded from the paper's §5.1 defaults.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            config: SimulationConfig::paper_defaults(),
        }
    }

    /// Wraps an explicit configuration, validating it first.
    pub fn from_config(
        name: impl Into<String>,
        config: SimulationConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Scenario { name: name.into(), config })
    }

    /// The paper's §5.1 setup: 1000 peers, static overlay, Zipf(1) workload.
    pub fn paper_defaults() -> Self {
        Scenario {
            name: "paper-defaults".into(),
            config: SimulationConfig::paper_defaults(),
        }
    }

    /// The paper's setup scaled down to `peers` peers with every ratio kept;
    /// what tests and examples run so they finish in milliseconds.
    ///
    /// # Panics
    /// Panics unless `peers` exceeds the paper's average overlay degree of 3
    /// ([`SimulationConfig::small`] keeps that degree, and the population must
    /// be larger than the degree for the overlay to be wireable). Use
    /// [`Scenario::builder`] for fallible construction.
    pub fn small(peers: usize) -> Self {
        validated_preset("small", SimulationConfig::small(peers))
    }

    /// Flash crowd: a hot keyword set absorbs most queries while arrivals
    /// burst far above the paper's steady rate — as a real
    /// [`ArrivalSchedule::Burst`], not a constant-rate approximation.
    ///
    /// The Zipf exponent is sharpened to 1.5 so the head of the popularity
    /// distribution behaves like a sudden hit (the paper's own motivation:
    /// "most queries request a few popular files"). The base rate stays at
    /// the paper's 0.00083 q/s/peer; after a
    /// [`FLASH_CROWD_BURST_START_SECS`]-second steady lead-in the rate
    /// multiplies by [`FLASH_CROWD_RATE_MULTIPLIER`] for
    /// [`FLASH_CROWD_BURST_DURATION_SECS`] seconds, compressing the bulk of
    /// the query volume into the window — the onset/offset structure the
    /// PR-2 constant-multiplier approximation could not express. Locaware's
    /// natural-replication tracking is exactly what this regime stresses:
    /// every satisfied download adds a replica the index can point later
    /// requestors at.
    pub fn flash_crowd(peers: usize) -> Self {
        let mut config = SimulationConfig::small(peers);
        config.seed = 0xF1A5_11C0;
        config.zipf_exponent = 1.5;
        config.arrival_schedule = ArrivalSchedule::Burst {
            multiplier: FLASH_CROWD_RATE_MULTIPLIER,
            start_secs: FLASH_CROWD_BURST_START_SECS,
            duration_secs: FLASH_CROWD_BURST_DURATION_SECS,
        };
        validated_preset("flash-crowd", config)
    }

    /// Churn storm: an aggressively dynamic population.
    ///
    /// Three quarters of the peers cycle through 5-minute sessions with
    /// 5-minute offline gaps — far harsher than measured Gnutella medians —
    /// so cached index entries go stale while queries are still in flight.
    /// This is the regime §4.1.2 worries about when it argues cached objects
    /// "should be kept for a small amount of time". Pair it with
    /// [`SimulationConfig::proactive_provider_invalidation`] (via
    /// [`ScenarioBuilder::proactive_provider_invalidation`]) to study
    /// CUP-style eager invalidation against the paper's lazy filtering.
    pub fn churn_storm(peers: usize) -> Self {
        let mut config = SimulationConfig::small(peers);
        config.seed = 0xC4A2_2222;
        config.churn = ChurnConfig {
            mean_session_secs: 300.0,
            mean_offline_secs: 300.0,
            churning_fraction: 0.75,
        };
        validated_preset("churn-storm", config)
    }

    /// Regional hotspot: physical placement collapsed into a few tight
    /// regions, with one region carrying most of the storage *and* most of
    /// the query load via weighted-cluster placement.
    ///
    /// Instead of the default 24 clusters, peers are packed into 3 very tight
    /// clusters (σ = 0.015), so landmark binning yields only a handful of
    /// distinct locIds and most peers share a locality. On top of that,
    /// [`REGIONAL_HOTSPOT_WEIGHTS`] concentrates 75% of the initial file
    /// copies and 75% of the query origins on the first locality-sorted third
    /// of the population — the hotspot is a physical region, not an id range.
    /// This is the best case for Locaware's location-aware provider selection
    /// — and the stress case for the locId cardinality assumptions of the
    /// routing tables.
    pub fn regional_hotspot(peers: usize) -> Self {
        let mut config = SimulationConfig::small(peers);
        config.seed = 0x4E61_0750;
        config.placement = PlacementModel::Clustered {
            clusters: 3,
            sigma: 0.015,
        };
        config.cluster_weights = match ClusterWeights::new(REGIONAL_HOTSPOT_WEIGHTS.to_vec()) {
            Ok(weights) => Some(weights),
            // Unreachable: REGIONAL_HOTSPOT_WEIGHTS is a positive, finite
            // compile-time constant, and the preset test exercises this path.
            Err(err) => panic!("regional-hotspot weights must validate: {err:?}"),
        };
        validated_preset("regional-hotspot", config)
    }

    /// Faulty network: the static `small` substrate with every fault axis
    /// armed except crash-stop churn (there is no churn to crash).
    ///
    /// Messages drop independently at `FAULTY_NETWORK_LOSS`; a window of
    /// `FAULTY_NETWORK_OUTAGE_DURATION_SECS` seconds starting at
    /// `FAULTY_NETWORK_OUTAGE_START_SECS` silences
    /// `FAULTY_NETWORK_OUTAGE_FRACTION` of the links entirely. The
    /// protocols fight back with the resilience machinery this preset
    /// exists to exercise: unstructured queries retransmit on a 3 s deadline
    /// doubling per attempt (two retries), and iterative DHT lookup steps
    /// re-issue against the next shortlist candidate after 2 s. Every loss,
    /// deadline and retry is drawn from the seeded fault stream, so the
    /// preset is as deterministic — and as shard-invariant — as the clean
    /// ones.
    pub fn faulty_network(peers: usize) -> Self {
        let mut config = SimulationConfig::small(peers);
        config.seed = 0xFA_017_E47;
        config.faults = FaultConfig {
            message_loss: FAULTY_NETWORK_LOSS,
            outages: vec![OutageWindow {
                start_secs: FAULTY_NETWORK_OUTAGE_START_SECS,
                duration_secs: FAULTY_NETWORK_OUTAGE_DURATION_SECS,
                fraction: FAULTY_NETWORK_OUTAGE_FRACTION,
            }],
            crash_stop: false,
            query_timeout: TimeoutPolicy {
                initial_secs: 3.0,
                backoff: 2.0,
                max_retries: 2,
            },
            dht_step_timeout_secs: 2.0,
        };
        validated_preset("faulty-network", config)
    }

    /// Large scale: the paper's setup at frontier population (nominally 10⁴
    /// peers — the `peers` argument still scales it, so tests can validate
    /// the preset cheaply), steady arrivals, no churn, no faults. Carries
    /// its own regime seed so frontier runs never alias the paper-scale
    /// fingerprints. This is the preset the `scale_frontier` bench and the
    /// weekly paper-scale workflow drive.
    pub fn large_10k(peers: usize) -> Self {
        let mut config = SimulationConfig::small(peers);
        config.seed = 0x5CA1_E4ED;
        validated_preset("large-10k", config)
    }

    /// Looks a preset up by its [`Scenario::PRESET_NAMES`] name, scaled to
    /// `peers` peers (`paper-defaults` ignores `peers`: it is the published
    /// 1000-peer setup by definition).
    pub fn preset(name: &str, peers: usize) -> Option<Self> {
        Some(match name {
            "paper-defaults" => Scenario::paper_defaults(),
            "small" => Scenario::small(peers),
            "flash-crowd" => Scenario::flash_crowd(peers),
            "churn-storm" => Scenario::churn_storm(peers),
            "regional-hotspot" => Scenario::regional_hotspot(peers),
            "faulty-network" => Scenario::faulty_network(peers),
            "large-10k" => Scenario::large_10k(peers),
            _ => return None,
        })
    }

    /// The scenario's name, used to label experiment output.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The master seed of this scenario.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Returns the scenario with a different master seed (seeds never affect
    /// validity, so this cannot fail).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Returns the scenario renamed to `name`.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builds the substrate. Infallible: the configuration was validated when
    /// the scenario was constructed.
    pub fn substrate(&self) -> Simulation {
        Simulation::from_scenario(self)
    }
}

/// Wraps a preset configuration, panicking if it fails validation.
///
/// Every preset is a compile-time-authored configuration, and
/// `every_preset_validates_and_has_a_distinct_seed` exercises each one, so
/// the panic is unreachable in a released tree. Concentrating the
/// deliberate panic here — instead of a per-preset `.expect(...)` — keeps
/// the constructors readable and the D004 unwrap ratchet honest about how
/// many independent panic decisions this module actually makes: one.
fn validated_preset(name: &'static str, config: SimulationConfig) -> Scenario {
    match Scenario::from_config(name, config) {
        Ok(scenario) => scenario,
        Err(err) => panic!("preset `{name}` must validate: {err}"),
    }
}

/// Fallible builder for [`Scenario`]s.
///
/// Starts from the paper's defaults (or an explicit base configuration via
/// [`ScenarioBuilder::from_config`]), lets callers override individual knobs
/// with typed setters, and validates everything at once in
/// [`ScenarioBuilder::build`]:
///
/// ```
/// use locaware::experiment::Scenario;
///
/// let scenario = Scenario::builder("demo")
///     .peers(60)
///     .seed(7)
///     .ttl(5)
///     .build()
///     .expect("consistent configuration");
/// assert_eq!(scenario.config().ttl, 5);
///
/// // Inconsistencies come back as typed errors instead of panics:
/// let err = Scenario::builder("broken").peers(60).ttl(0).build().unwrap_err();
/// assert_eq!(err, locaware::ConfigError::ZeroTtl);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    config: SimulationConfig,
}

impl ScenarioBuilder {
    /// Starts from an explicit base configuration instead of the paper
    /// defaults (validation still only happens in [`ScenarioBuilder::build`]).
    pub fn from_config(name: impl Into<String>, config: SimulationConfig) -> Self {
        ScenarioBuilder { name: name.into(), config }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the peer count, rescaling pool sizes the way
    /// [`SimulationConfig::small`] does so the workload ratios survive.
    ///
    /// **Overwrites** `file_pool` and `keyword_pool` with the rescaled
    /// values: call [`ScenarioBuilder::file_pool`] /
    /// [`ScenarioBuilder::keyword_pool`] *after* this setter to pin explicit
    /// pool sizes, or use [`ScenarioBuilder::peers_exact`] to leave every
    /// other knob untouched.
    pub fn peers(mut self, peers: usize) -> Self {
        let seed = self.config.seed;
        let rescaled = SimulationConfig::small(peers);
        self.config.peers = rescaled.peers;
        self.config.file_pool = rescaled.file_pool;
        self.config.keyword_pool = rescaled.keyword_pool;
        self.config.seed = seed;
        self
    }

    /// Sets the peer count without touching any other knob.
    pub fn peers_exact(mut self, peers: usize) -> Self {
        self.config.peers = peers;
        self
    }

    /// Sets the average overlay degree.
    pub fn average_degree(mut self, degree: f64) -> Self {
        self.config.average_degree = degree;
        self
    }

    /// Sets the query TTL.
    pub fn ttl(mut self, ttl: u32) -> Self {
        self.config.ttl = ttl;
        self
    }

    /// Sets the one-way latency range in milliseconds.
    pub fn latency_range_ms(mut self, min_ms: f64, max_ms: f64) -> Self {
        self.config.min_latency_ms = min_ms;
        self.config.max_latency_ms = max_ms;
        self
    }

    /// Sets the physical placement model.
    pub fn placement(mut self, placement: PlacementModel) -> Self {
        self.config.placement = placement;
        self
    }

    /// Sets the landmark count.
    pub fn landmarks(mut self, landmarks: usize) -> Self {
        self.config.landmarks = landmarks;
        self
    }

    /// Sets the file pool size.
    pub fn file_pool(mut self, files: usize) -> Self {
        self.config.file_pool = files;
        self
    }

    /// Sets the keyword pool size.
    pub fn keyword_pool(mut self, keywords: usize) -> Self {
        self.config.keyword_pool = keywords;
        self
    }

    /// Sets how many files each peer initially shares.
    pub fn files_per_peer(mut self, files: usize) -> Self {
        self.config.files_per_peer = files;
        self
    }

    /// Sets the Zipf exponent of query popularity.
    pub fn zipf_exponent(mut self, exponent: f64) -> Self {
        self.config.zipf_exponent = exponent;
        self
    }

    /// Sets the base per-peer query rate in queries per second.
    pub fn query_rate_per_peer(mut self, rate: f64) -> Self {
        self.config.query_rate_per_peer = rate;
        self
    }

    /// Sets the arrival-rate profile over time (steady, ramp, burst or
    /// composed phases); degenerate profiles surface as
    /// [`ConfigError::ArrivalSchedule`] from [`ScenarioBuilder::build`].
    pub fn arrival_schedule(mut self, schedule: ArrivalSchedule) -> Self {
        self.config.arrival_schedule = schedule;
        self
    }

    /// Sets the weighted-cluster workload concentration (storage and query
    /// origins); `None` restores the paper's uniform workload.
    pub fn cluster_weights(mut self, weights: Option<ClusterWeights>) -> Self {
        self.config.cluster_weights = weights;
        self
    }

    /// Enables or disables proactive invalidation of departed providers'
    /// cached index entries at churn departures (default: off, the paper's
    /// lazy behaviour).
    pub fn proactive_provider_invalidation(mut self, enabled: bool) -> Self {
        self.config.proactive_provider_invalidation = enabled;
        self
    }

    /// Sets the caching/routing group count `M`.
    pub fn group_count(mut self, m: u32) -> Self {
        self.config.group_count = m;
        self
    }

    /// Sets the response-index capacity in distinct filenames.
    pub fn response_index_capacity(mut self, filenames: usize) -> Self {
        self.config.response_index_capacity = filenames;
        self
    }

    /// Sets the Bloom filter shape (bits, hash probes).
    pub fn bloom(mut self, bits: usize, hashes: usize) -> Self {
        self.config.bloom_bits = bits;
        self.config.bloom_hashes = hashes;
        self
    }

    /// Sets the churn model.
    pub fn churn(mut self, churn: ChurnConfig) -> Self {
        self.config.churn = churn;
        self
    }

    /// Sets the fault plan (message loss, outage windows, crash-stop churn,
    /// timeout/retry policies); inconsistent plans surface as
    /// [`ConfigError::FaultConfig`] or [`ConfigError::TimeoutPolicy`] from
    /// [`ScenarioBuilder::build`].
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.config.faults = faults;
        self
    }

    /// Sets the engine shard count (deterministic intra-run parallelism;
    /// 0 = auto via `LOCAWARE_SHARDS`). Every shard count produces
    /// bit-identical reports for the same seed, so this is purely a
    /// performance knob.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Applies an arbitrary edit to the underlying configuration — the escape
    /// hatch for knobs without a dedicated setter.
    pub fn tweak(mut self, edit: impl FnOnce(&mut SimulationConfig)) -> Self {
        edit(&mut self.config);
        self
    }

    /// Validates the assembled configuration and returns the scenario, or the
    /// first violated constraint as a [`ConfigError`].
    pub fn build(self) -> Result<Scenario, ConfigError> {
        Scenario::from_config(self.name, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_validated_scenarios() {
        let scenario = Scenario::builder("unit")
            .peers(80)
            .seed(3)
            .zipf_exponent(1.2)
            .build()
            .unwrap();
        assert_eq!(scenario.name(), "unit");
        assert_eq!(scenario.config().peers, 80);
        assert_eq!(scenario.seed(), 3);
        assert!((scenario.config().zipf_exponent - 1.2).abs() < 1e-12);
        assert!(scenario.config().validate().is_ok());
    }

    #[test]
    fn builder_surfaces_typed_errors() {
        assert_eq!(
            Scenario::builder("bad").peers(60).ttl(0).build().unwrap_err(),
            ConfigError::ZeroTtl
        );
        assert!(matches!(
            Scenario::builder("bad").peers(60).landmarks(12).build().unwrap_err(),
            ConfigError::LandmarksOutOfRange { landmarks: 12 }
        ));
        assert!(matches!(
            Scenario::builder("bad")
                .peers(60)
                .latency_range_ms(50.0, 10.0)
                .build()
                .unwrap_err(),
            ConfigError::LatencyRange { .. }
        ));
    }

    #[test]
    fn every_preset_validates_and_has_a_distinct_seed() {
        let presets = [
            Scenario::paper_defaults(),
            Scenario::small(60),
            Scenario::flash_crowd(60),
            Scenario::churn_storm(60),
            Scenario::regional_hotspot(60),
            Scenario::faulty_network(60),
            Scenario::large_10k(60),
        ];
        // `small` intentionally keeps the paper seed (it is the paper's setup
        // scaled down); the five extension regimes each carry their own seed.
        let mut regime_seeds: Vec<u64> = presets[1..].iter().map(|s| s.seed()).collect();
        regime_seeds.sort_unstable();
        regime_seeds.dedup();
        assert_eq!(regime_seeds.len(), 6, "regime seeds must be distinct");
        for (scenario, expected_name) in presets.iter().zip(Scenario::PRESET_NAMES) {
            assert_eq!(scenario.name(), expected_name);
            assert!(scenario.config().validate().is_ok(), "{expected_name} must validate");
        }
    }

    #[test]
    fn preset_lookup_matches_the_name_table() {
        for name in Scenario::PRESET_NAMES {
            let scenario = Scenario::preset(name, 50).unwrap();
            assert_eq!(scenario.name(), name);
        }
        assert!(Scenario::preset("no-such-preset", 50).is_none());
    }

    #[test]
    fn preset_regimes_differ_from_the_paper_setup() {
        let small = Scenario::small(100);
        let flash = Scenario::flash_crowd(100);
        let storm = Scenario::churn_storm(100);
        let hotspot = Scenario::regional_hotspot(100);

        assert!(flash.config().zipf_exponent > small.config().zipf_exponent);
        // The flash crowd is a real burst primitive at the paper's base rate,
        // not a constant-rate multiplier.
        assert_eq!(
            flash.config().query_rate_per_peer,
            small.config().query_rate_per_peer
        );
        assert!(matches!(
            flash.config().arrival_schedule,
            ArrivalSchedule::Burst { multiplier, .. } if multiplier == FLASH_CROWD_RATE_MULTIPLIER
        ));
        assert!(small.config().arrival_schedule.is_steady());
        assert!(small.config().churn.is_disabled());
        assert!(!storm.config().churn.is_disabled());
        assert!(storm.config().arrival_schedule.is_steady());
        assert!(
            !storm.config().proactive_provider_invalidation,
            "lazy invalidation stays the churn-storm default"
        );
        assert!(matches!(
            hotspot.config().placement,
            PlacementModel::Clustered { clusters: 3, .. }
        ));
        // The hotspot concentrates both storage and query origins.
        let weights = hotspot.config().cluster_weights.as_ref().expect("weighted clusters");
        assert_eq!(weights.weights(), &REGIONAL_HOTSPOT_WEIGHTS);
        assert!(small.config().cluster_weights.is_none());

        let faulty = Scenario::faulty_network(100);
        assert!(small.config().faults.is_disabled());
        assert!(!faulty.config().faults.is_disabled());
        assert_eq!(faulty.config().faults.message_loss, FAULTY_NETWORK_LOSS);
        assert_eq!(faulty.config().faults.outages.len(), 1);
        assert!(faulty.config().faults.query_timeout.is_enabled());
        assert!(faulty.config().faults.dht_step_timeout_secs > 0.0);
        assert!(!faulty.config().faults.crash_stop, "no churn to crash in this preset");
    }

    #[test]
    fn builder_exposes_the_workload_primitives() {
        let scenario = Scenario::builder("ramped")
            .peers(60)
            .arrival_schedule(ArrivalSchedule::Ramp {
                from: 1.0,
                to: 4.0,
                duration_secs: 900.0,
            })
            .cluster_weights(Some(ClusterWeights::new(vec![2.0, 1.0]).unwrap()))
            .proactive_provider_invalidation(true)
            .build()
            .unwrap();
        assert!(matches!(
            scenario.config().arrival_schedule,
            ArrivalSchedule::Ramp { .. }
        ));
        assert!(scenario.config().cluster_weights.is_some());
        assert!(scenario.config().proactive_provider_invalidation);

        // Degenerate schedules fail fallibly through build(), never by panic.
        let err = Scenario::builder("bad")
            .peers(60)
            .arrival_schedule(ArrivalSchedule::Phases(Vec::new()))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ArrivalSchedule(_)));
    }

    #[test]
    fn with_seed_and_with_name_override_without_revalidation() {
        let scenario = Scenario::small(40).with_seed(99).with_name("renamed");
        assert_eq!(scenario.seed(), 99);
        assert_eq!(scenario.name(), "renamed");
    }
}
