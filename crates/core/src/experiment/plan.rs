//! Experiment plans: the grid an experiment runs over.
//!
//! An [`ExperimentPlan`] is the declarative description of a whole
//! experiment: which [`Scenario`]s, which [`ProtocolKind`]s, which query
//! counts (the x-axis of the paper's figures) and how many seed-independent
//! repetitions. The plan itself does no work — [`Runner`](super::Runner)
//! executes it — which keeps "what to measure" and "how to schedule it"
//! separate, and makes the comparability contract visible in the types: all
//! protocols and query counts at one (scenario, repetition) grid point share
//! one substrate.

use crate::config::ProtocolKind;

use super::scenario::Scenario;

/// Why an [`ExperimentPlan`] cannot be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// The plan lists no scenarios.
    NoScenarios,
    /// The plan lists no protocols.
    NoProtocols,
    /// The plan lists no query counts.
    NoQueryCounts,
    /// The plan asks for zero repetitions.
    ZeroRepetitions,
    /// Two scenarios share a name. Names label every outcome lookup
    /// ([`crate::ExperimentOutcome::report`] keys on them), so duplicates
    /// would make the results of the two scenarios indistinguishable; rename
    /// one with [`Scenario::with_name`].
    DuplicateScenarioName(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoScenarios => write!(f, "experiment plan needs at least one scenario"),
            PlanError::NoProtocols => write!(f, "experiment plan needs at least one protocol"),
            PlanError::NoQueryCounts => {
                write!(f, "experiment plan needs at least one query count")
            }
            PlanError::ZeroRepetitions => {
                write!(f, "experiment plan needs at least one repetition")
            }
            PlanError::DuplicateScenarioName(name) => write!(
                f,
                "experiment plan lists two scenarios named {name:?}; rename one with with_name"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The grid of scenarios × protocols × query counts × repetitions an
/// experiment covers.
///
/// ```
/// use locaware::experiment::{ExperimentPlan, Scenario};
/// use locaware::ProtocolKind;
///
/// let plan = ExperimentPlan::new()
///     .scenario(Scenario::small(60).with_seed(11))
///     .protocols(ProtocolKind::PAPER_SET)
///     .query_counts([30, 60])
///     .repetitions(2);
/// assert_eq!(plan.substrate_count(), 2); // 1 scenario × 2 repetitions
/// assert_eq!(plan.point_count(), 16);    // × 4 protocols × 2 query counts
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExperimentPlan {
    scenarios: Vec<Scenario>,
    protocols: Vec<ProtocolKind>,
    query_counts: Vec<usize>,
    repetitions: usize,
}

impl ExperimentPlan {
    /// An empty plan with one repetition; add scenarios, protocols and query
    /// counts before handing it to a runner.
    pub fn new() -> Self {
        ExperimentPlan {
            scenarios: Vec::new(),
            protocols: Vec::new(),
            query_counts: Vec::new(),
            repetitions: 1,
        }
    }

    /// Adds one scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Adds several scenarios.
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.scenarios.extend(scenarios);
        self
    }

    /// Adds one protocol.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocols.push(protocol);
        self
    }

    /// Adds several protocols.
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = ProtocolKind>) -> Self {
        self.protocols.extend(protocols);
        self
    }

    /// Adds one query count.
    pub fn query_count(mut self, queries: usize) -> Self {
        self.query_counts.push(queries);
        self
    }

    /// Adds several query counts (the x-axis of the figures).
    pub fn query_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.query_counts.extend(counts);
        self
    }

    /// Sets the number of seed-independent repetitions per grid point.
    pub fn repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions;
        self
    }

    /// Checks the plan is executable.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.scenarios.is_empty() {
            return Err(PlanError::NoScenarios);
        }
        if self.protocols.is_empty() {
            return Err(PlanError::NoProtocols);
        }
        if self.query_counts.is_empty() {
            return Err(PlanError::NoQueryCounts);
        }
        if self.repetitions == 0 {
            return Err(PlanError::ZeroRepetitions);
        }
        let mut names: Vec<&str> = self.scenarios.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        if let Some(duplicate) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(PlanError::DuplicateScenarioName(duplicate[0].to_string()));
        }
        Ok(())
    }

    /// The scenarios in the plan.
    pub fn scenario_list(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The protocols in the plan.
    pub fn protocol_list(&self) -> &[ProtocolKind] {
        &self.protocols
    }

    /// The query counts in the plan.
    pub fn query_count_list(&self) -> &[usize] {
        &self.query_counts
    }

    /// The number of repetitions per grid point.
    pub fn repetition_count(&self) -> usize {
        self.repetitions
    }

    /// How many substrates a runner will build for this plan: one per
    /// (scenario, repetition), shared by every protocol and query count.
    pub fn substrate_count(&self) -> usize {
        self.scenarios.len() * self.repetitions
    }

    /// Total number of measurements the plan produces.
    pub fn point_count(&self) -> usize {
        self.substrate_count() * self.protocols.len() * self.query_counts.len()
    }

    /// The seed a given repetition of `scenario` runs under: repetition 0 is
    /// the scenario's own seed, later repetitions derive independent seeds by
    /// a Weyl-style step so that reports stay comparable with the historical
    /// `Sweep` numbers.
    pub fn repetition_seed(scenario: &Scenario, repetition: usize) -> u64 {
        scenario.seed().wrapping_add(0x9E37_79B9u64.wrapping_mul(repetition as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plans_are_rejected_with_the_missing_dimension() {
        assert_eq!(ExperimentPlan::new().validate(), Err(PlanError::NoScenarios));
        assert_eq!(
            ExperimentPlan::new().scenario(Scenario::small(30)).validate(),
            Err(PlanError::NoProtocols)
        );
        assert_eq!(
            ExperimentPlan::new()
                .scenario(Scenario::small(30))
                .protocol(ProtocolKind::Flooding)
                .validate(),
            Err(PlanError::NoQueryCounts)
        );
        assert_eq!(
            ExperimentPlan::new()
                .scenario(Scenario::small(30))
                .protocol(ProtocolKind::Flooding)
                .query_count(10)
                .repetitions(0)
                .validate(),
            Err(PlanError::ZeroRepetitions)
        );
    }

    #[test]
    fn grid_arithmetic_matches_the_dimensions() {
        let plan = ExperimentPlan::new()
            .scenarios([Scenario::small(30), Scenario::flash_crowd(30)])
            .protocols(ProtocolKind::PAPER_SET)
            .query_counts([10, 20, 30])
            .repetitions(2);
        assert!(plan.validate().is_ok());
        assert_eq!(plan.substrate_count(), 4);
        assert_eq!(plan.point_count(), 4 * 4 * 3);
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let plan = ExperimentPlan::new()
            .scenarios([Scenario::small(30), Scenario::small(60)])
            .protocol(ProtocolKind::Flooding)
            .query_count(10);
        assert_eq!(
            plan.validate(),
            Err(PlanError::DuplicateScenarioName("small".into())),
            "two scenarios named 'small' would be indistinguishable in the outcome"
        );
        let renamed = ExperimentPlan::new()
            .scenarios([Scenario::small(30), Scenario::small(60).with_name("small-60")])
            .protocol(ProtocolKind::Flooding)
            .query_count(10);
        assert!(renamed.validate().is_ok());
    }

    #[test]
    fn repetition_zero_keeps_the_scenario_seed() {
        let scenario = Scenario::small(30).with_seed(42);
        assert_eq!(ExperimentPlan::repetition_seed(&scenario, 0), 42);
        assert_ne!(ExperimentPlan::repetition_seed(&scenario, 1), 42);
        assert_ne!(
            ExperimentPlan::repetition_seed(&scenario, 1),
            ExperimentPlan::repetition_seed(&scenario, 2)
        );
    }

    #[test]
    fn plan_errors_display_and_box() {
        let err: Box<dyn std::error::Error> = Box::new(PlanError::NoProtocols);
        assert!(err.to_string().contains("protocol"));
    }
}
