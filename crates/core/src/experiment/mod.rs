//! The experiment layer: scenarios, plans and the parallel runner.
//!
//! The paper's evaluation methodology has one load-bearing rule: *every
//! protocol is measured over an identical substrate* — same underlay, same
//! overlay, same catalog, placement and query schedule, with only the policy
//! swapped. This module makes that rule a property of the types instead of a
//! convention of the call sites:
//!
//! 1. [`Scenario`] — a named, **validated** configuration. Construction is
//!    fallible ([`ScenarioBuilder::build`] returns [`ConfigError`]);
//!    holding a `Scenario` is proof the
//!    configuration is consistent. Named presets cover the paper's setup
//!    ([`Scenario::paper_defaults`], [`Scenario::small`]) and three extension
//!    regimes ([`Scenario::flash_crowd`], [`Scenario::churn_storm`],
//!    [`Scenario::regional_hotspot`]).
//! 2. [`ExperimentPlan`] — the grid: scenarios × protocols × query counts ×
//!    repetitions.
//! 3. [`Runner`] — executes the grid on scoped worker threads stealing tasks
//!    from a shared queue, building each (scenario, repetition) substrate
//!    **exactly once** and sharing it immutably (`Arc`) across every protocol
//!    and query count at that point.
//!
//! ```
//! use locaware::experiment::{ExperimentPlan, Runner, Scenario};
//! use locaware::ProtocolKind;
//!
//! let plan = ExperimentPlan::new()
//!     .scenario(Scenario::small(60).with_seed(1))
//!     .protocols([ProtocolKind::Locaware, ProtocolKind::Flooding])
//!     .query_count(40);
//! let outcome = Runner::new().run(&plan).expect("plan is complete");
//!
//! // Both protocols ran over one substrate, built once:
//! assert_eq!(outcome.substrates_built, 1);
//! let locaware = outcome.report("small", ProtocolKind::Locaware, 40, 0).unwrap();
//! let flooding = outcome.report("small", ProtocolKind::Flooding, 40, 0).unwrap();
//! assert!(locaware.avg_messages_per_query() < flooding.avg_messages_per_query());
//! ```

mod plan;
mod runner;
mod scenario;

pub use plan::{ExperimentPlan, PlanError};
pub use runner::{ExperimentOutcome, ExperimentPoint, Runner};
pub use scenario::{
    Scenario, ScenarioBuilder, FLASH_CROWD_BURST_DURATION_SECS, FLASH_CROWD_BURST_START_SECS,
    FLASH_CROWD_RATE_MULTIPLIER, REGIONAL_HOTSPOT_WEIGHTS,
};

// The error type of scenario construction lives next to the validation rules
// in `config`; re-export it here so `experiment::*` is self-contained.
pub use crate::config::ConfigError;
