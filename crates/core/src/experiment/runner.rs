//! Executing experiment plans.
//!
//! [`Runner`] turns an [`ExperimentPlan`] into an [`ExperimentOutcome`]. The
//! scheduling contract it enforces is the architectural point of the
//! experiment layer:
//!
//! * **One substrate per (scenario, repetition).** Every protocol and query
//!   count at a grid point runs over the *identical* substrate object, so the
//!   comparability the paper's Figures 2–4 rely on is structural rather than
//!   conventional — and the substrate build (the dominant fixed cost at scale)
//!   happens exactly once per point instead of once per protocol.
//! * **Immutable sharing.** Substrates are built into `Arc<Simulation>` cells
//!   and only ever read afterwards; [`Simulation::run`] takes `&self`.
//! * **Work stealing.** All (substrate, protocol, query count) tasks go into
//!   one shared queue drained by scoped worker threads; whichever worker is
//!   free takes the next task, so stragglers (flooding at large query counts)
//!   do not idle the rest of the pool. The first worker to need a substrate
//!   builds it; others needing the same one block on that single build.
//!
//! Results are deterministic: the outcome's point order and every report are
//! independent of thread count and scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};

use crate::config::ProtocolKind;
use crate::results::SimulationReport;
use crate::simulation::Simulation;

use super::plan::{ExperimentPlan, PlanError};

/// One measurement of the grid: a protocol run over a shared substrate.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Name of the scenario the substrate was built from.
    pub scenario: String,
    /// Index of the scenario in the plan (stable tie-breaker for ordering).
    pub scenario_index: usize,
    /// The protocol evaluated.
    pub protocol: ProtocolKind,
    /// Number of queries issued.
    pub queries: usize,
    /// Repetition index (0-based; repetition 0 uses the scenario's own seed).
    pub repetition: usize,
    /// The derived master seed this point actually ran under.
    pub seed: u64,
    /// The full per-run report.
    pub report: SimulationReport,
}

/// Everything a runner measured, in deterministic order.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// All grid points, sorted by (scenario, repetition, queries, protocol
    /// position in the plan).
    pub points: Vec<ExperimentPoint>,
    /// How many substrates were actually built — `plan.substrate_count()`
    /// when every grid point was reached, and never more: the runner's
    /// build-once guarantee is observable here.
    pub substrates_built: usize,
}

impl ExperimentOutcome {
    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the outcome holds no measurements.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The report for one exact grid point, if it exists. Scenario names are
    /// unique within a plan ([`ExperimentPlan::validate`] rejects
    /// duplicates), so the lookup is unambiguous.
    pub fn report(
        &self,
        scenario: &str,
        protocol: ProtocolKind,
        queries: usize,
        repetition: usize,
    ) -> Option<&SimulationReport> {
        self.points
            .iter()
            .find(|p| {
                p.scenario == scenario
                    && p.protocol == protocol
                    && p.queries == queries
                    && p.repetition == repetition
            })
            .map(|p| &p.report)
    }

    /// Iterates the points of one scenario.
    pub fn scenario_points<'a>(
        &'a self,
        scenario: &'a str,
    ) -> impl Iterator<Item = &'a ExperimentPoint> + 'a {
        self.points.iter().filter(move |p| p.scenario == scenario)
    }
}

/// Executes [`ExperimentPlan`]s over a pool of scoped worker threads.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    threads: Option<usize>,
    build_counter: Option<Arc<AtomicUsize>>,
}

impl Runner {
    /// A runner sized to the machine (one worker per available core, capped
    /// at 16).
    pub fn new() -> Self {
        Runner { threads: None, build_counter: None }
    }

    /// The machine-sized worker count [`Runner::new`] uses: one worker per
    /// available core, capped at 16 (grid points are memory-bandwidth-hungry;
    /// more threads than that stop helping).
    pub fn default_thread_count() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16)
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Attaches a counter incremented once per substrate build. Instrumentation
    /// for tests and benchmarks asserting the build-once guarantee; the same
    /// number is reported in [`ExperimentOutcome::substrates_built`].
    pub fn with_build_counter(mut self, counter: Arc<AtomicUsize>) -> Self {
        self.build_counter = Some(counter);
        self
    }

    /// The worker-thread count this runner will use (before the per-plan
    /// shard budget of [`Runner::planned_workers`] is applied).
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(Self::default_thread_count)
    }

    /// The plan-level worker count after budgeting for nested parallelism:
    /// each run may itself fan out over `config.shards` engine threads, so a
    /// machine-sized runner divides its cores by the plan's largest effective
    /// shard count — `shards × workers` never oversubscribes the machine. An
    /// explicit [`Runner::with_threads`] override is taken literally (the
    /// caller asked for that many plan-level workers).
    pub fn planned_workers(&self, plan: &ExperimentPlan) -> usize {
        if let Some(threads) = self.threads {
            return threads.max(1);
        }
        let max_shards = plan
            .scenario_list()
            .iter()
            .map(|s| s.config().effective_shards())
            .max()
            .unwrap_or(1);
        (Self::default_thread_count() / max_shards.max(1)).max(1)
    }

    /// Runs the whole plan and returns every measurement.
    pub fn run(&self, plan: &ExperimentPlan) -> Result<ExperimentOutcome, PlanError> {
        plan.validate()?;

        let scenarios = plan.scenario_list();
        let protocols = plan.protocol_list();
        let query_counts = plan.query_count_list();

        // One substrate unit per (scenario, repetition)...
        let mut units: Vec<(usize, usize)> = Vec::with_capacity(plan.substrate_count());
        for (scenario_index, _) in scenarios.iter().enumerate() {
            for repetition in 0..plan.repetition_count() {
                units.push((scenario_index, repetition));
            }
        }
        let substrates: Vec<OnceLock<Arc<Simulation>>> =
            units.iter().map(|_| OnceLock::new()).collect();

        // ...and one task per (unit, protocol, query count). Tasks are
        // interleaved unit-major so concurrent workers start on *different*
        // substrates instead of piling onto one OnceLock build.
        let mut tasks: Vec<(usize, usize, usize)> = Vec::with_capacity(plan.point_count());
        for protocol_index in 0..protocols.len() {
            for query_index in 0..query_counts.len() {
                for unit_index in 0..units.len() {
                    tasks.push((unit_index, protocol_index, query_index));
                }
            }
        }

        let next_task = AtomicUsize::new(0);
        let results: Mutex<Vec<ExperimentPoint>> = Mutex::new(Vec::with_capacity(tasks.len()));
        let workers = self.planned_workers(plan).min(tasks.len()).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let task_index = next_task.fetch_add(1, Ordering::Relaxed);
                    let Some(&(unit_index, protocol_index, query_index)) = tasks.get(task_index)
                    else {
                        break;
                    };
                    let (scenario_index, repetition) = units[unit_index];
                    let scenario = &scenarios[scenario_index];
                    let seed = ExperimentPlan::repetition_seed(scenario, repetition);
                    let simulation = substrates[unit_index].get_or_init(|| {
                        if let Some(counter) = &self.build_counter {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        Arc::new(scenario.clone().with_seed(seed).substrate())
                    });
                    let protocol = protocols[protocol_index];
                    let queries = query_counts[query_index];
                    let report = simulation.run(protocol, queries);
                    results.lock().push(ExperimentPoint {
                        scenario: scenario.name().to_string(),
                        scenario_index,
                        protocol,
                        queries,
                        repetition,
                        seed,
                        report,
                    });
                });
            }
        });

        let substrates_built = substrates.iter().filter(|cell| cell.get().is_some()).count();
        let mut points = results.into_inner();
        // Scheduling is nondeterministic; the outcome must not be. Protocol
        // ties are broken by position in the plan so duplicate entries keep a
        // stable order too.
        let protocol_position = |p: ProtocolKind| {
            protocols.iter().position(|&candidate| candidate == p).unwrap_or(usize::MAX)
        };
        points.sort_by_key(|p| {
            (p.scenario_index, p.repetition, p.queries, protocol_position(p.protocol))
        });
        Ok(ExperimentOutcome { points, substrates_built })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;
    use crate::experiment::Scenario;

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::new()
            .scenario(Scenario::small(50).with_seed(5))
            .protocols([ProtocolKind::Flooding, ProtocolKind::Locaware])
            .query_counts([20, 40])
    }

    #[test]
    fn a_grid_point_builds_its_substrate_exactly_once() {
        let builds = Arc::new(AtomicUsize::new(0));
        let plan = tiny_plan();
        let outcome = Runner::new()
            .with_threads(4)
            .with_build_counter(Arc::clone(&builds))
            .run(&plan)
            .unwrap();
        // 2 protocols × 2 query counts share one substrate.
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(outcome.substrates_built, 1);
        assert_eq!(outcome.len(), 4);
    }

    #[test]
    fn outcome_order_is_independent_of_thread_count() {
        let plan = tiny_plan().repetitions(2);
        let serial = Runner::new().with_threads(1).run(&plan).unwrap();
        let parallel = Runner::new().with_threads(8).run(&plan).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!((&a.scenario, a.protocol, a.queries, a.repetition, a.seed), (
                &b.scenario,
                b.protocol,
                b.queries,
                b.repetition,
                b.seed
            ));
            assert_eq!(a.report.success_rate(), b.report.success_rate());
            assert_eq!(
                a.report.avg_messages_per_query(),
                b.report.avg_messages_per_query()
            );
        }
    }

    #[test]
    fn repetitions_get_independent_seeds_and_substrates() {
        let plan = tiny_plan().repetitions(3);
        let outcome = Runner::new().run(&plan).unwrap();
        assert_eq!(outcome.substrates_built, 3);
        let seeds: std::collections::HashSet<u64> =
            outcome.points.iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), 3, "each repetition runs under its own seed");
    }

    #[test]
    fn shared_substrate_reports_match_standalone_runs() {
        let scenario = Scenario::small(50).with_seed(5);
        let plan = ExperimentPlan::new()
            .scenario(scenario.clone())
            .protocol(ProtocolKind::Locaware)
            .query_count(30);
        let outcome = Runner::new().run(&plan).unwrap();
        let standalone = scenario.substrate().run(ProtocolKind::Locaware, 30);
        let via_runner = outcome.report("small", ProtocolKind::Locaware, 30, 0).unwrap();
        assert_eq!(via_runner.success_rate(), standalone.success_rate());
        assert_eq!(
            via_runner.avg_messages_per_query(),
            standalone.avg_messages_per_query()
        );
        assert_eq!(via_runner.dispatched_events, standalone.dispatched_events);
    }

    #[test]
    fn machine_sized_runners_budget_for_engine_shards() {
        // A plan whose scenarios run 4-sharded engines must divide the
        // machine-sized worker pool by 4 so shards × workers stays within
        // the core budget; an explicit override is taken literally.
        let sharded = ExperimentPlan::new()
            .scenario(Scenario::small(50).with_seed(1))
            .scenario(
                Scenario::builder("wide")
                    .peers(50)
                    .shards(4)
                    .build()
                    .expect("valid scenario"),
            )
            .protocol(ProtocolKind::Flooding)
            .query_count(10);
        let runner = Runner::new();
        let budgeted = runner.planned_workers(&sharded);
        // The first scenario resolves shards through the process default
        // (usually 1, but a `LOCAWARE_SHARDS` override may raise it), so the
        // plan maximum is at least the explicit 4.
        let max_shards = SimulationConfig::small(50).effective_shards().max(4);
        let expected = (Runner::default_thread_count() / max_shards).max(1);
        assert_eq!(budgeted, expected);
        assert_eq!(Runner::new().with_threads(7).planned_workers(&sharded), 7);

        // Unsharded plans keep the full pool (shards=0 resolves to >= 1).
        let flat = ExperimentPlan::new()
            .scenario(Scenario::small(50).with_seed(1))
            .protocol(ProtocolKind::Flooding)
            .query_count(10);
        assert!(runner.planned_workers(&flat) >= budgeted);
        // The budgeted runner still produces the full outcome.
        let outcome = runner.run(&sharded).expect("valid plan");
        assert_eq!(outcome.len(), 2);
    }

    #[test]
    fn invalid_plans_are_refused() {
        assert_eq!(
            Runner::new().run(&ExperimentPlan::new()).unwrap_err(),
            PlanError::NoScenarios
        );
    }
}
