//! The runtime fault plan: the engine-side compilation of a
//! [`FaultConfig`](locaware_workload::FaultConfig).
//!
//! Fault decisions must be **stateless**: a per-message loss coin drawn from
//! a mutable RNG would depend on the order shards happen to send in, which
//! differs across shard counts. Instead the plan draws two salts from the
//! seeded [`StreamId::Faults`] stream once per run and every decision is a
//! pure hash of shard-invariant message identity — the sender, the sender's
//! send-sequence number (monotone in the sender's deterministic event order)
//! and the send time. The same seed and plan therefore lose exactly the same
//! messages for every shard count, and a disabled plan never consumes the
//! stream at all, leaving every other stream's draws untouched.

use rand::Rng;

use locaware_overlay::PeerId;
use locaware_sim::{mix, Duration, RngFactory, SimTime, StreamId};
use locaware_workload::{FaultConfig, TimeoutPolicy};

/// A probability scaled to the 64-bit coin space (`2^64` = certain, so a
/// fraction of exactly 1 beats every possible coin).
fn coin_threshold(probability: f64) -> u128 {
    (probability * 18_446_744_073_709_551_616.0) as u128
}

/// One outage window compiled onto the simulation clock.
struct OutageSpan {
    /// Window start (inclusive, compared against send time).
    start: SimTime,
    /// Window end (exclusive).
    end: SimTime,
    /// Link-membership threshold in coin space.
    threshold: u128,
    /// Per-window salt, so overlapping windows draw independent link sets.
    salt: u64,
}

/// The compiled fault plan of one run. Exists (`Some` in
/// [`RunShared`](super::RunShared)) exactly when the configuration arms any
/// fault axis, so fault-free runs pay a single `Option` check per send.
pub(crate) struct FaultPlan {
    /// Salt behind per-message loss coins.
    loss_salt: u64,
    /// Independent per-message loss threshold in coin space.
    loss_threshold: u128,
    /// Outage windows on the simulation clock.
    outages: Vec<OutageSpan>,
    /// Churn departures are crash-stop (no goodbyes to neighbours or DHT).
    pub(crate) crash_stop: bool,
    /// Retransmit policy for unstructured queries.
    pub(crate) query_timeout: TimeoutPolicy,
    /// Per-step deadline for iterative DHT lookups (`None` = disabled).
    pub(crate) dht_step_timeout: Option<Duration>,
}

impl FaultPlan {
    /// Compiles `config` into a runtime plan, drawing the run's fault salts
    /// from the factory's [`StreamId::Faults`] stream. Returns `None` for a
    /// disabled configuration — the stream is then never touched.
    pub(crate) fn new(config: &FaultConfig, factory: &RngFactory) -> Option<Self> {
        if config.is_disabled() {
            return None;
        }
        let mut rng = factory.stream(StreamId::Faults);
        let loss_salt: u64 = rng.gen();
        let outage_salt: u64 = rng.gen();
        let outages = config
            .outages
            .iter()
            .enumerate()
            .map(|(i, window)| OutageSpan {
                start: SimTime::ZERO + Duration::from_secs_f64(window.start_secs),
                end: SimTime::ZERO + Duration::from_secs_f64(window.end_secs()),
                threshold: coin_threshold(window.fraction),
                salt: mix(outage_salt, i as u64),
            })
            .collect();
        Some(FaultPlan {
            loss_salt,
            loss_threshold: coin_threshold(config.message_loss),
            outages,
            crash_stop: config.crash_stop,
            query_timeout: config.query_timeout,
            dht_step_timeout: (config.dht_step_timeout_secs > 0.0)
                .then(|| Duration::from_secs_f64(config.dht_step_timeout_secs)),
        })
    }

    /// Whether the message sent at `now` from `from` to `to` with sender
    /// sequence `seq` is dropped — by the independent loss coin (a pure hash
    /// of the message identity `(from, seq)`) or by an outage window active
    /// at the send time whose deterministic link set contains the
    /// (undirected) pair.
    pub(crate) fn lose(&self, now: SimTime, from: PeerId, to: PeerId, seq: u64) -> bool {
        if self.loss_threshold != 0 {
            let link = (u64::from(from.0) << 32) | u64::from(to.0);
            let coin = mix(mix(self.loss_salt, link), seq);
            if u128::from(coin) < self.loss_threshold {
                return true;
            }
        }
        for span in &self.outages {
            if span.threshold != 0 && now >= span.start && now < span.end {
                let (lo, hi) = if from.0 <= to.0 {
                    (from.0, to.0)
                } else {
                    (to.0, from.0)
                };
                let pair = (u64::from(lo) << 32) | u64::from(hi);
                if u128::from(mix(span.salt, pair)) < span.threshold {
                    return true;
                }
            }
        }
        false
    }

    /// The retransmit policy, if it schedules deadlines at all.
    pub(crate) fn query_retransmit(&self) -> Option<&TimeoutPolicy> {
        self.query_timeout.is_enabled().then_some(&self.query_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locaware_workload::OutageWindow;

    fn plan(config: &FaultConfig) -> FaultPlan {
        FaultPlan::new(config, &RngFactory::new(7)).expect("armed plan compiles")
    }

    #[test]
    fn disabled_config_compiles_to_nothing() {
        assert!(FaultPlan::new(&FaultConfig::disabled(), &RngFactory::new(7)).is_none());
    }

    #[test]
    fn loss_coins_are_deterministic_and_extreme_rates_are_exact() {
        let mut config = FaultConfig::disabled();
        config.message_loss = 0.5;
        let a = plan(&config);
        let b = plan(&config);
        let now = SimTime::from_millis(10);
        let mut lost = 0;
        for seq in 0..1000u64 {
            let verdict = a.lose(now, PeerId(3), PeerId(9), seq);
            assert_eq!(verdict, b.lose(now, PeerId(3), PeerId(9), seq));
            lost += u64::from(verdict);
        }
        assert!((300..700).contains(&lost), "half-rate coin wildly off: {lost}/1000");

        config.message_loss = 1.0;
        let total = plan(&config);
        config.message_loss = 0.0;
        config.crash_stop = true; // keep the plan armed with a zero loss rate
        let none = plan(&config);
        for seq in 0..100u64 {
            assert!(total.lose(now, PeerId(0), PeerId(1), seq));
            assert!(!none.lose(now, PeerId(0), PeerId(1), seq));
        }
    }

    #[test]
    fn outage_windows_gate_by_time_and_fix_their_link_set() {
        let mut config = FaultConfig::disabled();
        config.outages.push(OutageWindow {
            start_secs: 10.0,
            duration_secs: 5.0,
            fraction: 0.5,
        });
        let plan = plan(&config);
        let before = SimTime::ZERO + Duration::from_secs_f64(9.0);
        let during = SimTime::ZERO + Duration::from_secs_f64(12.0);
        let after = SimTime::ZERO + Duration::from_secs_f64(15.0);
        let mut affected = 0;
        for p in 0..100u32 {
            let (a, b) = (PeerId(p), PeerId(p + 100));
            assert!(!plan.lose(before, a, b, 0), "inactive before the window");
            assert!(!plan.lose(after, a, b, 0), "end is exclusive");
            let hit = plan.lose(during, a, b, 0);
            // Membership is per-link and constant across the window — both
            // directions, any seq.
            assert_eq!(hit, plan.lose(during, b, a, 7));
            affected += u64::from(hit);
        }
        assert!((20..80).contains(&affected), "half the links should be out: {affected}/100");

        config.outages[0].fraction = 1.0;
        let blackout = super::FaultPlan::new(&config, &RngFactory::new(7)).unwrap();
        assert!(blackout.lose(during, PeerId(0), PeerId(1), 0), "fraction 1 is a blackout");
    }

    #[test]
    fn timeout_axes_surface_through_the_plan() {
        let mut config = FaultConfig::disabled();
        config.query_timeout = TimeoutPolicy {
            initial_secs: 5.0,
            backoff: 2.0,
            max_retries: 3,
        };
        config.dht_step_timeout_secs = 2.0;
        let timed = plan(&config);
        assert!(!timed.crash_stop);
        assert_eq!(timed.query_retransmit().unwrap().max_retries, 3);
        assert_eq!(timed.dht_step_timeout, Some(Duration::from_secs_f64(2.0)));

        let mut config = FaultConfig::disabled();
        config.crash_stop = true;
        let crashy = plan(&config);
        assert!(crashy.crash_stop);
        assert!(crashy.query_retransmit().is_none());
        assert!(crashy.dht_step_timeout.is_none());
    }
}
