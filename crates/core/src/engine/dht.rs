//! Engine-side DHT machinery: the identity directory and the origin-side
//! iterative lookup state.
//!
//! The directory is the run's *identity oracle*: every peer's 160-bit node id
//! and every keyword's record key, derived once from the seeded
//! [`StreamId::DhtIds`] stream. It also answers "which online nodes are
//! closest to this key" globally — the publish/republish paths use that
//! oracle directly instead of simulating their own iterative lookups, in the
//! same modelling spirit as the initial Bloom exchange ("modelled as already
//! known at start") and the proactive-invalidation oracle: publisher-side
//! maintenance is priced (every store transfer is a real, latency-paying
//! message) but not path-simulated. *Query* lookups, which the paper's
//! search-cost comparison actually measures, are genuinely iterative: the
//! origin walks the key space contact by contact through
//! [`DhtLookupState`], paying every hop.

use locaware_overlay::{DhtDistance, DhtId, PeerId, DHT_ID_BITS, DHT_ID_BYTES};
use locaware_sim::{RngFactory, StreamId};
use locaware_workload::KeywordId;
use rand::Rng;

/// Bit `depth` of `id`, counting from the most significant (depth 0).
fn id_bit(id: &DhtId, depth: usize) -> bool {
    (id.0[depth / 8] >> (7 - depth % 8)) & 1 == 1
}

/// One pending subrange of the sorted ring during a k-closest search: every
/// id in `ring[lo..hi]` shares its first `depth` bits, and `bound` is the
/// smallest XOR distance to the search target any id in the range can have
/// (the shared-prefix XOR with the low bits zeroed).
#[derive(Clone, Copy)]
struct RangeFrame {
    bound: DhtDistance,
    lo: u32,
    hi: u32,
    depth: u16,
}

/// Caller-owned scratch for [`DhtDirectory::closest_online_into`], so the
/// lookup path performs no per-call allocation (the buffers are reused
/// across calls once warm).
#[derive(Default)]
pub(crate) struct DirectoryScratch {
    /// Deferred far-side subranges, pruned against the current k-th best.
    frontier: Vec<RangeFrame>,
    /// The k best `(distance, peer)` found so far, ascending.
    best: Vec<(DhtDistance, PeerId)>,
}

/// Subranges at or below this length are scanned linearly instead of split
/// further — past this point the partition bookkeeping costs more than the
/// scan.
const RING_LEAF_LEN: usize = 16;

/// The run-wide DHT identity oracle (immutable after construction).
pub(crate) struct DhtDirectory {
    /// Peer index → the peer's 160-bit node id.
    node_ids: Vec<DhtId>,
    /// `(id, peer)` ascending by id: the id space as an implicit binary trie
    /// (a range sharing a `d`-bit prefix is contiguous, and splitting it at
    /// bit `d` is one `partition_point`). Both the k-closest search and the
    /// bootstrap walk descend this instead of scanning all peers.
    ring: Vec<(DhtId, PeerId)>,
    /// Salt behind keyword record keys.
    keyword_salt: u64,
}

impl DhtDirectory {
    /// Derives every identity from the factory's [`StreamId::DhtIds`] stream.
    pub(super) fn new(factory: &RngFactory, peers: usize) -> Self {
        let mut rng = factory.stream(StreamId::DhtIds);
        let peer_salt: u64 = rng.gen();
        let keyword_salt: u64 = rng.gen();
        let node_ids: Vec<DhtId> = (0..peers)
            .map(|i| DhtId::derive(peer_salt, i as u64))
            .collect();
        let mut ring: Vec<(DhtId, PeerId)> = node_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, PeerId(i as u32)))
            .collect();
        ring.sort_unstable();
        DhtDirectory {
            node_ids,
            ring,
            keyword_salt,
        }
    }

    /// The node id of `peer`.
    pub(super) fn node_id(&self, peer: PeerId) -> DhtId {
        self.node_ids[peer.index()]
    }

    /// The record key of `keyword` (the hash of `idx:{keyword}`).
    pub(super) fn keyword_key(&self, keyword: KeywordId) -> DhtId {
        DhtId::derive(self.keyword_salt, u64::from(keyword.0))
    }

    /// Replaces `out` with the `count` **online** peers closest to `target`
    /// (XOR distance, ties by peer id), nearest first — the global oracle the
    /// publish/republish paths address their stores with.
    ///
    /// Best-first over the sorted ring viewed as an implicit trie: descend
    /// the subrange matching the target's next bit (its distance lower bound
    /// is unchanged), defer the sibling with the bound's bit set, and prune
    /// deferred ranges that cannot beat the current k-th best. XOR-closest is
    /// *not* an interval of the numeric order, which is why this walks prefix
    /// ranges rather than outward from one binary-search position. With most
    /// peers online this visits O(count · log n) ids; the old exhaustive
    /// scan ranked all n on every publish/republish/store.
    pub(super) fn closest_online_into(
        &self,
        target: DhtId,
        online: &[bool],
        count: usize,
        scratch: &mut DirectoryScratch,
        out: &mut Vec<PeerId>,
    ) {
        let DirectoryScratch { frontier, best } = scratch;
        frontier.clear();
        best.clear();
        out.clear();
        if count == 0 || self.ring.is_empty() {
            return;
        }
        frontier.push(RangeFrame {
            bound: DhtDistance([0u8; DHT_ID_BYTES]),
            lo: 0,
            hi: self.ring.len() as u32,
            depth: 0,
        });
        while let Some(frame) = frontier.pop() {
            if best.len() == count && frame.bound >= best[count - 1].0 {
                continue;
            }
            let (mut lo, mut hi) = (frame.lo as usize, frame.hi as usize);
            let mut depth = frame.depth as usize;
            let bound = frame.bound;
            // Descend the target-matching side in place; defer far siblings.
            while hi - lo > RING_LEAF_LEN && depth < DHT_ID_BITS {
                let mid =
                    lo + self.ring[lo..hi].partition_point(|&(id, _)| !id_bit(&id, depth));
                let (near_lo, near_hi, far_lo, far_hi) = if id_bit(&target, depth) {
                    (mid, hi, lo, mid)
                } else {
                    (lo, mid, mid, hi)
                };
                if far_lo < far_hi {
                    let mut far_bound = bound;
                    far_bound.0[depth / 8] |= 1 << (7 - depth % 8);
                    if !(best.len() == count && far_bound >= best[count - 1].0) {
                        frontier.push(RangeFrame {
                            bound: far_bound,
                            lo: far_lo as u32,
                            hi: far_hi as u32,
                            depth: (depth + 1) as u16,
                        });
                    }
                }
                depth += 1;
                if near_lo == near_hi {
                    lo = near_lo;
                    hi = near_hi;
                    break;
                }
                lo = near_lo;
                hi = near_hi;
            }
            for &(id, peer) in &self.ring[lo..hi] {
                if !online.get(peer.index()).copied().unwrap_or(false) {
                    continue;
                }
                let entry = (target.distance(id), peer);
                if best.len() == count {
                    if entry >= best[count - 1] {
                        continue;
                    }
                    best.pop();
                }
                let position = best.partition_point(|&b| b < entry);
                best.insert(position, entry);
            }
        }
        out.extend(best.iter().map(|&(_, peer)| peer));
    }

    /// Walks the bootstrap contact set: for every peer, the contacts its
    /// routing table converges to when each peer observes all others in
    /// peer-id order with bucket capacity `k` — i.e. for each k-bucket, the
    /// `k` lowest-id peers of the sibling subtrie at that depth. `add` is
    /// called once per `(owner, contact id, contact)` with contacts in
    /// ascending id order per bucket, exactly the order the old O(n²)
    /// insertion loop materialized them in. Costs O(n · log n · k).
    pub(super) fn for_each_bootstrap_contact(
        &self,
        k: usize,
        mut add: impl FnMut(PeerId, DhtId, PeerId),
    ) {
        if self.ring.len() > 1 {
            self.bootstrap_range(0, self.ring.len(), 0, k, &mut add);
        }
    }

    /// Recursive step of the bootstrap walk over `ring[lo..hi]` (ids sharing
    /// their first `depth` bits). Emits cross-half contacts — every peer of
    /// one half gets the other half's k-lowest peer ids, which is that
    /// half's entire contribution to its bucket — and returns this range's
    /// own k-lowest peer ids, ascending.
    fn bootstrap_range(
        &self,
        lo: usize,
        hi: usize,
        depth: usize,
        k: usize,
        add: &mut impl FnMut(PeerId, DhtId, PeerId),
    ) -> Vec<PeerId> {
        if hi - lo == 1 {
            return vec![self.ring[lo].1];
        }
        if depth >= DHT_ID_BITS {
            // Colliding ids (astronomically unlikely): no bucket separates
            // them — the old loop's insert rejected zero-distance contacts
            // the same way — so just report the range's lowest peer ids.
            let mut head: Vec<PeerId> = self.ring[lo..hi].iter().map(|&(_, p)| p).collect();
            head.sort_unstable();
            head.truncate(k);
            return head;
        }
        let mid = lo + self.ring[lo..hi].partition_point(|&(id, _)| !id_bit(&id, depth));
        if mid == lo || mid == hi {
            return self.bootstrap_range(lo, hi, depth + 1, k, add);
        }
        let left = self.bootstrap_range(lo, mid, depth + 1, k, add);
        let right = self.bootstrap_range(mid, hi, depth + 1, k, add);
        for &(_, owner) in &self.ring[lo..mid] {
            for &contact in &right {
                add(owner, self.node_ids[contact.index()], contact);
            }
        }
        for &(_, owner) in &self.ring[mid..hi] {
            for &contact in &left {
                add(owner, self.node_ids[contact.index()], contact);
            }
        }
        let mut merged = Vec::with_capacity(k.min(left.len() + right.len()));
        let (mut a, mut b) = (left.into_iter().peekable(), right.into_iter().peekable());
        while merged.len() < k {
            match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) if x < y => merged.push(a.next().expect("peeked")),
                (Some(_), Some(_)) => merged.push(b.next().expect("peeked")),
                (Some(_), None) => merged.push(a.next().expect("peeked")),
                (None, Some(_)) => merged.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        merged
    }
}

/// Origin-side state of one iterative lookup (lives in the origin peer's
/// shard, keyed by the query's arrival index).
///
/// The shortlist holds every candidate learned so far, sorted by
/// `(distance to the record key, peer id)` with a queried flag; the origin
/// keeps up to `alpha` steps in flight among the first `k` unqueried
/// candidates. Each in-flight step is an `awaiting` ledger entry recording
/// the queried peer and its hop depth; a reply — or, under a fault plan with
/// step timeouts, the step's deadline — settles the entry. Without step
/// timeouts a step sent to a node that departed at a later churn barrier is
/// simply lost: its consumption still retires the query's
/// outstanding-message count, so the query completes honestly, just without
/// that branch's answer. With step timeouts the deadline releases the
/// stalled slot and the walk re-issues against the next shortlist
/// candidate.
pub(super) struct DhtLookupState {
    /// The full query keywords (the all-keywords match rule filters record
    /// entries against these, not just the lookup keyword).
    pub(super) keywords: Vec<KeywordId>,
    /// The record key being walked towards.
    pub(super) key: DhtId,
    /// Shortlist: `(distance, peer, queried)`, ascending.
    candidates: Vec<(DhtDistance, PeerId, bool)>,
    /// In-flight steps: `(queried peer, hop depth)`, settled by the reply or
    /// its deadline, whichever the canonical order dispatches first.
    awaiting: Vec<(PeerId, u32)>,
}

impl DhtLookupState {
    pub(super) fn new(keywords: Vec<KeywordId>, key: DhtId) -> Self {
        DhtLookupState {
            keywords,
            key,
            candidates: Vec::new(),
            awaiting: Vec::new(),
        }
    }

    /// Steps currently in flight (each either awaiting its reply or, under a
    /// fault plan, its deadline).
    pub(super) fn inflight(&self) -> usize {
        self.awaiting.len()
    }

    /// Records a step sent to `peer` at hop depth `hop`.
    pub(super) fn begin_step(&mut self, peer: PeerId, hop: u32) {
        self.awaiting.push((peer, hop));
    }

    /// Settles the in-flight step queried at `peer`, returning its hop depth.
    /// `None` when no such step is pending — a reply whose slot a step
    /// deadline already released (the reply's payload still contributes
    /// candidates, but the in-flight accounting has moved on).
    pub(super) fn finish_step(&mut self, peer: PeerId) -> Option<u32> {
        let position = self.awaiting.iter().position(|&(p, _)| p == peer)?;
        Some(self.awaiting.remove(position).1)
    }

    /// Merges a learned contact into the shortlist (deduplicated by peer,
    /// kept sorted). Returns `false` if the peer was already known.
    pub(super) fn add_candidate(&mut self, distance: DhtDistance, peer: PeerId) -> bool {
        if self.candidates.iter().any(|&(_, p, _)| p == peer) {
            return false;
        }
        let position = self
            .candidates
            .partition_point(|&(d, p, _)| (d, p) < (distance, peer));
        self.candidates.insert(position, (distance, peer, false));
        true
    }

    /// The next unqueried candidate among the `k` closest, marked queried.
    /// `None` once the `k` closest known contacts have all been asked — the
    /// Kademlia termination condition.
    pub(super) fn take_next_target(&mut self, k: usize) -> Option<PeerId> {
        for entry in self.candidates.iter_mut().take(k) {
            if !entry.2 {
                entry.2 = true;
                return Some(entry.1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_identities_are_deterministic_and_distinct() {
        let a = DhtDirectory::new(&RngFactory::new(7), 50);
        let b = DhtDirectory::new(&RngFactory::new(7), 50);
        let c = DhtDirectory::new(&RngFactory::new(8), 50);
        for i in 0..50u32 {
            assert_eq!(a.node_id(PeerId(i)), b.node_id(PeerId(i)));
        }
        assert_ne!(a.node_id(PeerId(0)), c.node_id(PeerId(0)));
        assert_ne!(a.node_id(PeerId(0)), a.node_id(PeerId(1)));
        assert_eq!(a.keyword_key(KeywordId(3)), b.keyword_key(KeywordId(3)));
        assert_ne!(a.keyword_key(KeywordId(3)), a.keyword_key(KeywordId(4)));
        // Peer and keyword spaces use different salts: same value, different id.
        assert_ne!(a.node_id(PeerId(3)), a.keyword_key(KeywordId(3)));
    }

    #[test]
    fn closest_online_filters_and_ranks_exhaustively() {
        let directory = DhtDirectory::new(&RngFactory::new(42), 20);
        let mut online = vec![true; 20];
        online[3] = false;
        online[11] = false;
        let target = directory.keyword_key(KeywordId(9));
        let mut got = Vec::new();
        let mut scratch = DirectoryScratch::default();
        directory.closest_online_into(target, &online, 5, &mut scratch, &mut got);
        // Model: rank every online peer by (distance, id) and take 5.
        let mut expected: Vec<(DhtDistance, PeerId)> = (0..20u32)
            .filter(|&i| online[i as usize])
            .map(|i| (target.distance(directory.node_id(PeerId(i))), PeerId(i)))
            .collect();
        expected.sort_unstable();
        let expected: Vec<PeerId> = expected.into_iter().take(5).map(|(_, p)| p).collect();
        assert_eq!(got, expected);
        assert!(!got.contains(&PeerId(3)) && !got.contains(&PeerId(11)));
        // The buffer is replaced, not appended to.
        directory.closest_online_into(target, &online, 2, &mut scratch, &mut got);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn ring_search_matches_the_exhaustive_scan_across_patterns() {
        // The trie search must reproduce the old exhaustive ranking exactly,
        // across sizes spanning the leaf threshold, counts spanning the
        // population, and online patterns from dense to sparse.
        let mut got = Vec::new();
        let mut scratch = DirectoryScratch::default();
        for (seed, peers) in [(1u64, 3usize), (2, 16), (3, 17), (4, 200), (5, 1000)] {
            let directory = DhtDirectory::new(&RngFactory::new(seed), peers);
            for pattern in 0..4u32 {
                let online: Vec<bool> = (0..peers)
                    .map(|i| match pattern {
                        0 => true,
                        1 => i % 3 != 0,
                        2 => i % 7 == 0,
                        _ => false,
                    })
                    .collect();
                for keyword in 0..5u32 {
                    let target = directory.keyword_key(KeywordId(keyword));
                    for count in [0usize, 1, 8, peers + 3] {
                        directory.closest_online_into(
                            target, &online, count, &mut scratch, &mut got,
                        );
                        let mut expected: Vec<(DhtDistance, PeerId)> = (0..peers)
                            .filter(|&i| online[i])
                            .map(|i| {
                                let peer = PeerId(i as u32);
                                (target.distance(directory.node_id(peer)), peer)
                            })
                            .collect();
                        expected.sort_unstable();
                        let expected: Vec<PeerId> =
                            expected.into_iter().take(count).map(|(_, p)| p).collect();
                        assert_eq!(got, expected, "peers={peers} pattern={pattern} count={count}");
                    }
                }
            }
        }
    }

    #[test]
    fn bootstrap_walk_matches_the_quadratic_insertion_loop() {
        // The recursive range-split walk must leave every routing table in
        // exactly the state the old loop produced: peer i inserting every
        // other peer in ascending peer-id order, full buckets keeping their
        // first k.
        for (seed, peers, k) in [(11u64, 40usize, 2usize), (12, 97, 8), (13, 1, 8)] {
            let directory = DhtDirectory::new(&RngFactory::new(seed), peers);
            let mut naive: Vec<locaware_overlay::RoutingTable> = (0..peers)
                .map(|i| {
                    locaware_overlay::RoutingTable::new(directory.node_id(PeerId(i as u32)), k)
                })
                .collect();
            for (i, table) in naive.iter_mut().enumerate() {
                for j in 0..peers {
                    if i != j {
                        let other = PeerId(j as u32);
                        table.insert(directory.node_id(other), other);
                    }
                }
            }
            let mut walked: Vec<locaware_overlay::RoutingTable> = (0..peers)
                .map(|i| {
                    locaware_overlay::RoutingTable::new(directory.node_id(PeerId(i as u32)), k)
                })
                .collect();
            directory.for_each_bootstrap_contact(k, |owner, contact_id, contact| {
                assert!(walked[owner.index()].insert(contact_id, contact));
            });
            for i in 0..peers {
                assert_eq!(walked[i].len(), naive[i].len(), "peer {i} table size");
                for b in 0..DHT_ID_BITS {
                    assert_eq!(walked[i].bucket_len(b), naive[i].bucket_len(b));
                }
                let probe = directory.keyword_key(KeywordId(7));
                assert_eq!(
                    walked[i].closest(probe, k + 1),
                    naive[i].closest(probe, k + 1),
                    "peer {i} ranking"
                );
            }
        }
    }

    #[test]
    fn step_ledger_settles_by_peer_once() {
        let directory = DhtDirectory::new(&RngFactory::new(2), 4);
        let key = directory.keyword_key(KeywordId(1));
        let mut state = DhtLookupState::new(vec![KeywordId(1)], key);
        assert_eq!(state.inflight(), 0);
        state.begin_step(PeerId(2), 1);
        state.begin_step(PeerId(3), 2);
        assert_eq!(state.inflight(), 2);
        assert_eq!(state.finish_step(PeerId(3)), Some(2), "returns the step's hop");
        assert_eq!(state.finish_step(PeerId(3)), None, "a settled step stays settled");
        assert_eq!(state.inflight(), 1);
        assert_eq!(state.finish_step(PeerId(2)), Some(1));
        assert_eq!(state.inflight(), 0);
    }

    #[test]
    fn lookup_state_walks_the_k_closest_once_each() {
        let directory = DhtDirectory::new(&RngFactory::new(1), 10);
        let key = directory.keyword_key(KeywordId(0));
        let mut state = DhtLookupState::new(vec![KeywordId(0)], key);
        for i in 0..10u32 {
            let peer = PeerId(i);
            assert!(state.add_candidate(key.distance(directory.node_id(peer)), peer));
            assert!(
                !state.add_candidate(key.distance(directory.node_id(peer)), peer),
                "duplicate candidate accepted"
            );
        }
        let mut asked = Vec::new();
        while let Some(target) = state.take_next_target(4) {
            asked.push(target);
        }
        assert_eq!(asked.len(), 4, "only the k closest are ever queried");
        let mut ranked: Vec<(DhtDistance, PeerId)> = (0..10u32)
            .map(|i| (key.distance(directory.node_id(PeerId(i))), PeerId(i)))
            .collect();
        ranked.sort_unstable();
        let expected: Vec<PeerId> = ranked.into_iter().take(4).map(|(_, p)| p).collect();
        assert_eq!(asked, expected, "queried nearest-first");
    }
}
