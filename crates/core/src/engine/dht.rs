//! Engine-side DHT machinery: the identity directory and the origin-side
//! iterative lookup state.
//!
//! The directory is the run's *identity oracle*: every peer's 160-bit node id
//! and every keyword's record key, derived once from the seeded
//! [`StreamId::DhtIds`] stream. It also answers "which online nodes are
//! closest to this key" globally — the publish/republish paths use that
//! oracle directly instead of simulating their own iterative lookups, in the
//! same modelling spirit as the initial Bloom exchange ("modelled as already
//! known at start") and the proactive-invalidation oracle: publisher-side
//! maintenance is priced (every store transfer is a real, latency-paying
//! message) but not path-simulated. *Query* lookups, which the paper's
//! search-cost comparison actually measures, are genuinely iterative: the
//! origin walks the key space contact by contact through
//! [`DhtLookupState`], paying every hop.

use locaware_overlay::{DhtDistance, DhtId, PeerId};
use locaware_sim::{RngFactory, StreamId};
use locaware_workload::KeywordId;
use rand::Rng;

/// The run-wide DHT identity oracle (immutable after construction).
pub(crate) struct DhtDirectory {
    /// Peer index → the peer's 160-bit node id.
    node_ids: Vec<DhtId>,
    /// Salt behind keyword record keys.
    keyword_salt: u64,
}

impl DhtDirectory {
    /// Derives every identity from the factory's [`StreamId::DhtIds`] stream.
    pub(super) fn new(factory: &RngFactory, peers: usize) -> Self {
        let mut rng = factory.stream(StreamId::DhtIds);
        let peer_salt: u64 = rng.gen();
        let keyword_salt: u64 = rng.gen();
        DhtDirectory {
            node_ids: (0..peers)
                .map(|i| DhtId::derive(peer_salt, i as u64))
                .collect(),
            keyword_salt,
        }
    }

    /// The node id of `peer`.
    pub(super) fn node_id(&self, peer: PeerId) -> DhtId {
        self.node_ids[peer.index()]
    }

    /// The record key of `keyword` (the hash of `idx:{keyword}`).
    pub(super) fn keyword_key(&self, keyword: KeywordId) -> DhtId {
        DhtId::derive(self.keyword_salt, u64::from(keyword.0))
    }

    /// Replaces `out` with the `count` **online** peers closest to `target`
    /// (XOR distance, ties by peer id), nearest first — the global oracle the
    /// publish/republish paths address their stores with.
    pub(super) fn closest_online_into(
        &self,
        target: DhtId,
        online: &[bool],
        count: usize,
        out: &mut Vec<PeerId>,
    ) {
        let mut ranked: Vec<(DhtDistance, PeerId)> = self
            .node_ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| online.get(i).copied().unwrap_or(false))
            .map(|(i, &id)| (target.distance(id), PeerId(i as u32)))
            .collect();
        ranked.sort_unstable();
        out.clear();
        out.extend(ranked.into_iter().take(count).map(|(_, peer)| peer));
    }
}

/// Origin-side state of one iterative lookup (lives in the origin peer's
/// shard, keyed by the query's arrival index).
///
/// The shortlist holds every candidate learned so far, sorted by
/// `(distance to the record key, peer id)` with a queried flag; the origin
/// keeps up to `alpha` steps in flight among the first `k` unqueried
/// candidates. Each in-flight step is an `awaiting` ledger entry recording
/// the queried peer and its hop depth; a reply — or, under a fault plan with
/// step timeouts, the step's deadline — settles the entry. Without step
/// timeouts a step sent to a node that departed at a later churn barrier is
/// simply lost: its consumption still retires the query's
/// outstanding-message count, so the query completes honestly, just without
/// that branch's answer. With step timeouts the deadline releases the
/// stalled slot and the walk re-issues against the next shortlist
/// candidate.
pub(super) struct DhtLookupState {
    /// The full query keywords (the all-keywords match rule filters record
    /// entries against these, not just the lookup keyword).
    pub(super) keywords: Vec<KeywordId>,
    /// The record key being walked towards.
    pub(super) key: DhtId,
    /// Shortlist: `(distance, peer, queried)`, ascending.
    candidates: Vec<(DhtDistance, PeerId, bool)>,
    /// In-flight steps: `(queried peer, hop depth)`, settled by the reply or
    /// its deadline, whichever the canonical order dispatches first.
    awaiting: Vec<(PeerId, u32)>,
}

impl DhtLookupState {
    pub(super) fn new(keywords: Vec<KeywordId>, key: DhtId) -> Self {
        DhtLookupState {
            keywords,
            key,
            candidates: Vec::new(),
            awaiting: Vec::new(),
        }
    }

    /// Steps currently in flight (each either awaiting its reply or, under a
    /// fault plan, its deadline).
    pub(super) fn inflight(&self) -> usize {
        self.awaiting.len()
    }

    /// Records a step sent to `peer` at hop depth `hop`.
    pub(super) fn begin_step(&mut self, peer: PeerId, hop: u32) {
        self.awaiting.push((peer, hop));
    }

    /// Settles the in-flight step queried at `peer`, returning its hop depth.
    /// `None` when no such step is pending — a reply whose slot a step
    /// deadline already released (the reply's payload still contributes
    /// candidates, but the in-flight accounting has moved on).
    pub(super) fn finish_step(&mut self, peer: PeerId) -> Option<u32> {
        let position = self.awaiting.iter().position(|&(p, _)| p == peer)?;
        Some(self.awaiting.remove(position).1)
    }

    /// Merges a learned contact into the shortlist (deduplicated by peer,
    /// kept sorted). Returns `false` if the peer was already known.
    pub(super) fn add_candidate(&mut self, distance: DhtDistance, peer: PeerId) -> bool {
        if self.candidates.iter().any(|&(_, p, _)| p == peer) {
            return false;
        }
        let position = self
            .candidates
            .partition_point(|&(d, p, _)| (d, p) < (distance, peer));
        self.candidates.insert(position, (distance, peer, false));
        true
    }

    /// The next unqueried candidate among the `k` closest, marked queried.
    /// `None` once the `k` closest known contacts have all been asked — the
    /// Kademlia termination condition.
    pub(super) fn take_next_target(&mut self, k: usize) -> Option<PeerId> {
        for entry in self.candidates.iter_mut().take(k) {
            if !entry.2 {
                entry.2 = true;
                return Some(entry.1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_identities_are_deterministic_and_distinct() {
        let a = DhtDirectory::new(&RngFactory::new(7), 50);
        let b = DhtDirectory::new(&RngFactory::new(7), 50);
        let c = DhtDirectory::new(&RngFactory::new(8), 50);
        for i in 0..50u32 {
            assert_eq!(a.node_id(PeerId(i)), b.node_id(PeerId(i)));
        }
        assert_ne!(a.node_id(PeerId(0)), c.node_id(PeerId(0)));
        assert_ne!(a.node_id(PeerId(0)), a.node_id(PeerId(1)));
        assert_eq!(a.keyword_key(KeywordId(3)), b.keyword_key(KeywordId(3)));
        assert_ne!(a.keyword_key(KeywordId(3)), a.keyword_key(KeywordId(4)));
        // Peer and keyword spaces use different salts: same value, different id.
        assert_ne!(a.node_id(PeerId(3)), a.keyword_key(KeywordId(3)));
    }

    #[test]
    fn closest_online_filters_and_ranks_exhaustively() {
        let directory = DhtDirectory::new(&RngFactory::new(42), 20);
        let mut online = vec![true; 20];
        online[3] = false;
        online[11] = false;
        let target = directory.keyword_key(KeywordId(9));
        let mut got = Vec::new();
        directory.closest_online_into(target, &online, 5, &mut got);
        // Model: rank every online peer by (distance, id) and take 5.
        let mut expected: Vec<(DhtDistance, PeerId)> = (0..20u32)
            .filter(|&i| online[i as usize])
            .map(|i| (target.distance(directory.node_id(PeerId(i))), PeerId(i)))
            .collect();
        expected.sort_unstable();
        let expected: Vec<PeerId> = expected.into_iter().take(5).map(|(_, p)| p).collect();
        assert_eq!(got, expected);
        assert!(!got.contains(&PeerId(3)) && !got.contains(&PeerId(11)));
        // The buffer is replaced, not appended to.
        directory.closest_online_into(target, &online, 2, &mut got);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn step_ledger_settles_by_peer_once() {
        let directory = DhtDirectory::new(&RngFactory::new(2), 4);
        let key = directory.keyword_key(KeywordId(1));
        let mut state = DhtLookupState::new(vec![KeywordId(1)], key);
        assert_eq!(state.inflight(), 0);
        state.begin_step(PeerId(2), 1);
        state.begin_step(PeerId(3), 2);
        assert_eq!(state.inflight(), 2);
        assert_eq!(state.finish_step(PeerId(3)), Some(2), "returns the step's hop");
        assert_eq!(state.finish_step(PeerId(3)), None, "a settled step stays settled");
        assert_eq!(state.inflight(), 1);
        assert_eq!(state.finish_step(PeerId(2)), Some(1));
        assert_eq!(state.inflight(), 0);
    }

    #[test]
    fn lookup_state_walks_the_k_closest_once_each() {
        let directory = DhtDirectory::new(&RngFactory::new(1), 10);
        let key = directory.keyword_key(KeywordId(0));
        let mut state = DhtLookupState::new(vec![KeywordId(0)], key);
        for i in 0..10u32 {
            let peer = PeerId(i);
            assert!(state.add_candidate(key.distance(directory.node_id(peer)), peer));
            assert!(
                !state.add_candidate(key.distance(directory.node_id(peer)), peer),
                "duplicate candidate accepted"
            );
        }
        let mut asked = Vec::new();
        while let Some(target) = state.take_next_target(4) {
            asked.push(target);
        }
        assert_eq!(asked.len(), 4, "only the k closest are ever queried");
        let mut ranked: Vec<(DhtDistance, PeerId)> = (0..10u32)
            .map(|i| (key.distance(directory.node_id(PeerId(i))), PeerId(i)))
            .collect();
        ranked.sort_unstable();
        let expected: Vec<PeerId> = ranked.into_iter().take(4).map(|(_, p)| p).collect();
        assert_eq!(asked, expected, "queried nearest-first");
    }
}
